//! The team interpreter: executes all threads of one team with
//! run-to-synchronization-point scheduling.
//!
//! Threads run in thread-id order until they hit a barrier, finish, or
//! trap. When every live thread waits at a barrier the barrier releases:
//! all waiting threads' cycle counters are aligned to the maximum plus the
//! barrier cost (a barrier is a time synchronization too). This scheduling
//! is deterministic and, because threads only communicate through memory at
//! synchronization points in well-formed OpenMP/CUDA programs, it preserves
//! the semantics of the programs the paper evaluates.

use std::collections::HashMap;

use nzomp_ir::inst::{BinOp, CastKind, Inst, InstId, Intrinsic, Pred, Term, UnOp};
use nzomp_ir::{BlockId, Function, Module, Operand, Ty};

use crate::cost::CostModel;
use crate::error::TrapKind;
use crate::faults::{FaultAction, FaultPlan, FaultSite};
use crate::gmem::{combine_atomic, rtval_from_bits, GlobalMem};
use crate::memory::{DevPtr, Region, Segment};
use crate::sanitize::{AccessKind, BarrierArrival, IrLoc, TeamSan};
use crate::value::RtVal;

/// Typed error for states only reachable through IR the verifier rejects
/// (or interpreter-invariant violations). Never a process abort.
fn malformed(msg: impl Into<String>) -> TrapKind {
    TrapKind::MalformedIr(msg.into())
}

/// Where each module global lives on the device.
#[derive(Clone, Debug, Default)]
pub struct GlobalLayout {
    /// Encoded base address per `GlobalId` index.
    pub addr_of: Vec<DevPtr>,
    /// Bytes of statically allocated shared memory per team.
    pub shared_size: u64,
    /// Bytes of the global segment occupied by global-space globals.
    pub global_static_size: u64,
    /// Bytes of the constant segment.
    pub const_size: u64,
}

/// Device-heap allocator state (bump allocation into the global region).
#[derive(Debug, Default)]
pub struct HeapState {
    pub live_allocs: HashMap<u64, u64>, // offset -> size
    pub limit: u64,
}

/// Event counters aggregated into [`crate::KernelMetrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    pub instructions: u64,
    pub barriers: u64,
    pub global_accesses: u64,
    pub shared_accesses: u64,
    pub local_accesses: u64,
    pub device_mallocs: u64,
    pub runtime_calls: u64,
    pub flops: u64,
}

impl Counters {
    /// Accumulate another team's counters. Plain integer sums, so the
    /// total is independent of accumulation order — a prerequisite for
    /// parallel execution reporting the exact sequential metrics.
    pub fn add(&mut self, other: &Counters) {
        self.instructions += other.instructions;
        self.barriers += other.barriers;
        self.global_accesses += other.global_accesses;
        self.shared_accesses += other.shared_accesses;
        self.local_accesses += other.local_accesses;
        self.device_mallocs += other.device_mallocs;
        self.runtime_calls += other.runtime_calls;
        self.flops += other.flops;
    }
}

/// One call frame.
#[derive(Debug)]
struct Frame {
    func: u32,
    block: BlockId,
    inst_idx: usize,
    regs: Vec<RtVal>,
    args: Vec<RtVal>,
    /// Caller instruction that receives the return value.
    ret_dst: Option<InstId>,
    /// Thread-local stack watermark to restore on return.
    local_base: u64,
}

/// Thread run state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    Running,
    AtBarrier { aligned: bool },
    Done,
}

/// One hardware thread.
#[derive(Debug)]
pub struct ThreadCtx {
    pub tid: u32,
    frames: Vec<Frame>,
    pub status: Status,
    pub cycles: u64,
    /// Cycles of actual work (never overwritten by barrier synchronization,
    /// unlike `cycles`); denominator of the team memory fraction.
    pub busy_cycles: u64,
    /// Portion of the busy cycles spent on memory operations — the part
    /// occupancy can hide (see the latency model in `Device::launch`).
    pub mem_cycles: u64,
    local: Region,
    local_top: u64,
    /// Instructions this thread has executed (drives fault triggers).
    steps: u64,
    /// Injected faults aimed at this thread, sorted by trigger step;
    /// `fault_idx` is the next one to fire.
    faults: Vec<FaultSite>,
    fault_idx: usize,
    /// Step count at which the next fault fires (`u64::MAX` = never) —
    /// the only word the hot loop compares when injection is disabled.
    next_fault_step: u64,
    /// Armed by [`FaultAction::CorruptLoad`]: XOR mask for the next load.
    corrupt_next_load: Option<u64>,
    /// Armed by [`FaultAction::DropBarrierArrival`]: skip the next barrier.
    drop_next_barrier: bool,
    /// IR site of the barrier this thread is waiting at (recorded only
    /// when the sanitizer is armed; feeds the divergence check).
    barrier_site: Option<IrLoc>,
}

impl Default for ThreadCtx {
    fn default() -> Self {
        ThreadCtx {
            tid: 0,
            frames: Vec::new(),
            status: Status::Done,
            cycles: 0,
            busy_cycles: 0,
            mem_cycles: 0,
            local: Region::default(),
            local_top: 0,
            steps: 0,
            faults: Vec::new(),
            fault_idx: 0,
            next_fault_step: u64::MAX,
            corrupt_next_load: None,
            drop_next_barrier: false,
            barrier_site: None,
        }
    }
}

/// Executes one team to completion.
///
/// All team-local state — thread contexts, shared memory, the cycle/event
/// counters, the remaining fuel, and (in buffered mode) the copy-on-write
/// overlay of global memory — is *owned*, so a `TeamExec` built over a
/// [`GlobalMem::Buffered`] view is `Send` and can run on a worker thread;
/// the shared borrows (`module`, `cost`, `layout`, `constant`, `faults`,
/// and the buffered view's wave-start base image) are all `Sync`.
pub struct TeamExec<'a> {
    pub module: &'a Module,
    pub cost: &'a CostModel,
    pub check_assumes: bool,
    pub team_id: u32,
    pub num_teams: u32,
    pub nthreads: u32,
    pub shared: Region,
    pub layout: &'a GlobalLayout,
    /// Global-memory view: write-through (sequential) or snapshot-and-log
    /// (parallel). See [`crate::gmem`].
    pub global: GlobalMem<'a>,
    pub constant: &'a Region,
    /// Event counters for this team alone; the device sums them.
    pub counters: Counters,
    /// Remaining step budget. The device threads the leftover into the
    /// next team (sequential) or reconciles budgets at the wave merge
    /// (parallel).
    pub fuel: u64,
    /// Active fault-injection plan (`None` in production runs; the hot
    /// loop then degenerates to one always-false integer compare).
    pub faults: Option<&'a FaultPlan>,
    /// Data-race/divergence sanitizer state (`None` in production runs;
    /// every hook then degenerates to one pointer test — the same
    /// zero-cost-when-disabled shape as `faults`).
    san: Option<Box<TeamSan>>,
    threads: Vec<ThreadCtx>,
    /// Per-function cache of which instruction results are referenced by
    /// any operand — computed lazily, only consulted by buffered global
    /// atomics to decide whether their observed old value needs merge
    /// validation (a dead result cannot steer behavior).
    result_used: HashMap<u32, Vec<bool>>,
}

/// Which instruction results of `func` are referenced by at least one
/// operand (instructions, phi incomings, or block terminators).
fn used_results(func: &Function) -> Vec<bool> {
    let mut used = vec![false; func.insts.len()];
    let mut mark = |ops: Vec<Operand>| {
        for op in ops {
            if let Operand::Inst(i) = op {
                if let Some(u) = used.get_mut(i.index()) {
                    *u = true;
                }
            }
        }
    };
    for inst in &func.insts {
        mark(inst.operands());
    }
    for block in &func.blocks {
        mark(block.term.operands());
    }
    used
}

impl<'a> TeamExec<'a> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        module: &'a Module,
        cost: &'a CostModel,
        check_assumes: bool,
        team_id: u32,
        num_teams: u32,
        nthreads: u32,
        shared_size: u64,
        layout: &'a GlobalLayout,
        global: GlobalMem<'a>,
        constant: &'a Region,
        fuel: u64,
        faults: Option<&'a FaultPlan>,
    ) -> TeamExec<'a> {
        TeamExec {
            module,
            cost,
            check_assumes,
            team_id,
            num_teams,
            nthreads,
            shared: Region::with_size(shared_size as usize),
            layout,
            global,
            constant,
            counters: Counters::default(),
            fuel,
            faults,
            san: None,
            threads: Vec::new(),
            result_used: HashMap::new(),
        }
    }

    /// Arm the data-race & barrier-divergence sanitizer for this team.
    pub fn set_sanitizer(&mut self, san: Option<Box<TeamSan>>) {
        self.san = san;
    }

    /// Detach the sanitizer state. Called before `into_outcome` so the
    /// reports survive even a trapping run.
    pub fn take_sanitizer(&mut self) -> Option<Box<TeamSan>> {
        self.san.take()
    }

    /// Sanitizer hook: mirror one executed memory access into the shadow.
    #[inline]
    fn san_record(&mut self, thread: &ThreadCtx, iid: InstId, kind: AccessKind, p: DevPtr, size: u64) {
        let Some(san) = self.san.as_deref_mut() else { return };
        let Some(frame) = thread.frames.last() else { return };
        let loc = IrLoc {
            func: frame.func,
            block: frame.block.0,
            inst: iid.0,
        };
        san.record_access(self.module, thread.tid, kind, loc, p.segment(), p.offset(), size);
    }

    /// Whether instruction `iid` of function `func_idx` has a live result.
    /// Lazily computes (and caches) the per-function used-result map;
    /// unknown functions or out-of-range ids answer `true` (conservative:
    /// validate).
    fn result_is_used(&mut self, func_idx: u32, iid: InstId) -> bool {
        let module = self.module;
        let used = self.result_used.entry(func_idx).or_insert_with(|| {
            module
                .funcs
                .get(func_idx as usize)
                .map(used_results)
                .unwrap_or_default()
        });
        used.get(iid.index()).copied().unwrap_or(true)
    }

    /// Tear down into `(counters, fuel_left, global view)` — what the
    /// parallel engine needs from a finished team.
    pub fn into_outcome(self) -> (Counters, u64, GlobalMem<'a>) {
        (self.counters, self.fuel, self.global)
    }

    /// Run the kernel function with `args` on every thread of the team.
    /// Returns `(team_cycles, mem_cycles)`: `team_cycles` is the slowest
    /// thread's total; `mem_cycles` is the memory share of the team's
    /// critical path, estimated work-weighted as
    /// `team_cycles * Σ mem_i / Σ cycles_i` (robust against irregular
    /// per-thread work and barrier-synchronized counters).
    pub fn run(&mut self, kernel: u32, args: &[RtVal]) -> Result<(u64, u64), (TrapKind, u32)> {
        let Some(func) = self.module.funcs.get(kernel as usize) else {
            return Err((malformed(format!("kernel index {kernel} out of range")), 0));
        };
        self.threads = (0..self.nthreads)
            .map(|tid| {
                let frame = Frame {
                    func: kernel,
                    block: BlockId::ENTRY,
                    inst_idx: 0,
                    regs: vec![RtVal::I(0); func.insts.len()],
                    args: args.to_vec(),
                    ret_dst: None,
                    local_base: 0,
                };
                let faults = self
                    .faults
                    .map(|p| p.sites_for(self.team_id, tid))
                    .unwrap_or_default();
                let next_fault_step = faults.first().map_or(u64::MAX, |s| s.after_steps);
                ThreadCtx {
                    tid,
                    frames: vec![frame],
                    status: Status::Running,
                    faults,
                    next_fault_step,
                    ..ThreadCtx::default()
                }
            })
            .collect();

        loop {
            let mut progressed = false;
            for t in 0..self.threads.len() {
                if self.threads[t].status == Status::Running {
                    progressed = true;
                    let mut thread = std::mem::take(&mut self.threads[t]);
                    let r = self.run_thread(&mut thread);
                    let tid = thread.tid;
                    self.threads[t] = thread;
                    if let Err(kind) = r {
                        return Err((kind, tid));
                    }
                }
            }
            let live: Vec<usize> = (0..self.threads.len())
                .filter(|&t| self.threads[t].status != Status::Done)
                .collect();
            if live.is_empty() {
                break;
            }
            let all_waiting = live
                .iter()
                .all(|&t| matches!(self.threads[t].status, Status::AtBarrier { .. }));
            if all_waiting {
                // An *aligned* barrier promises that every thread of the
                // team reaches it; if some threads already exited, that
                // promise is broken (miscompile or bad user code) — trap.
                let any_done = self.threads.iter().any(|t| t.status == Status::Done);
                let any_aligned_wait = live.iter().any(|&t| {
                    matches!(
                        self.threads[t].status,
                        Status::AtBarrier { aligned: true }
                    )
                });
                if any_done && any_aligned_wait {
                    if self.san.is_some() {
                        let waiting = self.barrier_arrivals(&live);
                        let done = self.threads.len() - live.len();
                        if let Some(san) = self.san.as_deref_mut() {
                            san.on_aligned_subset(self.module, &waiting, done);
                        }
                    }
                    return Err((TrapKind::BarrierDeadlock, self.threads[live[0]].tid));
                }
                // Release the barrier: synchronize cycle counters.
                let aligned = live.iter().all(|&t| {
                    matches!(
                        self.threads[t].status,
                        Status::AtBarrier { aligned: true }
                    )
                });
                let cost = if aligned {
                    self.cost.barrier_aligned
                } else {
                    self.cost.barrier_unaligned
                };
                // Sanitizer: check arrival uniformity, then open a new
                // barrier epoch (every release synchronizes the live
                // threads, aligned or not).
                if self.san.is_some() {
                    let arrivals = self.barrier_arrivals(&live);
                    if let Some(san) = self.san.as_deref_mut() {
                        san.on_barrier_release(self.module, &arrivals);
                    }
                }
                let max_cycles = live
                    .iter()
                    .map(|&t| self.threads[t].cycles)
                    .max()
                    .unwrap_or(0);
                for &t in &live {
                    self.threads[t].cycles = max_cycles + cost;
                    self.threads[t].busy_cycles += cost;
                    self.threads[t].status = Status::Running;
                }
                self.counters.barriers += 1;
            } else if !progressed {
                // Some threads wait forever: mismatched barrier.
                return Err((TrapKind::BarrierDeadlock, self.threads[live[0]].tid));
            }
        }
        let max_cycles = self.threads.iter().map(|t| t.cycles).max().unwrap_or(0);
        let sum_busy: u64 = self.threads.iter().map(|t| t.busy_cycles).sum();
        let sum_mem: u64 = self.threads.iter().map(|t| t.mem_cycles).sum();
        let mem = if sum_busy == 0 {
            0
        } else {
            (max_cycles as f64 * (sum_mem as f64 / sum_busy as f64).min(1.0)) as u64
        };
        Ok((max_cycles, mem))
    }

    /// Run one thread until it blocks, finishes, or traps.
    fn run_thread(&mut self, thread: &mut ThreadCtx) -> Result<(), TrapKind> {
        while thread.status == Status::Running {
            if self.fuel == 0 {
                return Err(TrapKind::FuelExhausted);
            }
            self.fuel -= 1;
            // Fault hook: a single compare against a sentinel when no
            // injection targets this thread.
            if thread.steps >= thread.next_fault_step {
                self.trigger_faults(thread)?;
            }
            thread.steps += 1;
            self.step(thread)?;
        }
        Ok(())
    }

    /// Fire every pending fault whose trigger step has been reached.
    fn trigger_faults(&mut self, thread: &mut ThreadCtx) -> Result<(), TrapKind> {
        while let Some(site) = thread.faults.get(thread.fault_idx) {
            if site.after_steps > thread.steps {
                break;
            }
            let action = site.action.clone();
            thread.fault_idx += 1;
            match action {
                FaultAction::Trap(kind) => {
                    thread.next_fault_step = next_trigger(thread);
                    return Err(kind);
                }
                FaultAction::CorruptLoad { xor } => thread.corrupt_next_load = Some(xor),
                FaultAction::DropBarrierArrival => thread.drop_next_barrier = true,
            }
        }
        thread.next_fault_step = next_trigger(thread);
        Ok(())
    }

    fn cur_func(&self, thread: &ThreadCtx) -> Result<&'a Function, TrapKind> {
        let Some(f) = thread.frames.last() else {
            return Err(malformed("live thread has no frame"));
        };
        let m: &'a Module = self.module;
        m.funcs
            .get(f.func as usize)
            .ok_or_else(|| malformed(format!("frame references missing function {}", f.func)))
    }

    /// Execute one instruction or the block terminator.
    fn step(&mut self, thread: &mut ThreadCtx) -> Result<(), TrapKind> {
        let func = self.cur_func(thread)?;
        let Some(frame) = thread.frames.last() else {
            return Err(malformed("live thread has no frame"));
        };
        let Some(block) = func.blocks.get(frame.block.index()) else {
            return Err(malformed(format!(
                "frame in @{} references missing bb{}",
                func.name, frame.block.0
            )));
        };
        if frame.inst_idx >= block.insts.len() {
            let term: &'a Term = &block.term;
            return self.step_term(thread, term);
        }
        let iid = block.insts[frame.inst_idx];
        let Some(inst) = func.insts.get(iid.index()) else {
            return Err(malformed(format!(
                "bb{} in @{} lists missing inst %{}",
                frame.block.0, func.name, iid.0
            )));
        };
        let inst: &'a Inst = inst;
        self.counters.instructions += 1;
        thread.cycles += self.cost.issue;
        thread.busy_cycles += self.cost.issue;
        self.exec_inst(thread, iid, inst)
    }

    fn eval(&self, thread: &ThreadCtx, op: Operand) -> Result<RtVal, TrapKind> {
        let Some(frame) = thread.frames.last() else {
            return Err(malformed("operand evaluated with no frame"));
        };
        Ok(match op {
            Operand::Inst(i) => *frame
                .regs
                .get(i.index())
                .ok_or_else(|| malformed(format!("operand references missing inst %{}", i.0)))?,
            Operand::Param(p) => *frame
                .args
                .get(p as usize)
                .ok_or_else(|| malformed(format!("operand references missing param {p}")))?,
            Operand::ConstI(v, ty) => {
                if ty == Ty::Ptr {
                    RtVal::P(DevPtr(v as u64))
                } else {
                    RtVal::I(v)
                }
            }
            Operand::ConstF(v) => RtVal::F(v),
            Operand::Global(g) => RtVal::P(*self.layout.addr_of.get(g.index()).ok_or_else(
                || malformed(format!("operand references missing global {}", g.0)),
            )?),
            Operand::Func(f) => RtVal::P(DevPtr::func(f.0)),
        })
    }

    fn set_reg(&self, thread: &mut ThreadCtx, id: InstId, v: RtVal) -> Result<(), TrapKind> {
        let Some(frame) = thread.frames.last_mut() else {
            return Err(malformed("register written with no frame"));
        };
        let Some(slot) = frame.regs.get_mut(id.index()) else {
            return Err(malformed(format!("result register %{} out of range", id.0)));
        };
        *slot = v;
        Ok(())
    }

    // ---- memory ----------------------------------------------------------

    fn mem_read(&mut self, thread: &ThreadCtx, ptr: DevPtr, size: u64) -> Result<i64, TrapKind> {
        match ptr.segment() {
            Segment::Null => Err(TrapKind::NullDeref),
            Segment::Global => {
                self.counters.global_accesses += 1;
                self.global.read(ptr.offset(), size)
            }
            Segment::Shared => {
                self.counters.shared_accesses += 1;
                self.shared.read(ptr.offset(), size)
            }
            Segment::Local => {
                if ptr.owner() != thread.tid {
                    return Err(TrapKind::CrossThreadLocalAccess {
                        owner: ptr.owner(),
                        accessor: thread.tid,
                    });
                }
                self.counters.local_accesses += 1;
                thread.local.read(ptr.offset(), size)
            }
            Segment::Constant => self.constant.read(ptr.offset(), size),
            Segment::Func => Err(TrapKind::OutOfBounds),
        }
    }

    fn mem_write(
        &mut self,
        thread: &mut ThreadCtx,
        ptr: DevPtr,
        size: u64,
        value: i64,
    ) -> Result<(), TrapKind> {
        match ptr.segment() {
            Segment::Null => Err(TrapKind::NullDeref),
            Segment::Global => {
                self.counters.global_accesses += 1;
                self.global.write(ptr.offset(), size, value)
            }
            Segment::Shared => {
                self.counters.shared_accesses += 1;
                self.shared.write(ptr.offset(), size, value)
            }
            Segment::Local => {
                if ptr.owner() != thread.tid {
                    return Err(TrapKind::CrossThreadLocalAccess {
                        owner: ptr.owner(),
                        accessor: thread.tid,
                    });
                }
                self.counters.local_accesses += 1;
                thread.local.write(ptr.offset(), size, value)
            }
            Segment::Constant => Err(TrapKind::OutOfBounds),
            Segment::Func => Err(TrapKind::OutOfBounds),
        }
    }

    fn load_typed(&mut self, thread: &ThreadCtx, ptr: DevPtr, ty: Ty) -> Result<RtVal, TrapKind> {
        let bits = self.mem_read(thread, ptr, ty.size())?;
        Ok(rtval_from_bits(bits, ty))
    }

    // ---- instruction dispatch ---------------------------------------------

    fn exec_inst(
        &mut self,
        thread: &mut ThreadCtx,
        iid: InstId,
        inst: &Inst,
    ) -> Result<(), TrapKind> {
        // Advance past this instruction up-front; control transfers
        // (calls/barriers) rely on the frame already pointing at the next
        // instruction.
        {
            let Some(frame) = thread.frames.last_mut() else {
                return Err(malformed("instruction executed with no frame"));
            };
            frame.inst_idx += 1;
        }

        match inst {
            Inst::Bin { op, ty, lhs, rhs } => {
                let a = self.eval(thread, *lhs)?;
                let b = self.eval(thread, *rhs)?;
                let v = self.exec_bin(*op, *ty, a, b)?;
                if op.is_float() {
                    self.counters.flops += 1;
                    thread.cycles += self.cost.fp;
                    thread.busy_cycles += self.cost.fp;
                } else {
                    thread.cycles += self.cost.alu;
                    thread.busy_cycles += self.cost.alu;
                }
                self.set_reg(thread, iid, v)?;
            }
            Inst::Un { op, ty, arg } => {
                let a = self.eval(thread, *arg)?;
                let v = exec_un(*op, *ty, a);
                match op {
                    UnOp::Sqrt | UnOp::Sin | UnOp::Cos | UnOp::Exp | UnOp::Log => {
                        self.counters.flops += 1;
                        thread.cycles += self.cost.transcendental;
                        thread.busy_cycles += self.cost.transcendental;
                    }
                    UnOp::FNeg | UnOp::FAbs => {
                        self.counters.flops += 1;
                        thread.cycles += self.cost.fp;
                        thread.busy_cycles += self.cost.fp;
                    }
                    _ => thread.cycles += self.cost.alu,
                }
                self.set_reg(thread, iid, v)?;
            }
            Inst::Cast { kind, to, arg } => {
                let a = self.eval(thread, *arg)?;
                let v = exec_cast(*kind, *to, a);
                thread.cycles += self.cost.alu;
                thread.busy_cycles += self.cost.alu;
                self.set_reg(thread, iid, v)?;
            }
            Inst::Cmp { pred, ty, lhs, rhs } => {
                let a = self.eval(thread, *lhs)?;
                let b = self.eval(thread, *rhs)?;
                let v = exec_cmp(*pred, *ty, a, b);
                thread.cycles += self.cost.alu;
                thread.busy_cycles += self.cost.alu;
                self.set_reg(thread, iid, RtVal::I(v as i64))?;
            }
            Inst::Select {
                cond,
                if_true,
                if_false,
                ..
            } => {
                let c = self.eval(thread, *cond)?.as_bool();
                let v = if c {
                    self.eval(thread, *if_true)?
                } else {
                    self.eval(thread, *if_false)?
                };
                thread.cycles += self.cost.alu;
                thread.busy_cycles += self.cost.alu;
                self.set_reg(thread, iid, v)?;
            }
            Inst::Load { ty, ptr } => {
                let p = self.eval(thread, *ptr)?.as_ptr();
                let c = self.cost.mem(p.segment());
                thread.cycles += c;
                thread.busy_cycles += c;
                thread.mem_cycles += c;
                let mut v = self.load_typed(thread, p, *ty)?;
                self.san_record(thread, iid, AccessKind::Read, p, ty.size());
                if let Some(xor) = thread.corrupt_next_load.take() {
                    v = corrupt_value(v, xor, *ty);
                }
                self.set_reg(thread, iid, v)?;
            }
            Inst::Store { ty, ptr, value } => {
                let p = self.eval(thread, *ptr)?.as_ptr();
                let v = self.eval(thread, *value)?;
                let c = self.cost.mem(p.segment());
                thread.cycles += c;
                thread.busy_cycles += c;
                thread.mem_cycles += c;
                self.mem_write(thread, p, ty.size(), v.to_bits())?;
                self.san_record(thread, iid, AccessKind::Write, p, ty.size());
            }
            Inst::PtrAdd { base, offset } => {
                let b = self.eval(thread, *base)?.as_ptr();
                let o = self.eval(thread, *offset)?.as_i();
                thread.cycles += self.cost.alu;
                thread.busy_cycles += self.cost.alu;
                self.set_reg(thread, iid, RtVal::P(b.add_bytes(o)))?;
            }
            Inst::Alloca { size } => {
                let aligned = (*size + 7) & !7;
                let off = thread.local_top;
                thread.local_top += aligned;
                thread.local.grow_to(thread.local_top as usize);
                self.set_reg(thread, iid, RtVal::P(DevPtr::local(thread.tid, off as u32)))?;
            }
            Inst::Call { callee, args, ret } => {
                self.exec_call(thread, iid, *callee, args, ret.is_some())?;
            }
            Inst::Atomic { op, ty, ptr, value } => {
                let p = self.eval(thread, *ptr)?.as_ptr();
                let v = self.eval(thread, *value)?;
                thread.cycles += self.cost.atomic;
                thread.busy_cycles += self.cost.atomic;
                thread.mem_cycles += self.cost.atomic;
                if p.segment() == Segment::Global {
                    // Global atomics go through the global view so buffered
                    // execution can log the *operation* for wave-ordered
                    // replay. Two accesses (read + write), as before.
                    self.counters.global_accesses += 2;
                    // Only buffered execution cares whether the observed
                    // old value can steer behavior; skip the liveness
                    // lookup on the sequential hot path.
                    let result_used = match &self.global {
                        GlobalMem::Direct { .. } => true,
                        GlobalMem::Buffered(_) => {
                            let func_idx = thread
                                .frames
                                .last()
                                .map(|f| f.func)
                                .ok_or_else(|| malformed("atomic executed with no frame"))?;
                            self.result_is_used(func_idx, iid)
                        }
                    };
                    let old = self.global.atomic(*op, *ty, p.offset(), v, result_used)?;
                    self.set_reg(thread, iid, old)?;
                } else {
                    let old = self.load_typed(thread, p, *ty)?;
                    let new = combine_atomic(*op, *ty, old, v);
                    self.mem_write(thread, p, ty.size(), new.to_bits())?;
                    self.set_reg(thread, iid, old)?;
                }
                self.san_record(thread, iid, AccessKind::Atomic, p, ty.size());
            }
            Inst::Cas {
                ty,
                ptr,
                expected,
                new,
            } => {
                let p = self.eval(thread, *ptr)?.as_ptr();
                let e = self.eval(thread, *expected)?;
                let n = self.eval(thread, *new)?;
                thread.cycles += self.cost.atomic;
                thread.busy_cycles += self.cost.atomic;
                thread.mem_cycles += self.cost.atomic;
                if p.segment() == Segment::Global {
                    self.counters.global_accesses += 1;
                    let (old, stored) =
                        self.global.cas(*ty, p.offset(), e.to_bits(), n.to_bits())?;
                    if stored {
                        self.counters.global_accesses += 1;
                    }
                    self.set_reg(thread, iid, old)?;
                } else {
                    let old = self.load_typed(thread, p, *ty)?;
                    if old.to_bits() == e.to_bits() {
                        self.mem_write(thread, p, ty.size(), n.to_bits())?;
                    }
                    self.set_reg(thread, iid, old)?;
                }
                self.san_record(thread, iid, AccessKind::Atomic, p, ty.size());
            }
            Inst::Intr { intr, args } => {
                self.exec_intr(thread, iid, *intr, args)?;
            }
            Inst::Phi { .. } => {
                // Phis are materialized by terminators; stepping onto one
                // means the block was constructed with a phi after a
                // non-phi — a shape the verifier rejects.
                return Err(malformed("phi executed directly (phi after non-phi)"));
            }
        }
        Ok(())
    }

    fn exec_bin(&self, op: BinOp, ty: Ty, a: RtVal, b: RtVal) -> Result<RtVal, TrapKind> {
        if op.is_float() {
            let (x, y) = (a.as_f(), b.as_f());
            let v = match op {
                BinOp::FAdd => x + y,
                BinOp::FSub => x - y,
                BinOp::FMul => x * y,
                BinOp::FDiv => x / y,
                BinOp::FMin => x.min(y),
                BinOp::FMax => x.max(y),
                _ => unreachable!(),
            };
            return Ok(RtVal::F(v));
        }
        let (x, y) = (a.as_i(), b.as_i());
        let v = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::SDiv => {
                if y == 0 {
                    return Err(TrapKind::DivByZero);
                }
                x.wrapping_div(y)
            }
            BinOp::SRem => {
                if y == 0 {
                    return Err(TrapKind::DivByZero);
                }
                x.wrapping_rem(y)
            }
            BinOp::UDiv => {
                if y == 0 {
                    return Err(TrapKind::DivByZero);
                }
                ((x as u64) / (y as u64)) as i64
            }
            BinOp::URem => {
                if y == 0 {
                    return Err(TrapKind::DivByZero);
                }
                ((x as u64) % (y as u64)) as i64
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32 & 63),
            BinOp::LShr => ((x as u64).wrapping_shr(y as u32 & 63)) as i64,
            BinOp::AShr => x.wrapping_shr(y as u32 & 63),
            BinOp::SMin => x.min(y),
            BinOp::SMax => x.max(y),
            _ => unreachable!(),
        };
        // Pointer-typed Bin results keep pointer-ness through PtrCast only;
        // plain int arithmetic suffices here.
        let _ = ty;
        Ok(RtVal::I(v))
    }

    fn exec_call(
        &mut self,
        thread: &mut ThreadCtx,
        iid: InstId,
        callee: Operand,
        args: &[Operand],
        has_ret: bool,
    ) -> Result<(), TrapKind> {
        let (target, indirect) = match callee {
            Operand::Func(f) => (f.0, false),
            other => {
                let p = self.eval(thread, other)?.as_ptr();
                if p.segment() != Segment::Func {
                    return Err(TrapKind::BadIndirectCall);
                }
                (p.offset() as u32, true)
            }
        };
        if target as usize >= self.module.funcs.len() {
            return Err(TrapKind::BadIndirectCall);
        }
        let func = &self.module.funcs[target as usize];
        if func.is_declaration() {
            return Err(TrapKind::UnresolvedCall(func.name.clone()));
        }
        if func.params.len() != args.len() {
            return Err(TrapKind::BadLaunch(format!(
                "call of @{} with {} args (expects {})",
                func.name,
                args.len(),
                func.params.len()
            )));
        }
        thread.cycles += self.cost.call;
        thread.busy_cycles += self.cost.call;
        if indirect {
            thread.cycles += self.cost.indirect_call;
            thread.busy_cycles += self.cost.indirect_call;
        }
        if func.name.starts_with("__kmpc") || func.name.starts_with("omp_") {
            self.counters.runtime_calls += 1;
        }
        let argv: Vec<RtVal> = args
            .iter()
            .map(|a| self.eval(thread, *a))
            .collect::<Result<_, _>>()?;
        if let Some(san) = self.san.as_deref_mut() {
            // Allocator release: the freed range's shadow is retired
            // (ownership transfer — see `sanitize::REGION_RELEASE_FNS`).
            if san.is_release_fn(target) {
                if let (Some(&RtVal::P(p)), Some(&RtVal::I(sz))) = (argv.first(), argv.get(1)) {
                    let aligned = (sz.max(0) as u64).next_multiple_of(8);
                    san.on_region_release(p.segment(), p.offset(), aligned);
                }
            }
        }
        let frame = Frame {
            func: target,
            block: BlockId::ENTRY,
            inst_idx: 0,
            regs: vec![RtVal::I(0); func.insts.len()],
            args: argv,
            ret_dst: has_ret.then_some(iid),
            local_base: thread.local_top,
        };
        thread.frames.push(frame);
        Ok(())
    }

    fn exec_intr(
        &mut self,
        thread: &mut ThreadCtx,
        iid: InstId,
        intr: Intrinsic,
        args: &[Operand],
    ) -> Result<(), TrapKind> {
        match intr {
            Intrinsic::ThreadId => {
                let v = RtVal::I(thread.tid as i64);
                self.set_reg(thread, iid, v)?;
            }
            Intrinsic::BlockId => {
                let v = RtVal::I(self.team_id as i64);
                self.set_reg(thread, iid, v)?;
            }
            Intrinsic::BlockDim => {
                let v = RtVal::I(self.nthreads as i64);
                self.set_reg(thread, iid, v)?;
            }
            Intrinsic::GridDim => {
                let v = RtVal::I(self.num_teams as i64);
                self.set_reg(thread, iid, v)?;
            }
            Intrinsic::AlignedBarrier => {
                if thread.drop_next_barrier {
                    // Injected fault: the thread sails past the barrier.
                    // The team scheduler observes the broken promise as a
                    // deadlock (or a divergent-arrival trap) downstream.
                    thread.drop_next_barrier = false;
                } else {
                    if self.san.is_some() {
                        thread.barrier_site = thread.frames.last().map(|f| IrLoc {
                            func: f.func,
                            block: f.block.0,
                            inst: iid.0,
                        });
                    }
                    thread.status = Status::AtBarrier { aligned: true };
                }
            }
            Intrinsic::Barrier => {
                if thread.drop_next_barrier {
                    thread.drop_next_barrier = false;
                } else {
                    if self.san.is_some() {
                        thread.barrier_site = thread.frames.last().map(|f| IrLoc {
                            func: f.func,
                            block: f.block.0,
                            inst: iid.0,
                        });
                    }
                    thread.status = Status::AtBarrier { aligned: false };
                }
            }
            Intrinsic::Assume(()) => {
                if self.check_assumes {
                    let Some(&cond) = args.first() else {
                        return Err(malformed("assume intrinsic with no operand"));
                    };
                    let c = self.eval(thread, cond)?.as_bool();
                    if !c {
                        return Err(TrapKind::AssumeViolated);
                    }
                }
            }
            Intrinsic::AssertFail => return Err(TrapKind::AssertFail),
            Intrinsic::Malloc => {
                let Some(&sz) = args.first() else {
                    return Err(malformed("malloc intrinsic with no operand"));
                };
                let size = self.eval(thread, sz)?.as_i().max(0) as u64;
                thread.cycles += self.cost.malloc;
                thread.busy_cycles += self.cost.malloc;
                thread.mem_cycles += self.cost.malloc;
                self.counters.device_mallocs += 1;
                let off = {
                    // Heap offsets depend on every prior allocation, so
                    // malloc cannot be buffered: signal the engine to
                    // re-run this team in direct mode (where this branch
                    // applies as-is).
                    let GlobalMem::Direct { region, heap } = &mut self.global else {
                        return Err(TrapKind::ParallelBailout);
                    };
                    let aligned = (size + 7) & !7;
                    let off = region.len() as u64;
                    if off + aligned > heap.limit {
                        return Err(TrapKind::OutOfMemory);
                    }
                    region.grow_to((off + aligned) as usize);
                    heap.live_allocs.insert(off, aligned);
                    off
                };
                self.set_reg(thread, iid, RtVal::P(DevPtr::global(off as u32)))?;
            }
            Intrinsic::Free => {
                let Some(&ptr) = args.first() else {
                    return Err(malformed("free intrinsic with no operand"));
                };
                let p = self.eval(thread, ptr)?.as_ptr();
                if p.is_null() {
                    return Ok(());
                }
                let GlobalMem::Direct { heap, .. } = &mut self.global else {
                    return Err(TrapKind::ParallelBailout);
                };
                if heap.live_allocs.remove(&p.offset()).is_none() {
                    return Err(TrapKind::BadFree);
                }
            }
        }
        Ok(())
    }

    fn step_term(&mut self, thread: &mut ThreadCtx, term: &Term) -> Result<(), TrapKind> {
        match term {
            Term::Br(target) => self.jump(thread, *target),
            Term::CondBr {
                cond,
                if_true,
                if_false,
            } => {
                let c = self.eval(thread, *cond)?.as_bool();
                thread.cycles += self.cost.alu;
                thread.busy_cycles += self.cost.alu;
                let t = if c { *if_true } else { *if_false };
                self.jump(thread, t)
            }
            Term::Ret(v) => {
                let val = match v {
                    Some(op) => Some(self.eval(thread, *op)?),
                    None => None,
                };
                let Some(frame) = thread.frames.pop() else {
                    return Err(malformed("return with no frame"));
                };
                thread.local_top = frame.local_base;
                match thread.frames.last_mut() {
                    None => {
                        thread.status = Status::Done;
                    }
                    Some(caller) => {
                        if let (Some(dst), Some(v)) = (frame.ret_dst, val) {
                            let Some(slot) = caller.regs.get_mut(dst.index()) else {
                                return Err(malformed(format!(
                                    "return destination %{} out of range",
                                    dst.0
                                )));
                            };
                            *slot = v;
                        }
                    }
                }
                Ok(())
            }
            Term::Unreachable => Err(TrapKind::AssertFail),
        }
    }

    /// Transfer control to `target`, materializing its phi nodes with
    /// parallel-copy semantics.
    fn jump(&mut self, thread: &mut ThreadCtx, target: BlockId) -> Result<(), TrapKind> {
        let func = self.cur_func(thread)?;
        let Some(frame) = thread.frames.last() else {
            return Err(malformed("branch with no frame"));
        };
        let from = frame.block;
        let Some(block) = func.blocks.get(target.index()) else {
            return Err(malformed(format!(
                "branch in @{} targets missing bb{}",
                func.name, target.0
            )));
        };
        // Evaluate all phi inputs before writing any.
        let mut writes: Vec<(InstId, RtVal)> = Vec::new();
        let mut phi_count = 0usize;
        for &iid in &block.insts {
            let Some(inst) = func.insts.get(iid.index()) else {
                return Err(malformed(format!(
                    "bb{} in @{} lists missing inst %{}",
                    target.0, func.name, iid.0
                )));
            };
            match inst {
                Inst::Phi { incomings, .. } => {
                    phi_count += 1;
                    // The verifier rejects this shape (`ir::verify`); a
                    // hand-built module loaded straight onto a device
                    // degrades to a typed trap instead of a process abort.
                    let Some(inc) = incomings.iter().find(|i| i.pred == from) else {
                        return Err(malformed(format!(
                            "phi %{} in @{} bb{} missing incoming for bb{}",
                            iid.0, func.name, target.0, from.0
                        )));
                    };
                    writes.push((iid, self.eval(thread, inc.value)?));
                }
                _ => break,
            }
        }
        let Some(frame) = thread.frames.last_mut() else {
            return Err(malformed("branch with no frame"));
        };
        for (iid, v) in writes {
            let Some(slot) = frame.regs.get_mut(iid.index()) else {
                return Err(malformed(format!("phi result %{} out of range", iid.0)));
            };
            *slot = v;
        }
        frame.block = target;
        frame.inst_idx = phi_count;
        self.counters.instructions += phi_count as u64;
        Ok(())
    }

    /// Arrival snapshot of the given live (waiting) threads, for the
    /// sanitizer's divergence checks.
    fn barrier_arrivals(&self, live: &[usize]) -> Vec<BarrierArrival> {
        live.iter()
            .map(|&t| {
                let th = &self.threads[t];
                BarrierArrival {
                    tid: th.tid,
                    aligned: matches!(th.status, Status::AtBarrier { aligned: true }),
                    site: th.barrier_site,
                }
            })
            .collect()
    }

    /// Final per-thread cycle counts (after `run`).
    pub fn thread_cycles(&self) -> Vec<u64> {
        self.threads.iter().map(|t| t.cycles).collect()
    }
}

/// Step count of the thread's next pending fault (`u64::MAX` = never).
fn next_trigger(thread: &ThreadCtx) -> u64 {
    thread
        .faults
        .get(thread.fault_idx)
        .map_or(u64::MAX, |s| s.after_steps)
}

/// Apply a [`FaultAction::CorruptLoad`] mask, keeping the value's type
/// (the same bit-reinterpretation rule `load_typed` uses).
fn corrupt_value(v: RtVal, xor: u64, ty: Ty) -> RtVal {
    let bits = (v.to_bits() as u64) ^ xor;
    match ty {
        Ty::F64 => RtVal::F(f64::from_bits(bits)),
        Ty::Ptr => RtVal::P(DevPtr(bits)),
        _ => RtVal::I(bits as i64),
    }
}

fn exec_un(op: UnOp, ty: Ty, a: RtVal) -> RtVal {
    let _ = ty;
    match op {
        UnOp::Neg => RtVal::I(a.as_i().wrapping_neg()),
        UnOp::Not => RtVal::I(!a.as_i()),
        UnOp::FNeg => RtVal::F(-a.as_f()),
        UnOp::FAbs => RtVal::F(a.as_f().abs()),
        UnOp::Sqrt => RtVal::F(a.as_f().sqrt()),
        UnOp::Sin => RtVal::F(a.as_f().sin()),
        UnOp::Cos => RtVal::F(a.as_f().cos()),
        UnOp::Exp => RtVal::F(a.as_f().exp()),
        UnOp::Log => RtVal::F(a.as_f().ln()),
    }
}

fn exec_cast(kind: CastKind, to: Ty, a: RtVal) -> RtVal {
    match kind {
        CastKind::IntCast => RtVal::I(match to {
            Ty::I1 => a.as_i() & 1,
            Ty::I8 => a.as_i() as i8 as i64,
            Ty::I32 => a.as_i() as i32 as i64,
            _ => a.as_i(),
        }),
        CastKind::ZExtCast => RtVal::I(match to {
            Ty::I1 => a.as_i() & 1,
            Ty::I8 => a.as_i() & 0xff,
            Ty::I32 => a.as_i() & 0xffff_ffff,
            _ => a.as_i(),
        }),
        CastKind::SiToFp => RtVal::F(a.as_i() as f64),
        CastKind::FpToSi => RtVal::I(a.as_f() as i64),
        CastKind::PtrCast => {
            if to == Ty::Ptr {
                RtVal::P(DevPtr(a.as_i() as u64))
            } else {
                RtVal::I(a.as_ptr().0 as i64)
            }
        }
    }
}

fn exec_cmp(pred: Pred, ty: Ty, a: RtVal, b: RtVal) -> bool {
    if ty.is_float() {
        let (x, y) = (a.as_f(), b.as_f());
        return match pred {
            Pred::Eq => x == y,
            Pred::Ne => x != y,
            Pred::Slt | Pred::Ult => x < y,
            Pred::Sle | Pred::Ule => x <= y,
            Pred::Sgt | Pred::Ugt => x > y,
            Pred::Sge | Pred::Uge => x >= y,
        };
    }
    let (x, y) = (a.to_bits(), b.to_bits());
    match pred {
        Pred::Eq => x == y,
        Pred::Ne => x != y,
        Pred::Slt => x < y,
        Pred::Sle => x <= y,
        Pred::Sgt => x > y,
        Pred::Sge => x >= y,
        Pred::Ult => (x as u64) < (y as u64),
        Pred::Ule => (x as u64) <= (y as u64),
        Pred::Ugt => (x as u64) > (y as u64),
        Pred::Uge => (x as u64) >= (y as u64),
    }
}

