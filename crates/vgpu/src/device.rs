//! The device: module loading, host-side memory management, kernel launch.

use std::sync::Arc;

use nzomp_ir::analysis::liveness;
use nzomp_ir::{Module, Space, Ty};

use crate::bytecode::{lower_module, BcModule};
use crate::cost::{CostModel, DeviceConfig};
use crate::error::{ExecError, TrapKind};
use crate::exec::{ExecTier, TeamEngine};
use crate::faults::{DeviceFaultKind, FaultPlan};
use crate::gmem::{apply_effects, GlobalMem};
use crate::interp::{Counters, GlobalLayout, HeapState};
use crate::memory::{DevPtr, Region};
use crate::memory::Segment;
use crate::metrics::KernelMetrics;
use crate::par::{run_wave, WaveCtx};
use crate::sanitize::{self, LaunchSan, SanReport, TeamSan, COND_WRITE_SINK};
use crate::value::RtVal;

/// Host-side memcpy errors carry a synthetic function name so the one
/// [`ExecError`] type (and its `Display`) covers both device traps and
/// host accesses; `team`/`thread` are 0 because no device thread ran.
fn host_oob(op: &str) -> ExecError {
    ExecError {
        kind: TrapKind::OutOfBounds,
        team: 0,
        thread: 0,
        func: format!("<host {op}>"),
    }
}

/// Resolve the worker-thread count: an explicit config value wins;
/// otherwise `NZOMP_VGPU_THREADS` (>= 1) is consulted; default 1
/// (pure sequential execution).
fn resolve_workers(config_value: u32) -> usize {
    if config_value > 0 {
        return config_value as usize;
    }
    std::env::var("NZOMP_VGPU_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Resolve the execution tier from `NZOMP_EXEC_TIER` (`interp` or
/// `bytecode`); default is the reference interpreter. An explicit
/// [`Device::set_exec_tier`] call overrides the load-time resolution,
/// mirroring [`resolve_workers`].
fn resolve_exec_tier() -> ExecTier {
    match std::env::var("NZOMP_EXEC_TIER")
        .ok()
        .as_deref()
        .map(str::trim)
    {
        Some(v) if v.eq_ignore_ascii_case("bytecode") => ExecTier::Bytecode,
        _ => ExecTier::Interp,
    }
}

/// Resolve `(sanitize, strict)`: an explicit config opt-in wins;
/// otherwise `NZOMP_SANITIZE` is consulted (`1`/`true`/`on` = report-only,
/// `strict` = report + trap); default off. Mirrors [`resolve_workers`].
fn resolve_sanitize(config_value: bool) -> (bool, bool) {
    if config_value {
        return (true, false);
    }
    match std::env::var("NZOMP_SANITIZE").ok().as_deref().map(str::trim) {
        Some("strict") => (true, true),
        Some(v) if v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on") => {
            (true, false)
        }
        _ => (false, false),
    }
}

/// Launch parameters.
#[derive(Clone, Copy, Debug)]
pub struct Launch {
    pub teams: u32,
    pub threads_per_team: u32,
    /// Extra dynamic shared memory per team (paper §III-D: "the runtime
    /// also supports the use of dynamic shared memory").
    pub dyn_smem_bytes: u64,
}

impl Launch {
    pub fn new(teams: u32, threads_per_team: u32) -> Launch {
        Launch {
            teams,
            threads_per_team,
            dyn_smem_bytes: 0,
        }
    }
}

/// A loaded module plus device memory. Global memory persists across
/// launches (like a real device), so hosts can upload inputs once and run
/// several kernels.
pub struct Device {
    pub config: DeviceConfig,
    pub cost: CostModel,
    module: Module,
    layout: GlobalLayout,
    global: Region,
    constant: Region,
    heap: HeapState,
    /// Armed fault-injection plan applied to every subsequent launch
    /// (`None` in production: the interpreter hot loop then performs a
    /// single always-false compare per instruction).
    faults: Option<FaultPlan>,
    /// Host worker threads for parallel team execution (`1` = the exact
    /// sequential code path). Resolved at load from
    /// `DeviceConfig::worker_threads` / `NZOMP_VGPU_THREADS`.
    workers: usize,
    /// Data-race & barrier-divergence sanitizer armed for launches.
    /// Resolved at load from `DeviceConfig::sanitize` / `NZOMP_SANITIZE`.
    sanitize: bool,
    /// Promote sanitizer findings of an otherwise clean launch to a
    /// [`TrapKind::SanitizerViolation`] (`NZOMP_SANITIZE=strict`).
    san_strict: bool,
    /// Shared-space ranges the sanitizer must not check: the cond-write
    /// sink (`__omp_rtl_dummy`), whose concurrent plain stores are the
    /// deliberate Fig. 7b idiom. Computed once at load.
    suppress_shared: Vec<(u64, u64)>,
    /// Function indices of the allocator release entry points
    /// ([`sanitize::REGION_RELEASE_FNS`]) — the sanitizer retires the
    /// shadow of released ranges. Computed once at load.
    release_fns: Vec<u32>,
    /// Sanitizer outcome of the most recent launch (kept even when the
    /// launch trapped).
    last_san: Option<LaunchSan>,
    /// Host-visible device operations performed (memcpys + launches) —
    /// the trigger clock of [`crate::faults::DeviceFaultSite`]s. Reset
    /// when a plan is (re-)armed so seeded campaigns reproduce.
    dev_ops: u64,
    /// One consumed flag per armed `device_sites` entry.
    dev_sites_fired: Vec<bool>,
    /// The device vanished (a [`DeviceFaultKind::Lost`] site fired):
    /// every further memcpy/launch returns [`TrapKind::DeviceLost`].
    lost: bool,
    /// Host-imposed launch watchdog: caps the fuel budget of every launch
    /// at `min(watchdog, plan-or-config budget)`. `None` in production.
    watchdog_fuel: Option<u64>,
    /// Execution tier for subsequent launches. Resolved at load from
    /// `NZOMP_EXEC_TIER`; [`Device::set_exec_tier`] overrides. Both tiers
    /// are bit-identical in every observable (memory image, metrics,
    /// traps, sanitizer verdicts) — see `docs/exec-tiers.md`.
    tier: ExecTier,
    /// Lazily lowered bytecode image. A pure function of the loaded
    /// module and the fixed global layout, so it is computed at most once
    /// per device and never invalidated.
    bc: Option<Arc<BcModule>>,
}

impl Device {
    /// Load `module` onto a device with the given configuration.
    ///
    /// Global- and constant-space globals get their initializer images;
    /// shared-space globals are *not* statically initialized (real shared
    /// memory is undefined at kernel start — the runtime initializes what
    /// it needs in `__kmpc_target_init`, exactly as in the paper §III).
    pub fn load(module: Module, config: DeviceConfig) -> Device {
        let mut layout = GlobalLayout {
            addr_of: Vec::with_capacity(module.globals.len()),
            ..GlobalLayout::default()
        };
        let mut global_top: u64 = 0;
        let mut shared_top: u64 = 0;
        let mut const_top: u64 = 0;
        for g in &module.globals {
            let align = 8u64;
            match g.space {
                Space::Global => {
                    global_top = (global_top + align - 1) & !(align - 1);
                    layout.addr_of.push(DevPtr::global(global_top as u32));
                    global_top += g.size;
                }
                Space::Shared => {
                    shared_top = (shared_top + align - 1) & !(align - 1);
                    layout.addr_of.push(DevPtr::shared(shared_top as u32));
                    shared_top += g.size;
                }
                Space::Constant => {
                    const_top = (const_top + align - 1) & !(align - 1);
                    layout.addr_of.push(DevPtr::constant(const_top as u32));
                    const_top += g.size;
                }
                Space::Local => {
                    // Local-space globals make no sense; treat as shared so
                    // they at least have storage.
                    shared_top = (shared_top + align - 1) & !(align - 1);
                    layout.addr_of.push(DevPtr::shared(shared_top as u32));
                    shared_top += g.size;
                }
            }
        }
        layout.shared_size = shared_top;
        layout.global_static_size = global_top;
        layout.const_size = const_top;

        let mut global = Region::with_size(global_top as usize);
        let mut constant = Region::with_size(const_top as usize);
        for (i, g) in module.globals.iter().enumerate() {
            let addr = layout.addr_of[i];
            let region = match g.space {
                Space::Global => &mut global,
                Space::Constant => &mut constant,
                _ => continue,
            };
            for off in 0..g.size {
                region.bytes[(addr.offset() + off) as usize] = g.init.byte_at(off);
            }
        }

        let heap = HeapState {
            live_allocs: Default::default(),
            limit: global_top + config.heap_bytes,
        };
        let workers = resolve_workers(config.worker_threads);
        let (sanitize, san_strict) = resolve_sanitize(config.sanitize);
        let suppress_shared: Vec<(u64, u64)> = module
            .globals
            .iter()
            .zip(&layout.addr_of)
            .filter(|(_, addr)| addr.segment() == Segment::Shared)
            .filter_map(|(g, addr)| match g.name.as_str() {
                // The cond-write sink (Fig. 7b): every byte is benign.
                COND_WRITE_SINK => Some((addr.offset(), g.size)),
                // Team state: only the idempotent `HasThreadState` flag.
                sanitize::TEAM_STATE => {
                    let (field_off, len) = sanitize::TEAM_STATE_BENIGN_FIELD;
                    Some((addr.offset() + field_off, len))
                }
                _ => None,
            })
            .collect();
        let release_fns = crate::sanitize::release_fn_ids(&module);
        Device {
            config,
            cost: CostModel::default(),
            module,
            layout,
            global,
            constant,
            heap,
            faults: None,
            workers,
            sanitize,
            san_strict,
            suppress_shared,
            release_fns,
            last_san: None,
            dev_ops: 0,
            dev_sites_fired: Vec::new(),
            lost: false,
            watchdog_fuel: None,
            tier: resolve_exec_tier(),
            bc: None,
        }
    }

    /// Select the execution tier for subsequent launches (overrides the
    /// load-time `NZOMP_EXEC_TIER` resolution). Switching tiers never
    /// changes any observable launch outcome.
    pub fn set_exec_tier(&mut self, tier: ExecTier) {
        self.tier = tier;
    }

    pub fn exec_tier(&self) -> ExecTier {
        self.tier
    }

    /// The bytecode image for the loaded module, lowering it on first use.
    fn ensure_bytecode(&mut self) -> Arc<BcModule> {
        if let Some(bc) = &self.bc {
            return Arc::clone(bc);
        }
        let bc = Arc::new(lower_module(&self.module, &self.layout));
        self.bc = Some(Arc::clone(&bc));
        bc
    }

    /// Set the number of host worker threads used to execute the teams of
    /// a wave concurrently. `1` runs the exact sequential interpreter code
    /// path; any `n` produces bit-identical results (memory, metrics,
    /// traps) — see `docs/parallel-vgpu.md` for the contract.
    pub fn set_worker_threads(&mut self, n: usize) {
        self.workers = n.max(1);
    }

    pub fn worker_threads(&self) -> usize {
        self.workers
    }

    /// Arm or disarm the sanitizer for subsequent launches (overrides the
    /// load-time `DeviceConfig::sanitize` / `NZOMP_SANITIZE` resolution).
    pub fn set_sanitize(&mut self, on: bool) {
        self.sanitize = on;
        if !on {
            self.san_strict = false;
        }
    }

    /// Strict mode: an otherwise clean launch with sanitizer findings
    /// returns a [`TrapKind::SanitizerViolation`] error (implies
    /// sanitizing when enabled).
    pub fn set_sanitize_strict(&mut self, on: bool) {
        self.san_strict = on;
        if on {
            self.sanitize = true;
        }
    }

    pub fn sanitize_enabled(&self) -> bool {
        self.sanitize
    }

    /// Sanitizer findings of the most recent launch, in deterministic
    /// (ascending-team fold) order. Empty when clean — or when sanitizing
    /// is off. Kept even when the launch trapped.
    pub fn sanitizer_reports(&self) -> &[SanReport] {
        self.last_san
            .as_ref()
            .map(|l| l.reports.as_slice())
            .unwrap_or(&[])
    }

    /// `(data races, barrier divergences)` of the most recent launch,
    /// including findings beyond the report retention cap.
    pub fn sanitizer_counts(&self) -> (u64, u64) {
        self.last_san
            .as_ref()
            .map(|l| (l.races, l.divergences))
            .unwrap_or((0, 0))
    }

    /// Raw bytes of device global memory — the determinism tests compare
    /// the entire image bit for bit across worker counts.
    pub fn global_bytes(&self) -> &[u8] {
        &self.global.bytes
    }

    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Arm a fault-injection plan; every subsequent launch executes under
    /// it until [`Device::clear_fault_plan`]. Empty plans disarm.
    ///
    /// (Re-)arming resets the device-fault clock: the op counter, the
    /// consumed-site flags, and the `lost` latch — a test hook that makes
    /// seeded campaigns replayable on one device. A real host never
    /// resurrects hardware this way; it binds a replacement device.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.dev_ops = 0;
        self.lost = false;
        self.dev_sites_fired = vec![false; plan.device_sites.len()];
        self.faults = if plan.is_empty() { None } else { Some(plan) };
    }

    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
        self.dev_ops = 0;
        self.lost = false;
        self.dev_sites_fired.clear();
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Arm (or disarm with `None`) a host launch watchdog: every launch's
    /// fuel budget becomes `min(watchdog, plan-or-config budget)`, so a
    /// runaway kernel traps within a host-chosen step bound instead of
    /// the device default. The host runtime (`nzomp-host`) maps the
    /// resulting budget trap to its typed `Watchdog` error.
    pub fn set_watchdog_fuel(&mut self, fuel: Option<u64>) {
        self.watchdog_fuel = fuel;
    }

    pub fn watchdog_fuel(&self) -> Option<u64> {
        self.watchdog_fuel
    }

    /// Whether the device has been lost to a [`DeviceFaultKind::Lost`]
    /// site. Lost devices fail every memcpy/launch with
    /// [`TrapKind::DeviceLost`].
    pub fn is_lost(&self) -> bool {
        self.lost
    }

    /// The fuel budget the next launch will run under: the watchdog cap,
    /// the armed plan's override, or the device default — whichever binds.
    fn effective_fuel(&self) -> u64 {
        let base = self
            .faults
            .as_ref()
            .and_then(|p| p.fuel_limit)
            .unwrap_or(self.config.max_steps);
        match self.watchdog_fuel {
            Some(w) => w.min(base),
            None => base,
        }
    }

    /// Device-fault poll, run at the entry of every host-visible device
    /// operation (memcpy, launch) *before* it mutates anything — faulted
    /// ops are atomic: they either complete or leave no trace. Returns
    /// the trap to raise, if a site fires (or the device is already
    /// lost). With no plan armed this is two always-false branches.
    fn poll_device_fault(&mut self, is_launch: bool) -> Option<TrapKind> {
        if self.lost {
            return Some(TrapKind::DeviceLost);
        }
        let plan = self.faults.as_ref()?;
        if plan.device_sites.is_empty() {
            return None;
        }
        let op = self.dev_ops;
        self.dev_ops += 1;
        // First unconsumed site whose trigger index has passed and whose
        // kind applies to this op class fires; `Lost` applies to every
        // class and latches.
        for (i, site) in plan.device_sites.iter().enumerate() {
            if self.dev_sites_fired.get(i).copied().unwrap_or(true) || site.after_ops > op {
                continue;
            }
            let applies = match site.kind {
                DeviceFaultKind::Lost => true,
                DeviceFaultKind::StallLaunch => is_launch,
                DeviceFaultKind::MemcpyFail => !is_launch,
            };
            if !applies {
                continue;
            }
            self.dev_sites_fired[i] = true;
            return Some(match site.kind {
                DeviceFaultKind::Lost => {
                    self.lost = true;
                    TrapKind::DeviceLost
                }
                DeviceFaultKind::StallLaunch => TrapKind::Stalled {
                    fuel: self.effective_fuel(),
                },
                DeviceFaultKind::MemcpyFail => TrapKind::MemcpyFault,
            });
        }
        None
    }

    /// Poll wrapper for the host memcpy primitives: same synthetic
    /// `<host read>` / `<host write>` context as [`host_oob`].
    fn poll_memcpy_fault(&mut self, op: &str) -> Result<(), ExecError> {
        match self.poll_device_fault(false) {
            Some(kind) => Err(ExecError {
                kind,
                team: 0,
                thread: 0,
                func: format!("<host {op}>"),
            }),
            None => Ok(()),
        }
    }

    /// Host-side allocation in device global memory.
    pub fn alloc(&mut self, size: u64) -> DevPtr {
        let aligned = (size + 7) & !7;
        let off = (self.global.len() as u64 + 7) & !7;
        self.global.grow_to((off + aligned) as usize);
        DevPtr::global(off as u32)
    }

    /// Allocate and upload a little-endian `f64` slice.
    pub fn alloc_f64(&mut self, data: &[f64]) -> DevPtr {
        let p = self.alloc((data.len() * 8) as u64);
        if self.write_f64(p, data).is_err() {
            unreachable!("freshly allocated region is in bounds");
        }
        p
    }

    pub fn alloc_i64(&mut self, data: &[i64]) -> DevPtr {
        let p = self.alloc((data.len() * 8) as u64);
        if self.write_i64(p, data).is_err() {
            unreachable!("freshly allocated region is in bounds");
        }
        p
    }

    pub fn alloc_i32(&mut self, data: &[i32]) -> DevPtr {
        let p = self.alloc((data.len() * 4) as u64);
        if self.write_i32(p, data).is_err() {
            unreachable!("freshly allocated region is in bounds");
        }
        p
    }

    /// Host→device memcpy. Errors (typed, never a panic) if any part of
    /// the destination lies outside device global memory.
    pub fn write_f64(&mut self, ptr: DevPtr, data: &[f64]) -> Result<(), ExecError> {
        for (i, v) in data.iter().enumerate() {
            self.global
                .write(ptr.offset() + (i * 8) as u64, 8, v.to_bits() as i64)
                .map_err(|_| host_oob("write"))?;
        }
        Ok(())
    }

    pub fn write_i64(&mut self, ptr: DevPtr, data: &[i64]) -> Result<(), ExecError> {
        for (i, v) in data.iter().enumerate() {
            self.global
                .write(ptr.offset() + (i * 8) as u64, 8, *v)
                .map_err(|_| host_oob("write"))?;
        }
        Ok(())
    }

    pub fn write_i32(&mut self, ptr: DevPtr, data: &[i32]) -> Result<(), ExecError> {
        for (i, v) in data.iter().enumerate() {
            self.global
                .write(ptr.offset() + (i * 4) as u64, 4, *v as i64)
                .map_err(|_| host_oob("write"))?;
        }
        Ok(())
    }

    pub fn write_ptr(&mut self, ptr: DevPtr, value: DevPtr) -> Result<(), ExecError> {
        self.global
            .write(ptr.offset(), 8, value.0 as i64)
            .map_err(|_| host_oob("write"))
    }

    /// Raw host→device memcpy — the transfer primitive of the offload
    /// host runtime (`nzomp-host`), which moves opaque byte images rather
    /// than typed slices.
    pub fn write_bytes(&mut self, ptr: DevPtr, data: &[u8]) -> Result<(), ExecError> {
        self.poll_memcpy_fault("write")?;
        let off = ptr.offset() as usize;
        let end = off.checked_add(data.len()).ok_or_else(|| host_oob("write"))?;
        if end > self.global.bytes.len() {
            return Err(host_oob("write"));
        }
        self.global.bytes[off..end].copy_from_slice(data);
        Ok(())
    }

    /// Raw device→host memcpy; typed out-of-bounds error instead of a
    /// panic. `&mut` because the device-fault clock ticks on every
    /// host-visible transfer, even reads.
    pub fn read_bytes(&mut self, ptr: DevPtr, len: usize) -> Result<Vec<u8>, ExecError> {
        self.poll_memcpy_fault("read")?;
        let off = ptr.offset() as usize;
        let end = off.checked_add(len).ok_or_else(|| host_oob("read"))?;
        if end > self.global.bytes.len() {
            return Err(host_oob("read"));
        }
        Ok(self.global.bytes[off..end].to_vec())
    }

    /// Device→host memcpy; typed out-of-bounds error instead of a panic.
    pub fn read_f64(&self, ptr: DevPtr, len: usize) -> Result<Vec<f64>, ExecError> {
        (0..len)
            .map(|i| {
                self.global
                    .read(ptr.offset() + (i * 8) as u64, 8)
                    .map(|bits| f64::from_bits(bits as u64))
                    .map_err(|_| host_oob("read"))
            })
            .collect()
    }

    pub fn read_i64(&self, ptr: DevPtr, len: usize) -> Result<Vec<i64>, ExecError> {
        (0..len)
            .map(|i| {
                self.global
                    .read(ptr.offset() + (i * 8) as u64, 8)
                    .map_err(|_| host_oob("read"))
            })
            .collect()
    }

    pub fn read_i32(&self, ptr: DevPtr, len: usize) -> Result<Vec<i32>, ExecError> {
        (0..len)
            .map(|i| {
                self.global
                    .read(ptr.offset() + (i * 4) as u64, 4)
                    .map(|v| v as i32)
                    .map_err(|_| host_oob("read"))
            })
            .collect()
    }

    /// Address of a named global (host access to device state).
    pub fn global_addr(&self, name: &str) -> Option<DevPtr> {
        self.module
            .find_global(name)
            .map(|g| self.layout.addr_of[g.index()])
    }

    /// Launch a kernel by name. Returns metrics on success; `ExecError` on
    /// any device trap.
    pub fn launch(
        &mut self,
        kernel: &str,
        launch: Launch,
        args: &[RtVal],
    ) -> Result<KernelMetrics, ExecError> {
        if let Some(kind) = self.poll_device_fault(true) {
            return Err(ExecError {
                kind,
                team: 0,
                thread: 0,
                func: kernel.to_string(),
            });
        }
        let func_ref = self.module.find_func(kernel).ok_or_else(|| ExecError {
            kind: TrapKind::BadLaunch(format!("no kernel @{kernel}")),
            team: 0,
            thread: 0,
            func: kernel.to_string(),
        })?;
        let func = self.module.func(func_ref);
        if func.params.len() != args.len() {
            return Err(ExecError {
                kind: TrapKind::BadLaunch(format!(
                    "kernel @{kernel} takes {} args, got {}",
                    func.params.len(),
                    args.len()
                )),
                team: 0,
                thread: 0,
                func: kernel.to_string(),
            });
        }
        // Pointer args must not be dangling-typed; only count check above
        // (the IR is untyped enough that the kernel will trap if wrong).
        let _ = func.params.iter().map(|t| matches!(t, Ty::Ptr)).count();

        // Registers are allocated for the whole call tree on a GPU (no real
        // call stack): take the maximum over every function reachable from
        // the kernel.
        let cg = nzomp_ir::analysis::callgraph::CallGraph::build(&self.module);
        let regs = cg
            .reachable_from(&self.module, &[func_ref])
            .into_iter()
            .map(|fr| self.module.func(fr))
            .filter(|f| !f.is_declaration())
            .map(liveness::register_estimate)
            .max()
            .unwrap_or_else(|| liveness::register_estimate(func));
        let smem = self.layout.shared_size;
        let shared_total = smem + launch.dyn_smem_bytes;

        // Occupancy is computed up front: the wave chunking drives *both*
        // the parallel team engine (which wave a team runs in) and the
        // cycle aggregation below, so they can never disagree.
        let tps = self
            .config
            .teams_per_sm(regs, launch.threads_per_team, shared_total.max(1));
        let wave_size = self.config.wave_size(tps);

        // Fault plans and the host watchdog can shrink the step budget,
        // and fault plans the device heap, for this launch; the heap
        // limit is restored afterwards (even on a trap) so one faulted
        // launch does not poison the next.
        let mut fuel = self.effective_fuel();
        let saved_heap_limit = self.heap.limit;
        if let Some(budget) = self.faults.as_ref().and_then(|p| p.heap_limit) {
            self.heap.limit = (self.global.len() as u64).saturating_add(budget);
        }
        // Sanitizer launch state: folded team by team in ascending order
        // (both execution paths), stored on the device even when the
        // launch traps — reports must survive the error return.
        let mut lsan: Option<LaunchSan> = self.sanitize.then(LaunchSan::default);
        // Tier selection: the bytecode image (lowered once per device) is
        // threaded to every team engine of this launch; `None` selects the
        // reference interpreter.
        let bc_arc = match self.tier {
            ExecTier::Bytecode => Some(self.ensure_bytecode()),
            ExecTier::Interp => None,
        };
        let bc = bc_arc.as_deref();
        let outcome = if self.workers <= 1 || launch.teams <= 1 {
            self.run_teams_sequential(
                bc,
                func_ref.0,
                launch,
                shared_total,
                args,
                &mut fuel,
                &mut lsan,
            )
        } else {
            self.run_teams_parallel(
                bc,
                func_ref.0,
                launch,
                shared_total,
                wave_size,
                args,
                &mut fuel,
                &mut lsan,
            )
        };
        self.heap.limit = saved_heap_limit;
        let (races, divergences) = lsan.as_ref().map(|l| (l.races, l.divergences)).unwrap_or((0, 0));
        self.last_san = lsan;
        let (team_cycles, team_mem_cycles, counters) = match outcome {
            Ok(parts) => parts,
            Err((kind, team, thread)) => {
                return Err(ExecError {
                    kind,
                    team,
                    thread,
                    func: kernel.to_string(),
                })
            }
        };
        if self.san_strict && (races > 0 || divergences > 0) {
            let (team, thread) = self
                .last_san
                .as_ref()
                .and_then(|l| l.reports.first())
                .map(|r| r.site())
                .unwrap_or((0, 0));
            return Err(ExecError {
                kind: TrapKind::SanitizerViolation { races, divergences },
                team,
                thread,
                func: kernel.to_string(),
            });
        }

        // Occupancy / wave model: teams are issued in launch order, one wave
        // at a time; each wave lasts as long as its slowest team. A team's
        // effective duration exposes memory latency in inverse proportion
        // to how many teams the SM can keep resident (latency hiding).
        let exposure = self.config.latency_exposure(tps);
        let effective: Vec<u64> = team_cycles
            .iter()
            .zip(&team_mem_cycles)
            .map(|(&total, &mem)| {
                let compute = total.saturating_sub(mem);
                compute + (mem as f64 * exposure) as u64
            })
            .collect();
        let mut cycles_total: u64 = 0;
        let mut waves = 0u32;
        for chunk in effective.chunks(wave_size) {
            cycles_total += chunk.iter().copied().max().unwrap_or(0);
            waves += 1;
        }
        let time_ms = cycles_total as f64 / (self.config.clock_ghz * 1e6);

        Ok(KernelMetrics {
            kernel_name: kernel.to_string(),
            teams: launch.teams,
            threads_per_team: launch.threads_per_team,
            regs_per_thread: regs,
            smem_bytes: smem,
            dyn_smem_bytes: launch.dyn_smem_bytes,
            teams_per_sm: tps,
            waves,
            cycles: cycles_total,
            time_ms,
            instructions: counters.instructions,
            dispatched: counters.dispatched,
            barriers: counters.barriers,
            global_accesses: counters.global_accesses,
            shared_accesses: counters.shared_accesses,
            local_accesses: counters.local_accesses,
            device_mallocs: counters.device_mallocs,
            runtime_calls: counters.runtime_calls,
            flops: counters.flops,
            sanitizer_races: races,
            sanitizer_divergences: divergences,
            team_cycles,
        })
    }

    /// The sequential interpreter path: teams run one after another,
    /// write-through to the master region, with the shared fuel budget
    /// threaded team to team. `worker_threads == 1` takes exactly this
    /// path — it is the semantic reference the parallel engine must match.
    #[allow(clippy::too_many_arguments)]
    fn run_teams_sequential(
        &mut self,
        bc: Option<&BcModule>,
        kernel_idx: u32,
        launch: Launch,
        shared_total: u64,
        args: &[RtVal],
        fuel: &mut u64,
        lsan: &mut Option<LaunchSan>,
    ) -> TeamsOutcome {
        let mut team_cycles = Vec::with_capacity(launch.teams as usize);
        let mut team_mem_cycles = Vec::with_capacity(launch.teams as usize);
        let mut totals = Counters::default();
        for team in 0..launch.teams {
            let mut exec = TeamEngine::new(
                bc,
                &self.module,
                &self.cost,
                self.config.check_assumes,
                team,
                launch.teams,
                launch.threads_per_team,
                shared_total,
                &self.layout,
                GlobalMem::Direct {
                    region: &mut self.global,
                    heap: &mut self.heap,
                },
                &self.constant,
                *fuel,
                self.faults.as_ref(),
            );
            if lsan.is_some() {
                exec.set_sanitizer(Some(Box::new(TeamSan::new(
                    team,
                    self.suppress_shared.clone(),
                    self.release_fns.clone(),
                ))));
            }
            let result = exec.run(kernel_idx, args);
            let san = exec.take_sanitizer();
            let (counters, fuel_left, _) = exec.into_outcome();
            // Fold before the trap check: a trapping team's findings up
            // to the trap are still reported (sequential first-trap
            // semantics — later teams never run, so never fold).
            if let (Some(ls), Some(s)) = (lsan.as_mut(), san) {
                ls.fold_team(&self.module, *s);
            }
            totals.add(&counters);
            *fuel = fuel_left;
            match result {
                Ok((cycles, mem)) => {
                    team_cycles.push(cycles);
                    team_mem_cycles.push(mem);
                }
                Err((kind, thread)) => return Err((kind, team, thread)),
            }
        }
        Ok((team_cycles, team_mem_cycles, totals))
    }

    /// The parallel path: teams of each occupancy wave run concurrently on
    /// the worker pool against snapshots of global memory, then their
    /// effect logs are replayed onto the master region in ascending team
    /// order ("wave-ordered merge"). The merge also reconciles the shared
    /// fuel budget and re-runs (in direct mode, with the exact remaining
    /// budget) any team that overdrew it or bailed out on an unbufferable
    /// operation — so memory, counters, and traps are bit-identical to
    /// [`Device::run_teams_sequential`]. See `docs/parallel-vgpu.md`.
    #[allow(clippy::too_many_arguments)]
    fn run_teams_parallel(
        &mut self,
        bc: Option<&BcModule>,
        kernel_idx: u32,
        launch: Launch,
        shared_total: u64,
        wave_size: usize,
        args: &[RtVal],
        fuel: &mut u64,
        lsan: &mut Option<LaunchSan>,
    ) -> TeamsOutcome {
        let mut team_cycles = Vec::with_capacity(launch.teams as usize);
        let mut team_mem_cycles = Vec::with_capacity(launch.teams as usize);
        let mut totals = Counters::default();
        let teams: Vec<u32> = (0..launch.teams).collect();
        for wave in teams.chunks(wave_size.max(1)) {
            let ctx = WaveCtx {
                module: &self.module,
                bc,
                cost: &self.cost,
                layout: &self.layout,
                constant: &self.constant,
                plan: self.faults.as_ref(),
                check_assumes: self.config.check_assumes,
                kernel: kernel_idx,
                args,
                num_teams: launch.teams,
                threads_per_team: launch.threads_per_team,
                shared_total,
                sanitize: lsan.is_some(),
                suppress_shared: &self.suppress_shared,
                release_fns: &self.release_fns,
            };
            let runs = run_wave(&ctx, &self.global, wave, *fuel, self.workers);
            for (run, &team) in runs.into_iter().zip(wave) {
                // A team merges its buffered outcome only if, at its
                // (sequential) turn, it (a) fits the remaining fuel budget
                // — otherwise sequential execution would have trapped
                // FuelExhausted partway through; (b) did not touch the
                // device heap (unbufferable); and (c) every validated
                // observation — plain global loads, CAS old values, and
                // live-result atomic RMWs — matched what the master
                // actually held, so its execution was uncontaminated.
                // Any failing team is re-executed in direct mode with the
                // exact remaining budget, which reproduces the sequential
                // outcome including partial effects.
                let merged = if run.steps > *fuel || run.bailed() {
                    false
                } else {
                    match apply_effects(&mut self.global, &run.effects) {
                        Ok(committed) => committed,
                        Err(kind) => return Err((kind, team, 0)),
                    }
                };
                // Wave-ordered merge: a trapping team still publishes the
                // effects it performed before the trap (direct mode wrote
                // them through), and later teams never merge — exactly the
                // sequential first-trap-wins behavior.
                let (result, counters, steps, san) = if merged {
                    // A merged team's buffered access trace is identical
                    // to the sequential one (every observation validated),
                    // so its sanitizer verdict carries over unchanged.
                    (run.result, run.counters, run.steps, run.san)
                } else {
                    let mut exec = TeamEngine::new(
                        bc,
                        &self.module,
                        &self.cost,
                        self.config.check_assumes,
                        team,
                        launch.teams,
                        launch.threads_per_team,
                        shared_total,
                        &self.layout,
                        GlobalMem::Direct {
                            region: &mut self.global,
                            heap: &mut self.heap,
                        },
                        &self.constant,
                        *fuel,
                        self.faults.as_ref(),
                    );
                    if lsan.is_some() {
                        exec.set_sanitizer(Some(Box::new(TeamSan::new(
                            team,
                            self.suppress_shared.clone(),
                            self.release_fns.clone(),
                        ))));
                    }
                    let result = exec.run(kernel_idx, args);
                    let san = exec.take_sanitizer();
                    let (counters, fuel_left, _) = exec.into_outcome();
                    (result, counters, *fuel - fuel_left, san)
                };
                // Ascending-team fold at the merge position — the same
                // order and state as the sequential path.
                if let (Some(ls), Some(s)) = (lsan.as_mut(), san) {
                    ls.fold_team(&self.module, *s);
                }
                totals.add(&counters);
                *fuel -= steps;
                match result {
                    Ok((cycles, mem)) => {
                        team_cycles.push(cycles);
                        team_mem_cycles.push(mem);
                    }
                    Err((kind, thread)) => return Err((kind, team, thread)),
                }
            }
        }
        Ok((team_cycles, team_mem_cycles, totals))
    }
}

/// `(per-team cycles, per-team mem cycles, summed counters)` on success;
/// `(trap, team, thread)` on the first (lowest-team-index) trap.
type TeamsOutcome = Result<(Vec<u64>, Vec<u64>, Counters), (TrapKind, u32, u32)>;
