//! The device: module loading, host-side memory management, kernel launch.

use nzomp_ir::analysis::liveness;
use nzomp_ir::{Module, Space, Ty};

use crate::cost::{CostModel, DeviceConfig};
use crate::error::{ExecError, TrapKind};
use crate::faults::FaultPlan;
use crate::interp::{Counters, GlobalLayout, HeapState, TeamExec};
use crate::memory::{DevPtr, Region};
use crate::metrics::KernelMetrics;
use crate::value::RtVal;

/// Host-side memcpy errors carry a synthetic function name so the one
/// [`ExecError`] type (and its `Display`) covers both device traps and
/// host accesses; `team`/`thread` are 0 because no device thread ran.
fn host_oob(op: &str) -> ExecError {
    ExecError {
        kind: TrapKind::OutOfBounds,
        team: 0,
        thread: 0,
        func: format!("<host {op}>"),
    }
}

/// Launch parameters.
#[derive(Clone, Copy, Debug)]
pub struct Launch {
    pub teams: u32,
    pub threads_per_team: u32,
    /// Extra dynamic shared memory per team (paper §III-D: "the runtime
    /// also supports the use of dynamic shared memory").
    pub dyn_smem_bytes: u64,
}

impl Launch {
    pub fn new(teams: u32, threads_per_team: u32) -> Launch {
        Launch {
            teams,
            threads_per_team,
            dyn_smem_bytes: 0,
        }
    }
}

/// A loaded module plus device memory. Global memory persists across
/// launches (like a real device), so hosts can upload inputs once and run
/// several kernels.
pub struct Device {
    pub config: DeviceConfig,
    pub cost: CostModel,
    module: Module,
    layout: GlobalLayout,
    global: Region,
    constant: Region,
    heap: HeapState,
    /// Armed fault-injection plan applied to every subsequent launch
    /// (`None` in production: the interpreter hot loop then performs a
    /// single always-false compare per instruction).
    faults: Option<FaultPlan>,
}

impl Device {
    /// Load `module` onto a device with the given configuration.
    ///
    /// Global- and constant-space globals get their initializer images;
    /// shared-space globals are *not* statically initialized (real shared
    /// memory is undefined at kernel start — the runtime initializes what
    /// it needs in `__kmpc_target_init`, exactly as in the paper §III).
    pub fn load(module: Module, config: DeviceConfig) -> Device {
        let mut layout = GlobalLayout {
            addr_of: Vec::with_capacity(module.globals.len()),
            ..GlobalLayout::default()
        };
        let mut global_top: u64 = 0;
        let mut shared_top: u64 = 0;
        let mut const_top: u64 = 0;
        for g in &module.globals {
            let align = 8u64;
            match g.space {
                Space::Global => {
                    global_top = (global_top + align - 1) & !(align - 1);
                    layout.addr_of.push(DevPtr::global(global_top as u32));
                    global_top += g.size;
                }
                Space::Shared => {
                    shared_top = (shared_top + align - 1) & !(align - 1);
                    layout.addr_of.push(DevPtr::shared(shared_top as u32));
                    shared_top += g.size;
                }
                Space::Constant => {
                    const_top = (const_top + align - 1) & !(align - 1);
                    layout.addr_of.push(DevPtr::constant(const_top as u32));
                    const_top += g.size;
                }
                Space::Local => {
                    // Local-space globals make no sense; treat as shared so
                    // they at least have storage.
                    shared_top = (shared_top + align - 1) & !(align - 1);
                    layout.addr_of.push(DevPtr::shared(shared_top as u32));
                    shared_top += g.size;
                }
            }
        }
        layout.shared_size = shared_top;
        layout.global_static_size = global_top;
        layout.const_size = const_top;

        let mut global = Region::with_size(global_top as usize);
        let mut constant = Region::with_size(const_top as usize);
        for (i, g) in module.globals.iter().enumerate() {
            let addr = layout.addr_of[i];
            let region = match g.space {
                Space::Global => &mut global,
                Space::Constant => &mut constant,
                _ => continue,
            };
            for off in 0..g.size {
                region.bytes[(addr.offset() + off) as usize] = g.init.byte_at(off);
            }
        }

        let heap = HeapState {
            live_allocs: Default::default(),
            limit: global_top + config.heap_bytes,
        };
        Device {
            config,
            cost: CostModel::default(),
            module,
            layout,
            global,
            constant,
            heap,
            faults: None,
        }
    }

    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Arm a fault-injection plan; every subsequent launch executes under
    /// it until [`Device::clear_fault_plan`]. Empty plans disarm.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = if plan.is_empty() { None } else { Some(plan) };
    }

    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Host-side allocation in device global memory.
    pub fn alloc(&mut self, size: u64) -> DevPtr {
        let aligned = (size + 7) & !7;
        let off = (self.global.len() as u64 + 7) & !7;
        self.global.grow_to((off + aligned) as usize);
        DevPtr::global(off as u32)
    }

    /// Allocate and upload a little-endian `f64` slice.
    pub fn alloc_f64(&mut self, data: &[f64]) -> DevPtr {
        let p = self.alloc((data.len() * 8) as u64);
        if self.write_f64(p, data).is_err() {
            unreachable!("freshly allocated region is in bounds");
        }
        p
    }

    pub fn alloc_i64(&mut self, data: &[i64]) -> DevPtr {
        let p = self.alloc((data.len() * 8) as u64);
        if self.write_i64(p, data).is_err() {
            unreachable!("freshly allocated region is in bounds");
        }
        p
    }

    pub fn alloc_i32(&mut self, data: &[i32]) -> DevPtr {
        let p = self.alloc((data.len() * 4) as u64);
        if self.write_i32(p, data).is_err() {
            unreachable!("freshly allocated region is in bounds");
        }
        p
    }

    /// Host→device memcpy. Errors (typed, never a panic) if any part of
    /// the destination lies outside device global memory.
    pub fn write_f64(&mut self, ptr: DevPtr, data: &[f64]) -> Result<(), ExecError> {
        for (i, v) in data.iter().enumerate() {
            self.global
                .write(ptr.offset() + (i * 8) as u64, 8, v.to_bits() as i64)
                .map_err(|_| host_oob("write"))?;
        }
        Ok(())
    }

    pub fn write_i64(&mut self, ptr: DevPtr, data: &[i64]) -> Result<(), ExecError> {
        for (i, v) in data.iter().enumerate() {
            self.global
                .write(ptr.offset() + (i * 8) as u64, 8, *v)
                .map_err(|_| host_oob("write"))?;
        }
        Ok(())
    }

    pub fn write_i32(&mut self, ptr: DevPtr, data: &[i32]) -> Result<(), ExecError> {
        for (i, v) in data.iter().enumerate() {
            self.global
                .write(ptr.offset() + (i * 4) as u64, 4, *v as i64)
                .map_err(|_| host_oob("write"))?;
        }
        Ok(())
    }

    pub fn write_ptr(&mut self, ptr: DevPtr, value: DevPtr) -> Result<(), ExecError> {
        self.global
            .write(ptr.offset(), 8, value.0 as i64)
            .map_err(|_| host_oob("write"))
    }

    /// Device→host memcpy; typed out-of-bounds error instead of a panic.
    pub fn read_f64(&self, ptr: DevPtr, len: usize) -> Result<Vec<f64>, ExecError> {
        (0..len)
            .map(|i| {
                self.global
                    .read(ptr.offset() + (i * 8) as u64, 8)
                    .map(|bits| f64::from_bits(bits as u64))
                    .map_err(|_| host_oob("read"))
            })
            .collect()
    }

    pub fn read_i64(&self, ptr: DevPtr, len: usize) -> Result<Vec<i64>, ExecError> {
        (0..len)
            .map(|i| {
                self.global
                    .read(ptr.offset() + (i * 8) as u64, 8)
                    .map_err(|_| host_oob("read"))
            })
            .collect()
    }

    pub fn read_i32(&self, ptr: DevPtr, len: usize) -> Result<Vec<i32>, ExecError> {
        (0..len)
            .map(|i| {
                self.global
                    .read(ptr.offset() + (i * 4) as u64, 4)
                    .map(|v| v as i32)
                    .map_err(|_| host_oob("read"))
            })
            .collect()
    }

    /// Address of a named global (host access to device state).
    pub fn global_addr(&self, name: &str) -> Option<DevPtr> {
        self.module
            .find_global(name)
            .map(|g| self.layout.addr_of[g.index()])
    }

    /// Launch a kernel by name. Returns metrics on success; `ExecError` on
    /// any device trap.
    pub fn launch(
        &mut self,
        kernel: &str,
        launch: Launch,
        args: &[RtVal],
    ) -> Result<KernelMetrics, ExecError> {
        let func_ref = self.module.find_func(kernel).ok_or_else(|| ExecError {
            kind: TrapKind::BadLaunch(format!("no kernel @{kernel}")),
            team: 0,
            thread: 0,
            func: kernel.to_string(),
        })?;
        let func = self.module.func(func_ref);
        if func.params.len() != args.len() {
            return Err(ExecError {
                kind: TrapKind::BadLaunch(format!(
                    "kernel @{kernel} takes {} args, got {}",
                    func.params.len(),
                    args.len()
                )),
                team: 0,
                thread: 0,
                func: kernel.to_string(),
            });
        }
        // Pointer args must not be dangling-typed; only count check above
        // (the IR is untyped enough that the kernel will trap if wrong).
        let _ = func.params.iter().map(|t| matches!(t, Ty::Ptr)).count();

        // Registers are allocated for the whole call tree on a GPU (no real
        // call stack): take the maximum over every function reachable from
        // the kernel.
        let cg = nzomp_ir::analysis::callgraph::CallGraph::build(&self.module);
        let regs = cg
            .reachable_from(&self.module, &[func_ref])
            .into_iter()
            .map(|fr| self.module.func(fr))
            .filter(|f| !f.is_declaration())
            .map(liveness::register_estimate)
            .max()
            .unwrap_or_else(|| liveness::register_estimate(func));
        let smem = self.layout.shared_size;
        let shared_total = smem + launch.dyn_smem_bytes;

        let mut counters = Counters::default();
        let plan = self.faults.as_ref();
        // Fault plans can shrink the step budget and the device heap for
        // this launch; the heap limit is restored afterwards (even on a
        // trap) so one faulted launch does not poison the next.
        let mut fuel = plan
            .and_then(|p| p.fuel_limit)
            .unwrap_or(self.config.max_steps);
        let saved_heap_limit = self.heap.limit;
        if let Some(budget) = plan.and_then(|p| p.heap_limit) {
            self.heap.limit = (self.global.len() as u64).saturating_add(budget);
        }
        let mut team_cycles = Vec::with_capacity(launch.teams as usize);
        let mut team_mem_cycles = Vec::with_capacity(launch.teams as usize);
        let mut trapped: Option<ExecError> = None;
        for team in 0..launch.teams {
            let mut exec = TeamExec::new(
                &self.module,
                &self.cost,
                self.config.check_assumes,
                team,
                launch.teams,
                launch.threads_per_team,
                shared_total,
                &self.layout,
                &mut self.global,
                &self.constant,
                &mut self.heap,
                &mut counters,
                &mut fuel,
                plan,
            );
            match exec.run(func_ref.0, args) {
                Ok((cycles, mem)) => {
                    team_cycles.push(cycles);
                    team_mem_cycles.push(mem);
                }
                Err((kind, thread)) => {
                    trapped = Some(ExecError {
                        kind,
                        team,
                        thread,
                        func: kernel.to_string(),
                    });
                    break;
                }
            }
        }
        self.heap.limit = saved_heap_limit;
        if let Some(err) = trapped {
            return Err(err);
        }

        // Occupancy / wave model: teams are issued in launch order, one wave
        // at a time; each wave lasts as long as its slowest team. A team's
        // effective duration exposes memory latency in inverse proportion
        // to how many teams the SM can keep resident (latency hiding).
        let tps = self
            .config
            .teams_per_sm(regs, launch.threads_per_team, shared_total.max(1));
        let exposure = self.config.latency_exposure(tps);
        let effective: Vec<u64> = team_cycles
            .iter()
            .zip(&team_mem_cycles)
            .map(|(&total, &mem)| {
                let compute = total.saturating_sub(mem);
                compute + (mem as f64 * exposure) as u64
            })
            .collect();
        let wave_size = (self.config.num_sms * tps).max(1) as usize;
        let mut cycles_total: u64 = 0;
        let mut waves = 0u32;
        for chunk in effective.chunks(wave_size) {
            cycles_total += chunk.iter().copied().max().unwrap_or(0);
            waves += 1;
        }
        let time_ms = cycles_total as f64 / (self.config.clock_ghz * 1e6);

        Ok(KernelMetrics {
            kernel_name: kernel.to_string(),
            teams: launch.teams,
            threads_per_team: launch.threads_per_team,
            regs_per_thread: regs,
            smem_bytes: smem,
            dyn_smem_bytes: launch.dyn_smem_bytes,
            teams_per_sm: tps,
            waves,
            cycles: cycles_total,
            time_ms,
            instructions: counters.instructions,
            barriers: counters.barriers,
            global_accesses: counters.global_accesses,
            shared_accesses: counters.shared_accesses,
            local_accesses: counters.local_accesses,
            device_mallocs: counters.device_mallocs,
            runtime_calls: counters.runtime_calls,
            flops: counters.flops,
            team_cycles,
        })
    }
}
