//! Data-race & barrier-divergence sanitizer (opt-in shadow memory).
//!
//! The paper's headline optimizations — barrier elimination (§IV-D) and
//! aligned-execution reasoning (§IV-C) — are only sound if every removed
//! barrier was truly redundant. This module machine-checks that: when
//! sanitizing is enabled (`DeviceConfig::sanitize` / `NZOMP_SANITIZE`),
//! every shared- and global-space access is mirrored into shadow cells and
//! checked against a happens-before model; conflicts surface as typed
//! [`RaceReport`]s through [`crate::Device::sanitizer_reports`] and the
//! kernel metrics — never as a panic, and never as a change to execution
//! (results, traps, cycles and all pre-existing metrics are bit-identical
//! with the sanitizer on or off).
//!
//! # The happens-before model
//!
//! *Within a team*, the interpreter's run-to-synchronization-point
//! scheduling means every access between two barrier releases belongs to
//! one **barrier epoch**: a per-team counter bumped at every release
//! (aligned or not — both synchronize all live threads). Two accesses from
//! different threads of the team are ordered iff their epochs differ;
//! same-epoch conflicting accesses — same byte, at least one write, not
//! both atomic — are a data race. Atomic RMWs and CAS count as
//! *synchronizing writes*: atomic/atomic pairs never race, atomic/plain
//! pairs do.
//!
//! *Across teams*, nothing orders two teams of one launch (the device has
//! no grid-wide barrier; kernel entry and exit are the only cross-team
//! ordering points). Any two accesses to the same global byte from
//! different teams conflict unless both are atomic. Per-team byte
//! summaries are folded into a launch-level shadow **in ascending team
//! order** — the same order as the wave-ordered merge — so the verdict and
//! the report text are identical at any worker-thread count.
//!
//! A companion check flags **barrier divergence**: an aligned barrier
//! released with waiters arriving from different instructions, mixed with
//! unaligned waiters, or reached while sibling threads already exited
//! (the aligned-barrier promise of §IV-C broken). Purely unaligned
//! barriers may legally pair across different sites — that is exactly how
//! the generic-mode worker state machine synchronizes — and are never
//! flagged.
//!
//! # Suppression
//!
//! The modern runtime's conditional-write idiom (paper Fig. 7b) makes
//! *every* thread perform a store and steers non-main threads to a
//! designated dummy sink ([`COND_WRITE_SINK`]) so the optimizer sees an
//! unconditional store. Those sink stores are concurrent plain writes by
//! design and are suppressed by name — the sanitizer's one suppression,
//! mirroring real-world sanitizer suppression lists.

use std::collections::HashMap;
use std::fmt;

use nzomp_ir::Module;

use crate::memory::Segment;

/// Shared-space global the modern runtime uses as the write-only sink of
/// the Fig. 7b conditional-write idiom (`__omp_rtl_dummy` in
/// `nzomp-rt`). Accesses to it are benign by construction and suppressed.
pub const COND_WRITE_SINK: &str = "__omp_rtl_dummy";

/// The modern runtime's team-state block (`__omp_rtl_team_state` in
/// `nzomp-rt`). Its `HasThreadState` flag is set with a plain store of the
/// constant `1` by *any* thread entering a serialized nested parallel
/// region — the same deliberately benign idempotent-flag idiom as the real
/// deviceRTL's `TeamState.HasThreadState = true`. Only that 8-byte field
/// is suppressed; races on the rest of the team state still report.
pub const TEAM_STATE: &str = "__omp_rtl_team_state";

/// `(byte offset, length)` of the benign `HasThreadState` flag within
/// [`TEAM_STATE`] (`abi::team_state::HAS_THREAD_STATE` in `nzomp-rt`).
pub const TEAM_STATE_BENIGN_FIELD: (u64, u64) = (40, 8);

/// Runtime entry points that release memory back to an allocator stack
/// (`__kmpc_free_shared` and the legacy data-sharing pop, both with
/// signature `(ptr, size)`). The allocator's atomic stack-top bookkeeping
/// orders the releasing owner before any future owner of the same bytes,
/// so a call to one of these retires the shadow for the range — the same
/// ownership-transfer treatment thread sanitizers give `free`/`malloc`
/// recycling. Without it, run-to-sync scheduling makes every reuse of a
/// globalized-local scratch slot (paper §IV-A2) look like a same-epoch
/// conflict between the old and new owning threads.
pub const REGION_RELEASE_FNS: [&str; 2] =
    ["__kmpc_free_shared", "__kmpc_data_sharing_pop_stack_old"];

/// Function indices of [`REGION_RELEASE_FNS`] in `module`, for the
/// interpreter's call hook.
pub fn release_fn_ids(module: &Module) -> Vec<u32> {
    module
        .funcs
        .iter()
        .enumerate()
        .filter(|(_, f)| REGION_RELEASE_FNS.contains(&f.name.as_str()))
        .map(|(i, _)| i as u32)
        .collect()
}

/// Per-team cap on retained race reports (further races are counted, not
/// stored — keeps pathological kernels bounded and deterministic).
const TEAM_REPORT_CAP: usize = 16;
/// Per-team cap on retained divergence reports.
const TEAM_DIVERGENCE_CAP: usize = 8;
/// Launch-level cap on retained reports across all teams.
const LAUNCH_REPORT_CAP: usize = 64;

/// IR location of one executed access: function index, basic block id,
/// instruction id — the coordinates `nzomp-ir`'s printer shows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IrLoc {
    pub func: u32,
    pub block: u32,
    pub inst: u32,
}

impl IrLoc {
    /// `@func bb2 %17`, resolving the function name through the module.
    fn render(&self, module: &Module) -> String {
        let name = module
            .funcs
            .get(self.func as usize)
            .map(|f| f.name.as_str())
            .unwrap_or("?");
        format!("@{} bb{} %{}", name, self.block, self.inst)
    }
}

/// How a location was accessed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    Read,
    Write,
    /// Atomic RMW or CAS — a synchronizing access.
    Atomic,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
            AccessKind::Atomic => write!(f, "atomic"),
        }
    }
}

/// One endpoint of a reported conflict, fully resolved (self-contained
/// after the module borrow ends).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessSite {
    pub team: u32,
    pub thread: u32,
    pub kind: AccessKind,
    /// Barrier epoch of the access within its team.
    pub epoch: u32,
    /// Rendered IR location (`@func bb2 %17`).
    pub loc: String,
}

/// A detected data race: two conflicting accesses with no happens-before
/// ordering. `first` is the access recorded earlier in the deterministic
/// schedule; `second` the one that completed the conflict.
#[derive(Clone, Debug, PartialEq)]
pub struct RaceReport {
    /// Memory space of the racing location.
    pub space: Segment,
    /// Byte offset of the first conflicting byte within the space.
    pub offset: u64,
    pub first: AccessSite,
    pub second: AccessSite,
    /// Whether the endpoints belong to different teams.
    pub cross_team: bool,
    /// Additional accesses deduplicated onto this report (same site pair
    /// and kinds).
    pub count: u64,
}

fn space_name(s: Segment) -> &'static str {
    match s {
        Segment::Global => "global",
        Segment::Shared => "shared",
        Segment::Local => "local",
        Segment::Constant => "constant",
        _ => "?",
    }
}

impl fmt::Display for RaceReport {
    /// Remark-style rendering, mirroring `nzomp-opt`'s
    /// `[{kind}:{pass}] @{func}: {message}` format.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[race:sanitize] {}+0x{:x}: {} by team {} thread {} at {}",
            space_name(self.space),
            self.offset,
            self.second.kind,
            self.second.team,
            self.second.thread,
            self.second.loc,
        )?;
        if !self.cross_team {
            write!(f, " (epoch {})", self.second.epoch)?;
        }
        write!(
            f,
            " conflicts with {} by team {} thread {} at {}",
            self.first.kind, self.first.team, self.first.thread, self.first.loc,
        )?;
        if self.cross_team {
            write!(f, " (cross-team)")?;
        } else {
            write!(f, " (epoch {})", self.first.epoch)?;
        }
        if self.count > 1 {
            write!(f, " [x{}]", self.count)?;
        }
        Ok(())
    }
}

/// A barrier-divergence finding: an aligned barrier released (or broken)
/// with a non-uniform arrival pattern.
#[derive(Clone, Debug, PartialEq)]
pub struct DivergenceReport {
    pub team: u32,
    /// Epoch in which the divergent barrier released.
    pub epoch: u32,
    /// Pre-rendered description of the arrival pattern.
    pub detail: String,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[divergence:sanitize] team {} epoch {}: {}",
            self.team, self.epoch, self.detail
        )
    }
}

/// Any sanitizer finding, in the order of detection.
#[derive(Clone, Debug, PartialEq)]
pub enum SanReport {
    Race(RaceReport),
    Divergence(DivergenceReport),
}

impl SanReport {
    /// `(team, thread)` of the access that completed the finding — the
    /// location strict mode attributes its trap to.
    pub fn site(&self) -> (u32, u32) {
        match self {
            SanReport::Race(r) => (r.second.team, r.second.thread),
            SanReport::Divergence(d) => (d.team, 0),
        }
    }
}

impl fmt::Display for SanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanReport::Race(r) => r.fmt(f),
            SanReport::Divergence(d) => d.fmt(f),
        }
    }
}

/// One recorded access (compact; names resolved only when reporting).
#[derive(Clone, Copy, Debug)]
struct Access {
    tid: u32,
    loc: IrLoc,
}

/// Epoch-scoped shadow of one byte: first plain writer, up to two
/// distinct-thread plain readers, first atomic accessor. Two reader slots
/// suffice — a later writer conflicts with whichever recorded reader has a
/// different thread id, and two readers never conflict with each other.
#[derive(Clone, Copy, Debug, Default)]
struct Cell {
    epoch: u32,
    write: Option<Access>,
    reads: [Option<Access>; 2],
    atomic: Option<Access>,
}

/// Launch-scoped summary of one global byte: the first plain read, plain
/// write, and atomic access this team performed, for cross-team folding.
#[derive(Clone, Copy, Debug, Default)]
struct Summary {
    read: Option<Access>,
    write: Option<Access>,
    atomic: Option<Access>,
}

/// Global-space shadow byte: the intra-team epoch cell plus the
/// cross-team summary, kept together so one hash lookup serves both.
#[derive(Clone, Copy, Debug, Default)]
struct GByte {
    cell: Cell,
    sum: Summary,
}

/// Deduplication key: one report per (space, site pair, kind pair).
type DedupKey = (u8, IrLoc, AccessKind, IrLoc, AccessKind);

fn dedup_key(space: Segment, first: (IrLoc, AccessKind), second: (IrLoc, AccessKind)) -> DedupKey {
    let s = match space {
        Segment::Shared => 1u8,
        _ => 0u8,
    };
    (s, first.0, first.1, second.0, second.1)
}

/// Barrier-arrival info the interpreter hands to
/// [`TeamSan::on_barrier_release`] for each waiting thread.
#[derive(Clone, Copy, Debug)]
pub struct BarrierArrival {
    pub tid: u32,
    pub aligned: bool,
    pub site: Option<IrLoc>,
}

/// Per-team sanitizer state, owned by the
/// [`TeamExec`](crate::interp::TeamExec) when sanitizing is enabled
/// (`None` otherwise — the hot path then pays one pointer test per
/// access, the same zero-cost-when-disabled shape as
/// [`FaultPlan`](crate::faults::FaultPlan)).
#[derive(Debug)]
pub struct TeamSan {
    team: u32,
    /// Barrier epoch: bumped at every barrier release.
    epoch: u32,
    /// Shared-space shadow (per-team memory; purely intra-team).
    shared: HashMap<u64, Cell>,
    /// Global-space shadow plus the cross-team byte summary.
    global: HashMap<u64, GByte>,
    /// Shared-space ranges exempt from race checking (the cond-write sink).
    suppress_shared: Vec<(u64, u64)>,
    /// Function indices of the allocator release entry points
    /// ([`REGION_RELEASE_FNS`]).
    release_fns: Vec<u32>,
    reports: Vec<RaceReport>,
    dedup: HashMap<DedupKey, usize>,
    divergences: Vec<DivergenceReport>,
    /// Distinct races detected (deduplicated site pairs), including any
    /// beyond the report cap.
    races: u64,
    /// Divergent releases detected, including any beyond the cap.
    diverged: u64,
}

impl TeamSan {
    pub fn new(team: u32, suppress_shared: Vec<(u64, u64)>, release_fns: Vec<u32>) -> TeamSan {
        TeamSan {
            team,
            epoch: 0,
            shared: HashMap::new(),
            global: HashMap::new(),
            suppress_shared,
            release_fns,
            reports: Vec::new(),
            dedup: HashMap::new(),
            divergences: Vec::new(),
            races: 0,
            diverged: 0,
        }
    }

    /// Whether `func` is one of the allocator release entry points the
    /// interpreter must report through [`TeamSan::on_region_release`].
    #[inline]
    pub fn is_release_fn(&self, func: u32) -> bool {
        self.release_fns.contains(&func)
    }

    /// `[off, off+size)` of `space` was released back to a runtime
    /// allocator. The allocator's atomic bookkeeping orders this owner
    /// before any future owner of the bytes, so the range's shadow — both
    /// the epoch cells and the cross-team byte summary — is retired.
    pub fn on_region_release(&mut self, space: Segment, off: u64, size: u64) {
        match space {
            Segment::Shared => {
                for b in off..off + size {
                    self.shared.remove(&b);
                }
            }
            Segment::Global => {
                for b in off..off + size {
                    self.global.remove(&b);
                }
            }
            _ => {}
        }
    }

    /// Record one executed access and check it against the shadow.
    /// Local space is skipped (cross-thread local access already traps)
    /// and constant space is read-only.
    #[allow(clippy::too_many_arguments)]
    pub fn record_access(
        &mut self,
        module: &Module,
        tid: u32,
        kind: AccessKind,
        loc: IrLoc,
        space: Segment,
        off: u64,
        size: u64,
    ) {
        match space {
            Segment::Shared => {
                if self
                    .suppress_shared
                    .iter()
                    .any(|&(s, len)| off >= s && off + size <= s + len)
                {
                    return;
                }
                let mut conflict = None;
                for b in off..off + size {
                    let cell = self.shared.entry(b).or_default();
                    if let Some(c) =
                        check_cell(cell, self.epoch, tid, kind, loc, conflict.is_some())
                    {
                        conflict.get_or_insert((b, c));
                    }
                }
                if let Some((b, (prior, prior_kind))) = conflict {
                    self.report_intra(module, Segment::Shared, b, prior, prior_kind, tid, kind, loc);
                }
            }
            Segment::Global => {
                let mut conflict = None;
                for b in off..off + size {
                    let g = self.global.entry(b).or_default();
                    if let Some(c) =
                        check_cell(&mut g.cell, self.epoch, tid, kind, loc, conflict.is_some())
                    {
                        conflict.get_or_insert((b, c));
                    }
                    let slot = match kind {
                        AccessKind::Read => &mut g.sum.read,
                        AccessKind::Write => &mut g.sum.write,
                        AccessKind::Atomic => &mut g.sum.atomic,
                    };
                    if slot.is_none() {
                        *slot = Some(Access { tid, loc });
                    }
                }
                if let Some((b, (prior, prior_kind))) = conflict {
                    self.report_intra(module, Segment::Global, b, prior, prior_kind, tid, kind, loc);
                }
            }
            _ => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn report_intra(
        &mut self,
        module: &Module,
        space: Segment,
        offset: u64,
        prior: Access,
        prior_kind: AccessKind,
        tid: u32,
        kind: AccessKind,
        loc: IrLoc,
    ) {
        let key = dedup_key(space, (prior.loc, prior_kind), (loc, kind));
        if let Some(&i) = self.dedup.get(&key) {
            self.reports[i].count += 1;
            return;
        }
        self.races += 1;
        if self.reports.len() >= TEAM_REPORT_CAP {
            return;
        }
        let report = RaceReport {
            space,
            offset,
            first: AccessSite {
                team: self.team,
                thread: prior.tid,
                kind: prior_kind,
                epoch: self.epoch,
                loc: prior.loc.render(module),
            },
            second: AccessSite {
                team: self.team,
                thread: tid,
                kind,
                epoch: self.epoch,
                loc: loc.render(module),
            },
            cross_team: false,
            count: 1,
        };
        self.dedup.insert(key, self.reports.len());
        self.reports.push(report);
    }

    /// A barrier is releasing with the given live-thread arrivals.
    /// Checks divergence (report-only; behavior is unchanged), then
    /// advances the epoch.
    pub fn on_barrier_release(&mut self, module: &Module, arrivals: &[BarrierArrival]) {
        let any_aligned = arrivals.iter().any(|a| a.aligned);
        if any_aligned {
            let any_unaligned = arrivals.iter().any(|a| !a.aligned);
            let aligned_sites: Vec<Option<IrLoc>> = arrivals
                .iter()
                .filter(|a| a.aligned)
                .map(|a| a.site)
                .collect();
            let diverged_sites = aligned_sites.windows(2).any(|w| w[0] != w[1]);
            if any_unaligned || diverged_sites {
                let detail = format!(
                    "aligned barrier released with divergent arrivals: {}",
                    arrivals
                        .iter()
                        .map(|a| {
                            format!(
                                "thread {} {} at {}",
                                a.tid,
                                if a.aligned { "(aligned)" } else { "(unaligned)" },
                                a.site.map(|l| l.render(module)).unwrap_or_else(|| "?".into()),
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                self.push_divergence(detail);
            }
        }
        self.epoch += 1;
    }

    /// An aligned barrier's promise broke: `waiting` live threads wait
    /// while `done` threads already exited (the interpreter traps with
    /// `BarrierDeadlock` right after this report).
    pub fn on_aligned_subset(&mut self, module: &Module, waiting: &[BarrierArrival], done: usize) {
        let site = waiting
            .iter()
            .find(|a| a.aligned)
            .and_then(|a| a.site)
            .map(|l| l.render(module))
            .unwrap_or_else(|| "?".into());
        let detail = format!(
            "aligned barrier at {} reached by only {} of {} threads ({} already exited)",
            site,
            waiting.len(),
            waiting.len() + done,
            done,
        );
        self.push_divergence(detail);
    }

    fn push_divergence(&mut self, detail: String) {
        self.diverged += 1;
        if self.divergences.len() >= TEAM_DIVERGENCE_CAP {
            return;
        }
        self.divergences.push(DivergenceReport {
            team: self.team,
            epoch: self.epoch,
            detail,
        });
    }
}

/// Check one shadow cell against a new access and record the access.
/// Returns the conflicting prior access (and its kind) if this access
/// races with it; `skip_report` still records but skips conflict lookup
/// (used once a conflict was already found for this access).
fn check_cell(
    cell: &mut Cell,
    epoch: u32,
    tid: u32,
    kind: AccessKind,
    loc: IrLoc,
    skip_report: bool,
) -> Option<(Access, AccessKind)> {
    if cell.epoch != epoch {
        *cell = Cell {
            epoch,
            ..Cell::default()
        };
    }
    let mut conflict = None;
    if !skip_report {
        let other = |a: &Option<Access>| a.filter(|x| x.tid != tid);
        conflict = match kind {
            // A plain write conflicts with any other-thread access.
            AccessKind::Write => other(&cell.write)
                .map(|a| (a, AccessKind::Write))
                .or_else(|| {
                    cell.reads
                        .iter()
                        .find_map(|r| r.filter(|x| x.tid != tid))
                        .map(|a| (a, AccessKind::Read))
                })
                .or_else(|| other(&cell.atomic).map(|a| (a, AccessKind::Atomic))),
            // A plain read conflicts with other-thread writes (plain or
            // atomic); reads never conflict with reads.
            AccessKind::Read => other(&cell.write)
                .map(|a| (a, AccessKind::Write))
                .or_else(|| other(&cell.atomic).map(|a| (a, AccessKind::Atomic))),
            // Atomics conflict with plain accesses only.
            AccessKind::Atomic => other(&cell.write)
                .map(|a| (a, AccessKind::Write))
                .or_else(|| {
                    cell.reads
                        .iter()
                        .find_map(|r| r.filter(|x| x.tid != tid))
                        .map(|a| (a, AccessKind::Read))
                }),
        };
    }
    // Record this access.
    let acc = Access { tid, loc };
    match kind {
        AccessKind::Write => {
            if cell.write.is_none() {
                cell.write = Some(acc);
            }
        }
        AccessKind::Read => {
            let known = cell
                .reads
                .iter()
                .any(|r| r.is_some_and(|x| x.tid == tid));
            if !known {
                if let Some(slot) = cell.reads.iter_mut().find(|r| r.is_none()) {
                    *slot = Some(acc);
                }
            }
        }
        AccessKind::Atomic => {
            if cell.atomic.is_none() {
                cell.atomic = Some(acc);
            }
        }
    }
    conflict
}

/// One candidate cross-team conflict: `(new access, new kind, prior
/// (team, access), prior kind)`.
type ConflictPair = (Option<Access>, AccessKind, Option<(u32, Access)>, AccessKind);

/// Cross-team summary of one global byte at the launch level: the first
/// access of each kind from any already-folded (lower-index) team.
#[derive(Clone, Copy, Debug, Default)]
struct LaunchByte {
    read: Option<(u32, Access)>,
    write: Option<(u32, Access)>,
    atomic: Option<(u32, Access)>,
}

/// Launch-level sanitizer state: team outcomes folded in ascending team
/// order (the wave-merge order), which makes reports and verdicts
/// independent of the worker-thread count.
#[derive(Debug, Default)]
pub struct LaunchSan {
    global: HashMap<u64, LaunchByte>,
    /// All retained findings, in fold (= team) order.
    pub reports: Vec<SanReport>,
    dedup: HashMap<DedupKey, usize>,
    /// Total distinct data races (intra- and cross-team), including any
    /// beyond the report cap.
    pub races: u64,
    /// Total divergent barrier releases.
    pub divergences: u64,
}

impl LaunchSan {
    /// Fold one finished team's sanitizer state, in ascending team order.
    pub fn fold_team(&mut self, module: &Module, san: TeamSan) {
        let TeamSan {
            team,
            global,
            reports,
            divergences,
            races,
            diverged,
            ..
        } = san;
        self.races += races;
        self.divergences += diverged;
        for r in reports {
            if self.reports.len() < LAUNCH_REPORT_CAP {
                self.reports.push(SanReport::Race(r));
            }
        }
        for d in divergences {
            if self.reports.len() < LAUNCH_REPORT_CAP {
                self.reports.push(SanReport::Divergence(d));
            }
        }
        // Cross-team check: this team's global byte summary against the
        // accumulated summary of all lower-index teams. Offsets are
        // visited in ascending order so report selection is deterministic.
        let mut offs: Vec<u64> = global.keys().copied().collect();
        offs.sort_unstable();
        for off in offs {
            let Some(g) = global.get(&off) else { continue };
            let sum = g.sum;
            let prior = self.global.get(&off).copied().unwrap_or_default();
            // (new access, new kind) vs (prior access, prior kind):
            // plain write vs anything; plain read vs write/atomic;
            // atomic vs plain. Atomic/atomic synchronizes.
            let pairs: [ConflictPair; 5] = [
                (sum.write, AccessKind::Write, prior.write, AccessKind::Write),
                (sum.write, AccessKind::Write, prior.read, AccessKind::Read),
                (sum.write, AccessKind::Write, prior.atomic, AccessKind::Atomic),
                (sum.read, AccessKind::Read, prior.write, AccessKind::Write),
                (sum.atomic, AccessKind::Atomic, prior.write, AccessKind::Write),
            ];
            let mut found: Option<(Access, AccessKind, (u32, Access), AccessKind)> = None;
            for (new, nk, pr, pk) in pairs {
                if let (Some(n), Some(p)) = (new, pr) {
                    found = Some((n, nk, p, pk));
                    break;
                }
            }
            // Also: prior read vs new atomic (read recorded first).
            if found.is_none() {
                if let (Some(n), Some(p)) = (sum.atomic, prior.read) {
                    found = Some((n, AccessKind::Atomic, p, AccessKind::Read));
                }
            }
            if let Some((n, nk, (pteam, p), pk)) = found {
                self.report_cross(module, off, team, n, nk, pteam, p, pk);
            }
            // Merge this team's summary into the launch shadow.
            let slot = self.global.entry(off).or_default();
            if slot.read.is_none() {
                if let Some(a) = sum.read {
                    slot.read = Some((team, a));
                }
            }
            if slot.write.is_none() {
                if let Some(a) = sum.write {
                    slot.write = Some((team, a));
                }
            }
            if slot.atomic.is_none() {
                if let Some(a) = sum.atomic {
                    slot.atomic = Some((team, a));
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn report_cross(
        &mut self,
        module: &Module,
        offset: u64,
        team: u32,
        acc: Access,
        kind: AccessKind,
        prior_team: u32,
        prior: Access,
        prior_kind: AccessKind,
    ) {
        // Cross-team findings come from per-byte summaries, so one wide
        // store surfaces once per byte — dedup hits are not additional
        // accesses and do not bump the count (unlike intra-team dedup).
        let key = dedup_key(Segment::Global, (prior.loc, prior_kind), (acc.loc, kind));
        if self.dedup.contains_key(&key) {
            return;
        }
        self.races += 1;
        if self.reports.len() >= LAUNCH_REPORT_CAP {
            return;
        }
        let report = RaceReport {
            space: Segment::Global,
            offset,
            first: AccessSite {
                team: prior_team,
                thread: prior.tid,
                kind: prior_kind,
                epoch: 0,
                loc: prior.loc.render(module),
            },
            second: AccessSite {
                team,
                thread: acc.tid,
                kind,
                epoch: 0,
                loc: acc.loc.render(module),
            },
            cross_team: true,
            count: 1,
        };
        self.dedup.insert(key, self.reports.len());
        self.reports.push(SanReport::Race(report));
    }

    /// `true` when no finding of any kind was recorded.
    pub fn is_clean(&self) -> bool {
        self.races == 0 && self.divergences == 0
    }
}
