//! `nzomp-vgpu` — a deterministic virtual GPU.
//!
//! Stands in for the NVIDIA A100 of the paper's evaluation. The device
//! executes `nzomp-ir` modules with the OpenMP-on-GPU execution model of
//! paper §II-C: a grid of *teams*, each team a set of hardware threads with
//! team-private shared memory, thread-private local memory, and device-wide
//! global/constant memory.
//!
//! Two properties make it a usable evaluation substrate:
//!
//! 1. **Deterministic scheduling** — threads within a team run to the next
//!    synchronization point in thread-id order; barriers release when every
//!    live thread arrives. Kernel results and cycle counts are exactly
//!    reproducible.
//! 2. **A cost model that prices what the paper optimizes** — runtime
//!    calls, memory traffic by address space, barriers (aligned or not),
//!    device-side malloc, and an occupancy model driven by register and
//!    shared-memory consumption. Removing runtime state therefore moves
//!    kernel time / #regs / SMem the same way the A100 numbers move in
//!    Fig. 10–13.
//!
//! The crate is panic-free by policy: malformed IR, bad host accesses and
//! injected faults all surface as typed [`ExecError`]s, never process
//! aborts. The lint gate below enforces it (tests are exempt).

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod bytecode;
pub mod cost;
pub mod device;
pub mod error;
pub mod exec;
pub mod faults;
pub mod gmem;
pub mod interp;
pub mod memory;
pub mod metrics;
mod ops;
mod par;
pub mod sanitize;
pub mod value;

pub use cost::{CostModel, DeviceConfig};
pub use device::Device;
pub use exec::ExecTier;
pub use error::{ExecError, TrapKind};
pub use faults::{DeviceFaultKind, DeviceFaultSite, FaultAction, FaultPlan, FaultSite};
pub use memory::{DevPtr, Segment};
pub use metrics::KernelMetrics;
pub use sanitize::{AccessKind, AccessSite, DivergenceReport, RaceReport, SanReport};
pub use value::RtVal;
