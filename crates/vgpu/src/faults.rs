//! Deterministic, seed-driven fault injection.
//!
//! The paper's debuggability story (§III-G) relies on the runtime being
//! exercisable in a virtual GPU where assumptions become runtime checks.
//! This module adds the other half of that story: the ability to *make*
//! things go wrong on purpose, deterministically, so that every error path
//! of the stack — interpreter traps, launch failures, heap exhaustion —
//! can be exercised by tests and by the differential execution harness.
//!
//! A [`FaultPlan`] names a set of [`FaultSite`]s: (team, thread, step)
//! coordinates plus an action to perform when that thread reaches that
//! step count. Plans are either hand-built or derived from a seed with
//! [`FaultPlan::from_seed`]; the same seed always yields the same plan, and
//! because the interpreter itself is deterministic, the same plan always
//! produces the same outcome (same [`crate::TrapKind`], same team, same
//! thread) for a given module and launch.
//!
//! The hook is zero-cost when disabled: each thread carries a single
//! `next_fault_step` word (`u64::MAX` when no fault targets it), and the
//! interpreter's hot loop performs one integer compare per instruction —
//! the same class of check as the existing fuel decrement.

/// What to do when a fault site triggers.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Raise this trap directly, as if the hardware detected it.
    Trap(crate::TrapKind),
    /// XOR the result of the thread's next executed load with this mask
    /// (a soft-error / bit-flip model). Execution continues.
    CorruptLoad { xor: u64 },
    /// Suppress the thread's next barrier arrival: the thread skips the
    /// barrier and keeps running, which the team scheduler observes as a
    /// barrier mismatch (deadlock trap) in well-formed kernels.
    DropBarrierArrival,
}

/// A device-scoped fault class: unlike [`FaultAction`]s, which target a
/// thread *inside* a launch, these hit the host-visible device operations
/// themselves (memcpys and launches) — the failure modes a real
/// heterogeneous fleet loses nodes to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceFaultKind {
    /// The device vanishes: the triggering operation (and every later
    /// one) returns [`crate::TrapKind::DeviceLost`]. Permanent for this
    /// device — only replacing it helps.
    Lost,
    /// The next launch at or after the trigger stalls: it returns
    /// [`crate::TrapKind::Stalled`] carrying the fuel budget in effect,
    /// without mutating device memory. One-shot — a retry runs clean.
    StallLaunch,
    /// The next host<->device memcpy at or after the trigger fails with
    /// [`crate::TrapKind::MemcpyFault`] before moving any bytes.
    /// One-shot — a retry succeeds.
    MemcpyFail,
}

/// One device-scoped fault: fires at the first *applicable* device
/// operation (memcpy or launch, see [`DeviceFaultKind`]) whose index —
/// counted from 0 across the device's lifetime (or last plan re-arm) —
/// is at least `after_ops`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceFaultSite {
    /// Trigger at the first applicable op with index >= `after_ops`.
    pub after_ops: u64,
    pub kind: DeviceFaultKind,
}

/// One injected fault: a (team, thread, step) coordinate plus an action.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSite {
    pub team: u32,
    pub thread: u32,
    /// Trigger when the thread is about to execute its `after_steps`-th
    /// instruction (0 = the very first).
    pub after_steps: u64,
    pub action: FaultAction,
}

/// A deterministic fault-injection plan for one launch.
///
/// A plan is **stateless across launches**: the consumed-site cursor
/// (which site a thread fires next) lives in the per-thread execution
/// context, which is rebuilt from `sites_for` at every launch. Arming a
/// plan and launching twice therefore injects the identical campaign
/// twice — seeds are independent between launches, never "used up". The
/// `fault_relaunch` integration test pins this. The same property makes
/// plans safe to share read-only across parallel worker threads.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed this plan was derived from (0 for hand-built plans); recorded
    /// so errors can name the reproducer.
    pub seed: u64,
    pub sites: Vec<FaultSite>,
    /// Override the device step budget (smaller = provoke
    /// [`crate::TrapKind::FuelExhausted`]).
    pub fuel_limit: Option<u64>,
    /// Override the device heap budget in bytes (smaller = provoke
    /// [`crate::TrapKind::OutOfMemory`] in allocating kernels).
    pub heap_limit: Option<u64>,
    /// Device-scoped faults (lost device, stalled launch, failed memcpy)
    /// aimed at host-visible device operations rather than kernel
    /// threads. Consumed-site state lives on the [`crate::Device`] (reset
    /// on every re-arm), so the plan itself stays shareable read-only.
    pub device_sites: Vec<DeviceFaultSite>,
}

impl FaultPlan {
    /// The empty plan: injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True if the plan has no effect on execution.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
            && self.fuel_limit.is_none()
            && self.heap_limit.is_none()
            && self.device_sites.is_empty()
    }

    /// Derive a plan from a seed for a launch of `teams × threads`.
    ///
    /// The derivation is a pure function of `(seed, teams, threads)`:
    /// SplitMix64 drives every choice, so re-running with the same seed
    /// reproduces the same sites bit-for-bit. Roughly one in four seeds
    /// shrinks the fuel budget, one in eight shrinks the heap, and every
    /// plan carries 1–3 sites mixing direct traps, load corruption and
    /// dropped barrier arrivals.
    pub fn from_seed(seed: u64, teams: u32, threads: u32) -> FaultPlan {
        let mut s = Mix(seed ^ 0x5eed_fa17_0000_0001);
        let teams = teams.max(1);
        let threads = threads.max(1);
        let nsites = 1 + (s.next() % 3) as usize;
        let mut sites = Vec::with_capacity(nsites);
        for _ in 0..nsites {
            let team = (s.next() % teams as u64) as u32;
            let thread = (s.next() % threads as u64) as u32;
            // Bias towards early steps so faults land inside short test
            // kernels too, with a long tail for big proxies.
            let after_steps = match s.next() % 4 {
                0 => s.next() % 64,
                1 => s.next() % 1_024,
                2 => s.next() % 65_536,
                _ => s.next() % 1_048_576,
            };
            let action = match s.next() % 6 {
                0 => FaultAction::Trap(crate::TrapKind::AssertFail),
                1 => FaultAction::Trap(crate::TrapKind::OutOfBounds),
                2 => FaultAction::Trap(crate::TrapKind::NullDeref),
                3 => FaultAction::CorruptLoad {
                    xor: s.next() | 1, // never the identity mask
                },
                4 => FaultAction::CorruptLoad {
                    xor: 1 << (s.next() % 64), // single bit flip
                },
                _ => FaultAction::DropBarrierArrival,
            };
            sites.push(FaultSite {
                team,
                thread,
                after_steps,
                action,
            });
        }
        let fuel_limit = if s.next() % 4 == 0 {
            Some(1 + s.next() % 100_000)
        } else {
            None
        };
        let heap_limit = if s.next() % 8 == 0 {
            Some(s.next() % 4_096)
        } else {
            None
        };
        FaultPlan {
            seed,
            sites,
            fuel_limit,
            heap_limit,
            device_sites: Vec::new(),
        }
    }

    /// Derive a *device-level* fault campaign from a seed: 1–2
    /// [`DeviceFaultSite`]s with trigger indices biased to land inside a
    /// single target region's handful of memcpys and launches, mixing
    /// lost devices, stalled launches, and transient memcpy failures
    /// evenly. Thread-level sites and budget overrides stay empty, so the
    /// plan perturbs nothing but the device operations themselves.
    ///
    /// The derivation is a pure function of `seed` (SplitMix64), so a
    /// chaos campaign is a one-line reproducer — the same discipline as
    /// [`FaultPlan::from_seed`].
    pub fn device_campaign(seed: u64) -> FaultPlan {
        let mut s = Mix(seed ^ 0xdead_dec1_ce50_0002);
        let nsites = 1 + (s.next() % 2) as usize;
        let mut device_sites = Vec::with_capacity(nsites);
        for _ in 0..nsites {
            // A single region performs only a handful of device ops
            // (uploads, one launch, readback); `% 4` keeps nearly every
            // site live so chaos campaigns actually exercise recovery.
            let after_ops = s.next() % 4;
            let kind = match s.next() % 3 {
                0 => DeviceFaultKind::Lost,
                1 => DeviceFaultKind::StallLaunch,
                _ => DeviceFaultKind::MemcpyFail,
            };
            device_sites.push(DeviceFaultSite { after_ops, kind });
        }
        FaultPlan {
            seed,
            device_sites,
            ..FaultPlan::default()
        }
    }

    /// Sites aimed at `(team, thread)`, earliest trigger first.
    pub fn sites_for(&self, team: u32, thread: u32) -> Vec<FaultSite> {
        let mut v: Vec<FaultSite> = self
            .sites
            .iter()
            .filter(|s| s.team == team && s.thread == thread)
            .cloned()
            .collect();
        v.sort_by_key(|s| s.after_steps);
        v
    }
}

/// SplitMix64 — the same deterministic mixer used across the workspace.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        for seed in 0..200u64 {
            let a = FaultPlan::from_seed(seed, 4, 32);
            let b = FaultPlan::from_seed(seed, 4, 32);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert!(!a.is_empty());
            for site in &a.sites {
                assert!(site.team < 4);
                assert!(site.thread < 32);
            }
        }
    }

    #[test]
    fn device_campaign_is_deterministic_and_device_scoped() {
        let mut kinds = std::collections::HashSet::new();
        for seed in 0..200u64 {
            let a = FaultPlan::device_campaign(seed);
            let b = FaultPlan::device_campaign(seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert!(!a.is_empty(), "device sites must make the plan non-empty");
            assert!(a.sites.is_empty() && a.fuel_limit.is_none() && a.heap_limit.is_none());
            assert!((1..=2).contains(&a.device_sites.len()));
            for site in &a.device_sites {
                assert!(site.after_ops < 4);
                kinds.insert(site.kind);
            }
        }
        // All three fault classes appear across 200 seeds.
        assert_eq!(kinds.len(), 3, "a fault kind never derived: {kinds:?}");
    }

    #[test]
    fn different_seeds_usually_differ() {
        let distinct: std::collections::HashSet<String> = (0..64u64)
            .map(|s| format!("{:?}", FaultPlan::from_seed(s, 2, 8).sites))
            .collect();
        assert!(distinct.len() > 32, "seeds collapse to too few plans");
    }

    #[test]
    fn sites_for_filters_and_sorts() {
        let plan = FaultPlan {
            seed: 0,
            sites: vec![
                FaultSite {
                    team: 1,
                    thread: 2,
                    after_steps: 50,
                    action: FaultAction::DropBarrierArrival,
                },
                FaultSite {
                    team: 1,
                    thread: 2,
                    after_steps: 5,
                    action: FaultAction::Trap(crate::TrapKind::AssertFail),
                },
                FaultSite {
                    team: 0,
                    thread: 2,
                    after_steps: 1,
                    action: FaultAction::Trap(crate::TrapKind::NullDeref),
                },
            ],
            ..FaultPlan::default()
        };
        let s = plan.sites_for(1, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].after_steps, 5);
        assert_eq!(s[1].after_steps, 50);
        assert!(plan.sites_for(3, 3).is_empty());
    }
}
