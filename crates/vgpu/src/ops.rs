//! Scalar operation semantics shared by every execution backend.
//!
//! The team interpreter (`interp.rs`) and the bytecode tier (`bytecode/`)
//! must produce bit-identical values for every arithmetic, cast, compare
//! and fault-corruption operation — the cross-tier differential suites
//! compare raw output bits. Keeping the scalar semantics in one module is
//! what makes that a structural guarantee instead of a test-enforced one.

use nzomp_ir::inst::{BinOp, CastKind, Pred, UnOp};
use nzomp_ir::Ty;

use crate::error::TrapKind;
use crate::memory::DevPtr;
use crate::value::RtVal;

/// Binary arithmetic. Integer ops wrap; divides and remainders by zero
/// are a typed [`TrapKind::DivByZero`]; shifts mask the amount to 6 bits.
#[inline]
pub(crate) fn exec_bin(op: BinOp, a: RtVal, b: RtVal) -> Result<RtVal, TrapKind> {
    if op.is_float() {
        let (x, y) = (a.as_f(), b.as_f());
        let v = match op {
            BinOp::FAdd => x + y,
            BinOp::FSub => x - y,
            BinOp::FMul => x * y,
            BinOp::FDiv => x / y,
            BinOp::FMin => x.min(y),
            BinOp::FMax => x.max(y),
            _ => unreachable!(),
        };
        return Ok(RtVal::F(v));
    }
    let (x, y) = (a.as_i(), b.as_i());
    let v = match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::SDiv => {
            if y == 0 {
                return Err(TrapKind::DivByZero);
            }
            x.wrapping_div(y)
        }
        BinOp::SRem => {
            if y == 0 {
                return Err(TrapKind::DivByZero);
            }
            x.wrapping_rem(y)
        }
        BinOp::UDiv => {
            if y == 0 {
                return Err(TrapKind::DivByZero);
            }
            ((x as u64) / (y as u64)) as i64
        }
        BinOp::URem => {
            if y == 0 {
                return Err(TrapKind::DivByZero);
            }
            ((x as u64) % (y as u64)) as i64
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32 & 63),
        BinOp::LShr => ((x as u64).wrapping_shr(y as u32 & 63)) as i64,
        BinOp::AShr => x.wrapping_shr(y as u32 & 63),
        BinOp::SMin => x.min(y),
        BinOp::SMax => x.max(y),
        _ => unreachable!(),
    };
    Ok(RtVal::I(v))
}

#[inline]
pub(crate) fn exec_un(op: UnOp, a: RtVal) -> RtVal {
    match op {
        UnOp::Neg => RtVal::I(a.as_i().wrapping_neg()),
        UnOp::Not => RtVal::I(!a.as_i()),
        UnOp::FNeg => RtVal::F(-a.as_f()),
        UnOp::FAbs => RtVal::F(a.as_f().abs()),
        UnOp::Sqrt => RtVal::F(a.as_f().sqrt()),
        UnOp::Sin => RtVal::F(a.as_f().sin()),
        UnOp::Cos => RtVal::F(a.as_f().cos()),
        UnOp::Exp => RtVal::F(a.as_f().exp()),
        UnOp::Log => RtVal::F(a.as_f().ln()),
    }
}

#[inline]
pub(crate) fn exec_cast(kind: CastKind, to: Ty, a: RtVal) -> RtVal {
    match kind {
        CastKind::IntCast => RtVal::I(match to {
            Ty::I1 => a.as_i() & 1,
            Ty::I8 => a.as_i() as i8 as i64,
            Ty::I32 => a.as_i() as i32 as i64,
            _ => a.as_i(),
        }),
        CastKind::ZExtCast => RtVal::I(match to {
            Ty::I1 => a.as_i() & 1,
            Ty::I8 => a.as_i() & 0xff,
            Ty::I32 => a.as_i() & 0xffff_ffff,
            _ => a.as_i(),
        }),
        CastKind::SiToFp => RtVal::F(a.as_i() as f64),
        CastKind::FpToSi => RtVal::I(a.as_f() as i64),
        CastKind::PtrCast => {
            if to == Ty::Ptr {
                RtVal::P(DevPtr(a.as_i() as u64))
            } else {
                RtVal::I(a.as_ptr().0 as i64)
            }
        }
    }
}

/// Comparison. `float` selects IEEE semantics (signed/unsigned predicate
/// pairs collapse); integer compares go through the raw bit pattern with
/// signedness taken from the predicate.
#[inline]
pub(crate) fn exec_cmp(pred: Pred, float: bool, a: RtVal, b: RtVal) -> bool {
    if float {
        let (x, y) = (a.as_f(), b.as_f());
        return match pred {
            Pred::Eq => x == y,
            Pred::Ne => x != y,
            Pred::Slt | Pred::Ult => x < y,
            Pred::Sle | Pred::Ule => x <= y,
            Pred::Sgt | Pred::Ugt => x > y,
            Pred::Sge | Pred::Uge => x >= y,
        };
    }
    let (x, y) = (a.to_bits(), b.to_bits());
    match pred {
        Pred::Eq => x == y,
        Pred::Ne => x != y,
        Pred::Slt => x < y,
        Pred::Sle => x <= y,
        Pred::Sgt => x > y,
        Pred::Sge => x >= y,
        Pred::Ult => (x as u64) < (y as u64),
        Pred::Ule => (x as u64) <= (y as u64),
        Pred::Ugt => (x as u64) > (y as u64),
        Pred::Uge => (x as u64) >= (y as u64),
    }
}

/// Apply a [`crate::faults::FaultAction::CorruptLoad`] mask, keeping the
/// value's type (the same bit-reinterpretation rule typed loads use).
#[inline]
pub(crate) fn corrupt_value(v: RtVal, xor: u64, ty: Ty) -> RtVal {
    let bits = (v.to_bits() as u64) ^ xor;
    match ty {
        Ty::F64 => RtVal::F(f64::from_bits(bits)),
        Ty::Ptr => RtVal::P(DevPtr(bits)),
        _ => RtVal::I(bits as i64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arithmetic_wraps() {
        let v = exec_bin(BinOp::Add, RtVal::I(i64::MAX), RtVal::I(1)).unwrap();
        assert_eq!(v, RtVal::I(i64::MIN));
        let v = exec_bin(BinOp::Mul, RtVal::I(i64::MIN), RtVal::I(-1)).unwrap();
        assert_eq!(v, RtVal::I(i64::MIN));
        let v = exec_bin(BinOp::Sub, RtVal::I(i64::MIN), RtVal::I(1)).unwrap();
        assert_eq!(v, RtVal::I(i64::MAX));
        // INT_MIN / -1 overflows in two's complement; wrapping_div keeps it.
        let v = exec_bin(BinOp::SDiv, RtVal::I(i64::MIN), RtVal::I(-1)).unwrap();
        assert_eq!(v, RtVal::I(i64::MIN));
    }

    #[test]
    fn div_rem_by_zero_trap() {
        for op in [BinOp::SDiv, BinOp::SRem, BinOp::UDiv, BinOp::URem] {
            assert!(matches!(
                exec_bin(op, RtVal::I(7), RtVal::I(0)),
                Err(TrapKind::DivByZero)
            ));
        }
        // Float division by zero is IEEE, not a trap.
        let v = exec_bin(BinOp::FDiv, RtVal::F(1.0), RtVal::F(0.0)).unwrap();
        assert_eq!(v, RtVal::F(f64::INFINITY));
    }

    #[test]
    fn unsigned_div_uses_bit_pattern() {
        let v = exec_bin(BinOp::UDiv, RtVal::I(-2), RtVal::I(2)).unwrap();
        assert_eq!(v, RtVal::I(((u64::MAX - 1) / 2) as i64));
        let v = exec_bin(BinOp::URem, RtVal::I(-1), RtVal::I(10)).unwrap();
        assert_eq!(v, RtVal::I((u64::MAX % 10) as i64));
    }

    #[test]
    fn shifts_mask_amount_to_six_bits() {
        // Shift by 64 == shift by 0 after the & 63 mask.
        assert_eq!(
            exec_bin(BinOp::Shl, RtVal::I(1), RtVal::I(64)).unwrap(),
            RtVal::I(1)
        );
        assert_eq!(
            exec_bin(BinOp::Shl, RtVal::I(1), RtVal::I(65)).unwrap(),
            RtVal::I(2)
        );
        // Logical vs arithmetic right shift on a negative value.
        assert_eq!(
            exec_bin(BinOp::LShr, RtVal::I(-1), RtVal::I(1)).unwrap(),
            RtVal::I((u64::MAX >> 1) as i64)
        );
        assert_eq!(
            exec_bin(BinOp::AShr, RtVal::I(-1), RtVal::I(1)).unwrap(),
            RtVal::I(-1)
        );
    }

    #[test]
    fn float_min_max_and_neg() {
        assert_eq!(
            exec_bin(BinOp::FMin, RtVal::F(-0.0), RtVal::F(1.0)).unwrap(),
            RtVal::F(-0.0)
        );
        assert_eq!(exec_un(UnOp::FNeg, RtVal::F(0.0)).to_bits(), (-0.0f64).to_bits() as i64);
        assert_eq!(exec_un(UnOp::FAbs, RtVal::F(-2.5)), RtVal::F(2.5));
        assert_eq!(exec_un(UnOp::Neg, RtVal::I(i64::MIN)), RtVal::I(i64::MIN));
    }

    #[test]
    fn int_casts_truncate_and_extend() {
        // IntCast sign-extends from the target width.
        assert_eq!(exec_cast(CastKind::IntCast, Ty::I8, RtVal::I(0x1ff)), RtVal::I(-1));
        assert_eq!(
            exec_cast(CastKind::IntCast, Ty::I32, RtVal::I(0x1_8000_0000)),
            RtVal::I(-0x8000_0000)
        );
        assert_eq!(exec_cast(CastKind::IntCast, Ty::I1, RtVal::I(3)), RtVal::I(1));
        // ZExtCast keeps only the low bits.
        assert_eq!(exec_cast(CastKind::ZExtCast, Ty::I8, RtVal::I(-1)), RtVal::I(0xff));
        assert_eq!(
            exec_cast(CastKind::ZExtCast, Ty::I32, RtVal::I(-1)),
            RtVal::I(0xffff_ffff)
        );
        assert_eq!(exec_cast(CastKind::ZExtCast, Ty::I64, RtVal::I(-1)), RtVal::I(-1));
    }

    #[test]
    fn fp_int_conversions_saturate_like_rust() {
        assert_eq!(exec_cast(CastKind::FpToSi, Ty::I64, RtVal::F(1e300)), RtVal::I(i64::MAX));
        assert_eq!(exec_cast(CastKind::FpToSi, Ty::I64, RtVal::F(f64::NAN)), RtVal::I(0));
        assert_eq!(exec_cast(CastKind::SiToFp, Ty::F64, RtVal::I(1 << 53)), RtVal::F(9007199254740992.0));
    }

    #[test]
    fn ptr_cast_round_trips_bits() {
        let p = exec_cast(CastKind::PtrCast, Ty::Ptr, RtVal::I(0x1234));
        assert_eq!(p, RtVal::P(DevPtr(0x1234)));
        assert_eq!(exec_cast(CastKind::PtrCast, Ty::I64, p), RtVal::I(0x1234));
    }

    #[test]
    fn nan_compares_are_all_false_except_ne() {
        let nan = RtVal::F(f64::NAN);
        for pred in [Pred::Eq, Pred::Slt, Pred::Sle, Pred::Sgt, Pred::Sge] {
            assert!(!exec_cmp(pred, true, nan, nan), "{pred:?}");
        }
        assert!(exec_cmp(Pred::Ne, true, nan, nan));
    }

    #[test]
    fn signed_vs_unsigned_predicates() {
        let (a, b) = (RtVal::I(-1), RtVal::I(1));
        assert!(exec_cmp(Pred::Slt, false, a, b));
        assert!(exec_cmp(Pred::Ugt, false, a, b)); // -1 is u64::MAX unsigned
        // Float compares collapse the signedness distinction.
        assert!(exec_cmp(Pred::Ult, true, RtVal::F(-1.0), RtVal::F(1.0)));
    }

    #[test]
    fn corrupt_value_preserves_type() {
        assert_eq!(corrupt_value(RtVal::I(0), 0xff, Ty::I64), RtVal::I(0xff));
        assert!(matches!(corrupt_value(RtVal::F(1.0), 1, Ty::F64), RtVal::F(_)));
        assert!(matches!(corrupt_value(RtVal::P(DevPtr(8)), 1, Ty::Ptr), RtVal::P(_)));
        // XOR with 0 is the identity on the bit pattern.
        assert_eq!(corrupt_value(RtVal::F(2.5), 0, Ty::F64), RtVal::F(2.5));
    }
}
