//! Runtime values.

use crate::memory::DevPtr;

/// A dynamic value flowing through the interpreter. Integers of all widths
/// are carried as `i64` (the IR performs arithmetic in 64-bit two's
/// complement); memory access width comes from the instruction type.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RtVal {
    I(i64),
    F(f64),
    P(DevPtr),
}

impl RtVal {
    #[inline]
    pub fn as_i(self) -> i64 {
        match self {
            RtVal::I(v) => v,
            RtVal::P(p) => p.0 as i64,
            RtVal::F(v) => v as i64,
        }
    }

    #[inline]
    pub fn as_f(self) -> f64 {
        match self {
            RtVal::F(v) => v,
            RtVal::I(v) => v as f64,
            RtVal::P(p) => p.0 as f64,
        }
    }

    #[inline]
    pub fn as_ptr(self) -> DevPtr {
        match self {
            RtVal::P(p) => p,
            RtVal::I(v) => DevPtr(v as u64),
            RtVal::F(_) => DevPtr::NULL,
        }
    }

    #[inline]
    pub fn as_bool(self) -> bool {
        self.as_i() != 0
    }

    /// Bit pattern for storing to memory.
    #[inline]
    pub fn to_bits(self) -> i64 {
        match self {
            RtVal::I(v) => v,
            RtVal::F(v) => v.to_bits() as i64,
            RtVal::P(p) => p.0 as i64,
        }
    }
}

impl From<i64> for RtVal {
    fn from(v: i64) -> Self {
        RtVal::I(v)
    }
}

impl From<f64> for RtVal {
    fn from(v: f64) -> Self {
        RtVal::F(v)
    }
}

impl From<DevPtr> for RtVal {
    fn from(p: DevPtr) -> Self {
        RtVal::P(p)
    }
}

impl From<bool> for RtVal {
    fn from(v: bool) -> Self {
        RtVal::I(v as i64)
    }
}
