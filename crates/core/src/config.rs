//! Build configurations — the evaluation columns of the paper.

use nzomp_opt::PassOptions;
use nzomp_rt::{RtConfig, RuntimeFlavor};

/// One compiler/runtime configuration of the evaluation (Fig. 10–12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BuildConfig {
    /// Legacy runtime + pre-paper ("nightly") pipeline.
    OldRtNightly,
    /// Co-designed runtime + pre-paper pipeline: the state the paper
    /// observed in LLVM nightly, including the shared-memory regression.
    NewRtNightly,
    /// Co-designed runtime + full §IV pipeline, no user assumptions.
    NewRtNoAssumptions,
    /// Co-designed runtime + full §IV pipeline + oversubscription
    /// assumptions (§III-F). Only valid when the launch actually covers the
    /// iteration space (checked at runtime in debug builds).
    NewRt,
    /// Hand-written CUDA-style kernel, no OpenMP runtime.
    Cuda,
}

impl BuildConfig {
    /// All OpenMP configs plus the CUDA baseline, in evaluation order.
    pub const ALL: [BuildConfig; 5] = [
        BuildConfig::OldRtNightly,
        BuildConfig::NewRtNightly,
        BuildConfig::NewRtNoAssumptions,
        BuildConfig::NewRt,
        BuildConfig::Cuda,
    ];

    pub fn label(self) -> &'static str {
        match self {
            BuildConfig::OldRtNightly => "Old RT (Nightly)",
            BuildConfig::NewRtNightly => "New RT (Nightly)",
            BuildConfig::NewRtNoAssumptions => "New RT - w/o Assumptions",
            BuildConfig::NewRt => "New RT",
            BuildConfig::Cuda => "CUDA (NVCC)",
        }
    }

    /// Does this configuration use an OpenMP lowering (vs. native CUDA)?
    pub fn is_openmp(self) -> bool {
        !matches!(self, BuildConfig::Cuda)
    }

    /// Which device runtime to link (None for CUDA).
    pub fn runtime(self) -> Option<RuntimeFlavor> {
        match self {
            BuildConfig::OldRtNightly => Some(RuntimeFlavor::Legacy),
            BuildConfig::NewRtNightly
            | BuildConfig::NewRtNoAssumptions
            | BuildConfig::NewRt => Some(RuntimeFlavor::Modern),
            BuildConfig::Cuda => None,
        }
    }

    /// Runtime compile-time configuration (debug off; assumptions per
    /// config).
    pub fn rt_config(self) -> RtConfig {
        RtConfig {
            debug_kind: 0,
            assume_teams_oversubscription: self == BuildConfig::NewRt,
            assume_threads_oversubscription: self == BuildConfig::NewRt,
        }
    }

    /// Optimization pipeline for this configuration.
    pub fn pass_options(self) -> PassOptions {
        match self {
            BuildConfig::OldRtNightly | BuildConfig::NewRtNightly => PassOptions::baseline(),
            BuildConfig::NewRtNoAssumptions | BuildConfig::NewRt => PassOptions::full(),
            // CUDA kernels get the generic folding every compiler performs.
            BuildConfig::Cuda => PassOptions::baseline(),
        }
    }
}
