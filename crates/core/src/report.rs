//! Reporting helpers: the Fig. 11-style per-config rows and relative
//! performance calculations used by the figure harness and examples.

use nzomp_vgpu::KernelMetrics;

use crate::config::BuildConfig;

/// One row of a Fig. 11-style table.
#[derive(Clone, Debug)]
pub struct ConfigRow {
    pub config: BuildConfig,
    pub metrics: KernelMetrics,
}

impl ConfigRow {
    /// `Build | Kernel Time | #Regs | SMem` (the paper's Fig. 11 columns).
    pub fn fig11_row(&self) -> String {
        format!(
            "{:<26} | {:>12} | {:>5} | {:>8}",
            self.config.label(),
            format_time(self.metrics.time_ms),
            self.metrics.regs_per_thread,
            format_bytes(self.metrics.smem_bytes + self.metrics.dyn_smem_bytes),
        )
    }
}

/// Header matching [`ConfigRow::fig11_row`].
pub fn fig11_header() -> String {
    format!(
        "{:<26} | {:>12} | {:>5} | {:>8}",
        "Build", "Kernel Time", "#Regs", "SMem"
    )
}

/// Speedup of each row relative to `baseline` (higher is better) — the
/// Fig. 10/12 bar heights.
///
/// `None` when the ratio is undefined: the baseline row is absent, its
/// time is zero (a degenerate run), or the row's own time is zero. NaN
/// never leaks into reports — renderers print "n/a" instead.
pub fn relative_performance(
    rows: &[ConfigRow],
    baseline: BuildConfig,
) -> Vec<(BuildConfig, Option<f64>)> {
    let base = rows
        .iter()
        .find(|r| r.config == baseline)
        .map(|r| r.metrics.time_ms)
        .filter(|t| *t > 0.0);
    rows.iter()
        .map(|r| {
            let speedup = match base {
                Some(b) if r.metrics.time_ms > 0.0 => Some(b / r.metrics.time_ms),
                _ => None,
            };
            (r.config, speedup)
        })
        .collect()
}

pub fn format_time(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.3} s", ms / 1000.0)
    } else if ms >= 1.0 {
        format!("{ms:.3} ms")
    } else {
        format!("{:.1} us", ms * 1000.0)
    }
}

pub fn format_bytes(b: u64) -> String {
    format!("{b} B")
}

/// Simple ASCII bar for the Fig. 10/12 style charts in the harness output.
pub fn bar(value: f64, scale: f64) -> String {
    let n = ((value * scale).round() as usize).min(80);
    "#".repeat(n.max(1))
}
