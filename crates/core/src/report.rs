//! Reporting helpers: the Fig. 11-style per-config rows and relative
//! performance calculations used by the figure harness and examples.

use nzomp_opt::PassTimings;
use nzomp_vgpu::KernelMetrics;

use crate::config::BuildConfig;

/// One row of a Fig. 11-style table.
#[derive(Clone, Debug)]
pub struct ConfigRow {
    pub config: BuildConfig,
    pub metrics: KernelMetrics,
}

impl ConfigRow {
    /// `Build | Kernel Time | #Regs | SMem` (the paper's Fig. 11 columns).
    pub fn fig11_row(&self) -> String {
        format!(
            "{:<26} | {:>12} | {:>5} | {:>8}",
            self.config.label(),
            format_time(self.metrics.time_ms),
            self.metrics.regs_per_thread,
            format_bytes(self.metrics.smem_bytes + self.metrics.dyn_smem_bytes),
        )
    }
}

/// Header matching [`ConfigRow::fig11_row`].
pub fn fig11_header() -> String {
    format!(
        "{:<26} | {:>12} | {:>5} | {:>8}",
        "Build", "Kernel Time", "#Regs", "SMem"
    )
}

/// Speedup of each row relative to `baseline` (higher is better) — the
/// Fig. 10/12 bar heights.
///
/// `None` when the ratio is undefined: the baseline row is absent, its
/// time is zero (a degenerate run), or the row's own time is zero. NaN
/// never leaks into reports — renderers print "n/a" instead.
pub fn relative_performance(
    rows: &[ConfigRow],
    baseline: BuildConfig,
) -> Vec<(BuildConfig, Option<f64>)> {
    let base = rows
        .iter()
        .find(|r| r.config == baseline)
        .map(|r| r.metrics.time_ms)
        .filter(|t| *t > 0.0);
    rows.iter()
        .map(|r| {
            let speedup = match base {
                Some(b) if r.metrics.time_ms > 0.0 => Some(b / r.metrics.time_ms),
                _ => None,
            };
            (r.config, speedup)
        })
        .collect()
}

/// One measured point of a worker-thread scaling sweep: `workers` host
/// threads, total wall time in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingRow {
    pub workers: usize,
    pub wall_ns: u128,
}

/// Speedup of each row over the 1-worker row (higher is better).
///
/// `None` when undefined: no 1-worker baseline, a zero baseline, or a
/// zero row time — the same NaN-free policy as [`relative_performance`].
pub fn scaling_speedups(rows: &[ScalingRow]) -> Vec<(usize, Option<f64>)> {
    let base = rows
        .iter()
        .find(|r| r.workers == 1)
        .map(|r| r.wall_ns)
        .filter(|&t| t > 0);
    rows.iter()
        .map(|r| {
            let speedup = match base {
                Some(b) if r.wall_ns > 0 => Some(b as f64 / r.wall_ns as f64),
                _ => None,
            };
            (r.workers, speedup)
        })
        .collect()
}

/// Render a scaling sweep as an aligned ASCII table with speedup bars
/// (1.0x = 10 chars), one row per worker count.
pub fn scaling_table(rows: &[ScalingRow]) -> String {
    let rel = scaling_speedups(rows);
    let mut s = format!("{:>8} | {:>12} | {:>8}\n", "workers", "wall time", "speedup");
    for (row, (_, speedup)) in rows.iter().zip(rel) {
        let time = format_time(row.wall_ns as f64 / 1e6);
        match speedup {
            Some(v) => {
                s.push_str(&format!("{:>8} | {:>12} | {:>7.2}x {}\n", row.workers, time, v, bar(v, 10.0)));
            }
            None => {
                s.push_str(&format!("{:>8} | {:>12} | {:>8}\n", row.workers, time, "n/a"));
            }
        }
    }
    s
}

/// One measured point of an execution-tier sweep: the tier name
/// (`"interp"` / `"bytecode"`), total wall time, and the per-launch
/// instruction / dispatch counters — which must be *identical* across
/// tiers (bit-identity contract); only `wall_ns` may differ.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecTierRow {
    pub tier: String,
    pub wall_ns: u128,
    /// Dynamic instruction count of the measured launches.
    pub instructions: u64,
    /// Backend dispatch steps (one per fuel unit) of the measured launches.
    pub dispatched: u64,
}

/// Speedup of each tier over the `interp` row (higher is better); same
/// NaN-free policy as [`scaling_speedups`].
pub fn exec_tier_speedups(rows: &[ExecTierRow]) -> Vec<(String, Option<f64>)> {
    let base = rows
        .iter()
        .find(|r| r.tier == "interp")
        .map(|r| r.wall_ns)
        .filter(|&t| t > 0);
    rows.iter()
        .map(|r| {
            let speedup = match base {
                Some(b) if r.wall_ns > 0 => Some(b as f64 / r.wall_ns as f64),
                _ => None,
            };
            (r.tier.clone(), speedup)
        })
        .collect()
}

/// Render an execution-tier sweep as an aligned ASCII table with speedup
/// bars (1.0x = 10 chars), one row per tier.
pub fn exec_tier_table(rows: &[ExecTierRow]) -> String {
    let rel = exec_tier_speedups(rows);
    let mut s = format!(
        "{:>10} | {:>12} | {:>14} | {:>14} | {:>8}\n",
        "tier", "wall time", "instructions", "dispatched", "speedup"
    );
    for (row, (_, speedup)) in rows.iter().zip(rel) {
        let time = format_time(row.wall_ns as f64 / 1e6);
        match speedup {
            Some(v) => s.push_str(&format!(
                "{:>10} | {:>12} | {:>14} | {:>14} | {:>7.2}x {}\n",
                row.tier,
                time,
                row.instructions,
                row.dispatched,
                v,
                bar(v, 10.0)
            )),
            None => s.push_str(&format!(
                "{:>10} | {:>12} | {:>14} | {:>14} | {:>8}\n",
                row.tier, time, row.instructions, row.dispatched, "n/a"
            )),
        }
    }
    s
}

/// One proxy's sanitizer-overhead measurement: verdict counts plus the
/// wall time of a plain and a sanitized launch of the same binary.
#[derive(Clone, Debug, PartialEq)]
pub struct SanitizerRow {
    pub name: String,
    pub races: u64,
    pub divergences: u64,
    pub plain_ns: u128,
    pub sanitized_ns: u128,
}

impl SanitizerRow {
    /// `clean` iff the sanitized launch reported nothing.
    pub fn is_clean(&self) -> bool {
        self.races == 0 && self.divergences == 0
    }

    /// Wall-time cost of shadow tracking (sanitized / plain), or `None`
    /// when the plain run time is degenerate — same NaN-free policy as
    /// [`relative_performance`].
    pub fn overhead(&self) -> Option<f64> {
        (self.plain_ns > 0).then(|| self.sanitized_ns as f64 / self.plain_ns as f64)
    }
}

/// Render a sanitizer sweep as an aligned ASCII table: one row per proxy
/// with its verdict, both wall times, and the tracking overhead.
pub fn sanitizer_table(rows: &[SanitizerRow]) -> String {
    let mut s = format!(
        "{:<10} | {:>8} | {:>12} | {:>12} | {:>8}\n",
        "proxy", "verdict", "plain", "sanitized", "overhead"
    );
    for row in rows {
        let verdict = if row.is_clean() {
            "clean".to_string()
        } else {
            format!("{}r/{}d", row.races, row.divergences)
        };
        let plain = format_time(row.plain_ns as f64 / 1e6);
        let sanitized = format_time(row.sanitized_ns as f64 / 1e6);
        match row.overhead() {
            Some(v) => s.push_str(&format!(
                "{:<10} | {:>8} | {:>12} | {:>12} | {:>7.2}x\n",
                row.name, verdict, plain, sanitized, v
            )),
            None => s.push_str(&format!(
                "{:<10} | {:>8} | {:>12} | {:>12} | {:>8}\n",
                row.name, verdict, plain, sanitized, "n/a"
            )),
        }
    }
    s
}

/// One proxy's chaos-recovery record: how many seeded device-fault
/// campaigns ran, how many recovered bit-identically, and the aggregate
/// recovery work (retries, watchdog trips, failovers, journal replays,
/// quarantines) those campaigns cost.
///
/// Plain data on purpose: the core crate cannot depend on the host
/// runtime, so the chaos harness fills these fields from its own
/// `RecoveryMetrics` totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryRow {
    pub name: String,
    pub campaigns: u64,
    pub recovered: u64,
    pub retries: u64,
    pub watchdog_trips: u64,
    pub failovers: u64,
    pub replayed_ops: u64,
    pub quarantines: u64,
}

impl RecoveryRow {
    /// `true` iff every campaign recovered to the clean outcome.
    pub fn is_fully_recovered(&self) -> bool {
        self.recovered == self.campaigns
    }
}

/// Render a chaos-recovery sweep as an aligned ASCII table: one row per
/// proxy with its recovered/campaign verdict and the recovery-work
/// counters, followed by a totals line.
pub fn recovery_table(rows: &[RecoveryRow]) -> String {
    let mut s = format!(
        "{:<10} | {:>9} | {:>7} | {:>8} | {:>9} | {:>7} | {:>11}\n",
        "proxy", "recovered", "retries", "watchdog", "failovers", "replays", "quarantines"
    );
    let mut total = RecoveryRow { name: "total".into(), ..RecoveryRow::default() };
    for row in rows {
        s.push_str(&format!(
            "{:<10} | {:>5}/{:<3} | {:>7} | {:>8} | {:>9} | {:>7} | {:>11}\n",
            row.name,
            row.recovered,
            row.campaigns,
            row.retries,
            row.watchdog_trips,
            row.failovers,
            row.replayed_ops,
            row.quarantines,
        ));
        total.campaigns += row.campaigns;
        total.recovered += row.recovered;
        total.retries += row.retries;
        total.watchdog_trips += row.watchdog_trips;
        total.failovers += row.failovers;
        total.replayed_ops += row.replayed_ops;
        total.quarantines += row.quarantines;
    }
    s.push_str(&format!(
        "{:<10} | {:>5}/{:<3} | {:>7} | {:>8} | {:>9} | {:>7} | {:>11}\n",
        total.name,
        total.recovered,
        total.campaigns,
        total.retries,
        total.watchdog_trips,
        total.failovers,
        total.replayed_ops,
        total.quarantines,
    ));
    s
}

/// One tenant's record of a multi-tenant serving run: per-outcome counts,
/// latency percentiles in modeled cycles, and the peak device-memory
/// footprint the tenant's quota saw.
///
/// Plain data on purpose (same rule as [`RecoveryRow`]): the core crate
/// cannot depend on the serving layer, so `nzomp-serve` and the
/// `serve_load` bench fill these fields from their own metrics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeRow {
    pub tenant: String,
    pub submitted: u64,
    pub completed: u64,
    pub faulted: u64,
    pub rejected_quota: u64,
    pub rejected_backlog: u64,
    pub rejected_saturated: u64,
    /// Median completed-request latency in modeled cycles.
    pub p50_cycles: u64,
    /// 99th-percentile completed-request latency in modeled cycles.
    pub p99_cycles: u64,
    /// Peak device bytes charged against the tenant's quota.
    pub peak_bytes: u64,
}

impl ServeRow {
    /// Total typed rejections (quota + backlog + saturation).
    pub fn rejected(&self) -> u64 {
        self.rejected_quota + self.rejected_backlog + self.rejected_saturated
    }
}

/// Nearest-rank percentile of a **sorted ascending** latency series.
/// `None` when the series is empty or `p` is outside `(0, 100]` — the
/// same no-NaN/no-panic policy as [`relative_performance`].
pub fn percentile(sorted: &[u64], p: f64) -> Option<u64> {
    if sorted.is_empty() || !(p > 0.0 && p <= 100.0) {
        return None;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted.get(rank.max(1) - 1).copied()
}

/// Render a serving run as an aligned ASCII table: one row per tenant
/// with outcome counts, latency percentiles, and peak quota footprint,
/// followed by a totals line (percentile columns show `-` in the totals
/// row — percentiles do not sum).
pub fn serve_table(rows: &[ServeRow]) -> String {
    let mut s = format!(
        "{:<10} | {:>9} | {:>9} | {:>7} | {:>5} | {:>7} | {:>5} | {:>10} | {:>10} | {:>10}\n",
        "tenant", "submitted", "completed", "faulted", "quota", "backlog", "sat", "p50 cyc", "p99 cyc", "peak B"
    );
    let mut total = ServeRow { tenant: "total".into(), ..ServeRow::default() };
    for row in rows {
        s.push_str(&format!(
            "{:<10} | {:>9} | {:>9} | {:>7} | {:>5} | {:>7} | {:>5} | {:>10} | {:>10} | {:>10}\n",
            row.tenant,
            row.submitted,
            row.completed,
            row.faulted,
            row.rejected_quota,
            row.rejected_backlog,
            row.rejected_saturated,
            row.p50_cycles,
            row.p99_cycles,
            row.peak_bytes,
        ));
        total.submitted += row.submitted;
        total.completed += row.completed;
        total.faulted += row.faulted;
        total.rejected_quota += row.rejected_quota;
        total.rejected_backlog += row.rejected_backlog;
        total.rejected_saturated += row.rejected_saturated;
        total.peak_bytes += row.peak_bytes;
    }
    s.push_str(&format!(
        "{:<10} | {:>9} | {:>9} | {:>7} | {:>5} | {:>7} | {:>5} | {:>10} | {:>10} | {:>10}\n",
        total.tenant,
        total.submitted,
        total.completed,
        total.faulted,
        total.rejected_quota,
        total.rejected_backlog,
        total.rejected_saturated,
        "-",
        "-",
        total.peak_bytes,
    ));
    s
}

/// Render a compile-time profile (one `optimize_module` run) as an aligned
/// ASCII table: per-pass runs, changed verdicts, wall time and cumulative
/// IR deltas, followed by the analysis-cache counters — the `-ftime-report`
/// analogue for the pass manager.
pub fn compile_stats_table(t: &PassTimings) -> String {
    let mut s = format!(
        "{:<14} | {:>4} | {:>7} | {:>10} | {:>7} | {:>7} | {:>8} | {:>9}\n",
        "pass", "runs", "changed", "wall", "Δinsts", "Δblocks", "Δglobals", "Δbarriers"
    );
    for p in &t.passes {
        s.push_str(&format!(
            "{:<14} | {:>4} | {:>7} | {:>10} | {:>+7} | {:>+7} | {:>+8} | {:>+9}\n",
            p.name,
            p.runs,
            p.changed_runs,
            format_time(p.wall.as_secs_f64() * 1e3),
            p.insts_delta,
            p.blocks_delta,
            p.globals_delta,
            p.barriers_delta,
        ));
    }
    s.push_str(&format!(
        "total optimizer wall time: {}\n",
        format_time(t.total.as_secs_f64() * 1e3)
    ));
    use nzomp_ir::analysis::AnalysisKind;
    let c = &t.cache;
    let per_kind: Vec<String> = AnalysisKind::ALL
        .iter()
        .map(|&k| format!("{} {}/{}", k.label(), c.hits_of(k), c.hits_of(k) + c.misses_of(k)))
        .collect();
    match c.hit_rate() {
        Some(rate) => s.push_str(&format!(
            "analysis cache: {:.0}% hit rate ({} hits / {} queries; {})\n",
            rate * 100.0,
            c.total_hits(),
            c.total_hits() + c.total_misses(),
            per_kind.join(", "),
        )),
        None => s.push_str("analysis cache: no queries\n"),
    }
    if let Some(vf) = &t.verify_failure {
        s.push_str(&format!("VERIFY FAILURE after pass {}: {}\n", vf.pass, vf.err));
    }
    s
}

pub fn format_time(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.3} s", ms / 1000.0)
    } else if ms >= 1.0 {
        format!("{ms:.3} ms")
    } else {
        format!("{:.1} us", ms * 1000.0)
    }
}

pub fn format_bytes(b: u64) -> String {
    format!("{b} B")
}

/// Simple ASCII bar for the Fig. 10/12 style charts in the harness output.
pub fn bar(value: f64, scale: f64) -> String {
    let n = ((value * scale).round() as usize).min(80);
    "#".repeat(n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_speedups_relative_to_one_worker() {
        let rows = [
            ScalingRow { workers: 1, wall_ns: 8_000 },
            ScalingRow { workers: 2, wall_ns: 4_000 },
            ScalingRow { workers: 8, wall_ns: 1_000 },
        ];
        let rel = scaling_speedups(&rows);
        assert_eq!(rel[0], (1, Some(1.0)));
        assert_eq!(rel[1], (2, Some(2.0)));
        assert_eq!(rel[2], (8, Some(8.0)));
    }

    #[test]
    fn scaling_speedups_never_divide_by_zero() {
        // No 1-worker baseline at all.
        assert_eq!(
            scaling_speedups(&[ScalingRow { workers: 4, wall_ns: 5 }]),
            vec![(4, None)]
        );
        // Degenerate zero timings on either side of the ratio.
        let rows = [
            ScalingRow { workers: 1, wall_ns: 0 },
            ScalingRow { workers: 2, wall_ns: 7 },
        ];
        assert!(scaling_speedups(&rows).iter().all(|(_, s)| s.is_none()));
        let rows = [
            ScalingRow { workers: 1, wall_ns: 7 },
            ScalingRow { workers: 2, wall_ns: 0 },
        ];
        assert_eq!(scaling_speedups(&rows)[1], (2, None));
    }

    #[test]
    fn sanitizer_table_renders_verdict_and_overhead() {
        let rows = [
            SanitizerRow {
                name: "xsbench".into(),
                races: 0,
                divergences: 0,
                plain_ns: 1_000_000,
                sanitized_ns: 1_500_000,
            },
            SanitizerRow {
                name: "broken".into(),
                races: 2,
                divergences: 1,
                plain_ns: 0,
                sanitized_ns: 5,
            },
        ];
        let table = sanitizer_table(&rows);
        assert!(table.contains("clean"), "{table}");
        assert!(table.contains("1.50x"), "{table}");
        assert!(table.contains("2r/1d"), "{table}");
        assert!(table.contains("n/a"), "{table}");
        assert_eq!(table.lines().count(), 3, "{table}");
    }

    #[test]
    fn recovery_table_renders_rows_and_totals() {
        let rows = [
            RecoveryRow {
                name: "xsbench".into(),
                campaigns: 24,
                recovered: 24,
                retries: 10,
                watchdog_trips: 3,
                failovers: 7,
                replayed_ops: 21,
                quarantines: 7,
            },
            RecoveryRow {
                name: "rsbench".into(),
                campaigns: 24,
                recovered: 23,
                retries: 4,
                watchdog_trips: 1,
                failovers: 2,
                replayed_ops: 6,
                quarantines: 2,
            },
        ];
        assert!(rows[0].is_fully_recovered());
        assert!(!rows[1].is_fully_recovered());
        let table = recovery_table(&rows);
        assert!(table.contains("xsbench"), "{table}");
        assert!(table.contains("24/24"), "{table}");
        assert!(table.contains("23/24"), "{table}");
        // header + 2 rows + totals
        assert_eq!(table.lines().count(), 4, "{table}");
        assert!(table.lines().last().unwrap().contains("47/48"), "{table}");
    }

    #[test]
    fn serve_table_renders_rows_and_totals() {
        let rows = [
            ServeRow {
                tenant: "t0".into(),
                submitted: 100,
                completed: 80,
                faulted: 5,
                rejected_quota: 10,
                rejected_backlog: 4,
                rejected_saturated: 1,
                p50_cycles: 1_200,
                p99_cycles: 9_000,
                peak_bytes: 4_096,
            },
            ServeRow {
                tenant: "t1".into(),
                submitted: 50,
                completed: 50,
                faulted: 0,
                rejected_quota: 0,
                rejected_backlog: 0,
                rejected_saturated: 0,
                p50_cycles: 800,
                p99_cycles: 800,
                peak_bytes: 1_024,
            },
        ];
        assert_eq!(rows[0].rejected(), 15);
        assert_eq!(rows[1].rejected(), 0);
        let table = serve_table(&rows);
        assert!(table.contains("t0"), "{table}");
        assert!(table.contains("9000"), "{table}");
        // header + 2 rows + totals
        assert_eq!(table.lines().count(), 4, "{table}");
        let totals = table.lines().last().unwrap();
        assert!(totals.contains("150"), "{table}");
        assert!(totals.contains("130"), "{table}");
        assert!(totals.contains("5120"), "{table}");
        // Percentiles never sum: the totals row shows dashes instead.
        assert!(totals.contains('-'), "{table}");
    }

    #[test]
    fn percentile_is_nearest_rank_and_total_on_empty_or_bad_p() {
        let s = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&s, 50.0), Some(50));
        assert_eq!(percentile(&s, 99.0), Some(100));
        assert_eq!(percentile(&s, 100.0), Some(100));
        assert_eq!(percentile(&s, 1.0), Some(10));
        assert_eq!(percentile(&[42], 50.0), Some(42));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&s, 0.0), None);
        assert_eq!(percentile(&s, 101.0), None);
        assert_eq!(percentile(&s, f64::NAN), None);
    }

    #[test]
    fn compile_stats_table_renders_passes_and_cache() {
        use nzomp_opt::PassStat;
        use std::time::Duration;
        let t = PassTimings {
            passes: vec![PassStat {
                name: "fold",
                runs: 3,
                changed_runs: 2,
                wall: Duration::from_micros(1500),
                insts_delta: -40,
                blocks_delta: 0,
                globals_delta: -2,
                barriers_delta: -1,
            }],
            cache: {
                let mut c = nzomp_ir::analysis::CacheStats::default();
                c.hits[1] = 9;
                c.misses[1] = 1;
                c
            },
            total: Duration::from_millis(2),
            verify_failure: None,
        };
        let table = compile_stats_table(&t);
        assert!(table.contains("fold"), "{table}");
        assert!(table.contains("90% hit rate"), "{table}");
        assert!(table.contains("-40"), "{table}");
        assert!(table.contains("dominators 9/10"), "{table}");
    }

    #[test]
    fn scaling_table_renders_every_row() {
        let rows = [
            ScalingRow { workers: 1, wall_ns: 2_000_000 },
            ScalingRow { workers: 2, wall_ns: 1_000_000 },
        ];
        let table = scaling_table(&rows);
        assert!(table.contains("workers"), "{table}");
        assert!(table.contains("2.00x"), "{table}");
        assert_eq!(table.lines().count(), 3, "{table}");
    }

    fn tier_row(tier: &str, wall_ns: u128) -> ExecTierRow {
        ExecTierRow {
            tier: tier.into(),
            wall_ns,
            instructions: 1_000,
            dispatched: 1_200,
        }
    }

    #[test]
    fn exec_tier_speedups_relative_to_interp() {
        let rows = [tier_row("interp", 6_000), tier_row("bytecode", 1_000)];
        let rel = exec_tier_speedups(&rows);
        assert_eq!(rel[0], ("interp".into(), Some(1.0)));
        assert_eq!(rel[1], ("bytecode".into(), Some(6.0)));
    }

    #[test]
    fn exec_tier_speedups_never_divide_by_zero() {
        // No interp baseline at all.
        assert_eq!(
            exec_tier_speedups(&[tier_row("bytecode", 5)]),
            vec![("bytecode".into(), None)]
        );
        // Degenerate zero timings on either side of the ratio.
        let rows = [tier_row("interp", 0), tier_row("bytecode", 7)];
        assert!(exec_tier_speedups(&rows).iter().all(|(_, s)| s.is_none()));
        let rows = [tier_row("interp", 7), tier_row("bytecode", 0)];
        assert_eq!(exec_tier_speedups(&rows)[1], ("bytecode".into(), None));
    }

    #[test]
    fn exec_tier_table_renders_every_row() {
        let rows = [tier_row("interp", 5_000_000), tier_row("bytecode", 1_000_000)];
        let table = exec_tier_table(&rows);
        assert!(table.contains("tier"), "{table}");
        assert!(table.contains("dispatched"), "{table}");
        assert!(table.contains("5.00x"), "{table}");
        assert_eq!(table.lines().count(), 3, "{table}");
    }
}
