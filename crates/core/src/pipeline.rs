//! The compile pipeline: application module → runtime link → optimization.
//!
//! Mirrors §II-B: "the GPU runtime library is first linked into the user
//! code as an LLVM bytecode library and then optimized together with the
//! user application", followed by loading the result onto the (virtual)
//! device.
//!
//! Every stage reports failure as a typed [`CompileError`] rather than a
//! process abort, so hosts (and the differential harness) can treat a bad
//! module the same way they treat a device trap: inspect, log, continue.

use std::fmt;
use std::rc::Rc;

use nzomp_ir::link::LinkError;
use nzomp_ir::verify::VerifyError;
use nzomp_ir::Module;
use nzomp_opt::{optimize_module_timed, PassOptions, PassTimings, Remarks};
use nzomp_rt::{build_runtime, RtConfig};

use crate::config::BuildConfig;

/// Result of compiling an application module under a configuration.
pub struct CompileOutput {
    /// The linked, optimized device image.
    pub module: Module,
    /// Optimization remarks (`-Rpass[-missed]=openmp-opt`).
    pub remarks: Remarks,
    /// Per-pass profile and analysis-cache counters from the optimizer
    /// (the `-ftime-report` analogue; render with
    /// [`crate::report::compile_stats_table`]).
    pub timings: PassTimings,
}

/// Why the pipeline refused to produce a device image.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Linking the runtime library into the application failed
    /// (duplicate symbols, signature mismatches).
    Link(LinkError),
    /// The module failed verification — either straight after the link
    /// (malformed input) or after optimization (a broken pass). The stage
    /// name distinguishes the two.
    Verify { stage: &'static str, err: VerifyError },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Link(e) => write!(f, "runtime link failed: {e}"),
            CompileError::Verify { stage, err } => {
                write!(f, "module failed verification after {stage}: {err}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LinkError> for CompileError {
    fn from(e: LinkError) -> CompileError {
        CompileError::Link(e)
    }
}

/// Compile `app` under `config` (release mode, no debug features).
pub fn compile(app: Module, config: BuildConfig) -> Result<CompileOutput, CompileError> {
    compile_with(app, config, config.rt_config(), config.pass_options())
}

/// The front half of [`compile_with`]: link the runtime library into `app`
/// and verify the result, without optimizing. Used by the `compile_profile`
/// harness to obtain the optimizer's true input.
pub fn link_only(
    mut app: Module,
    config: BuildConfig,
    rt_cfg: &RtConfig,
) -> Result<Module, CompileError> {
    if let Some(flavor) = config.runtime() {
        // Kernels that globalize variables under the legacy runtime get the
        // data-sharing stack reserved (the Old-RT SMem delta of Fig. 11).
        let needs_ds = app
            .find_func(nzomp_rt::abi::OLD_DATA_SHARING_PUSH)
            .is_some();
        let rt = build_runtime(flavor, rt_cfg, needs_ds);
        nzomp_ir::link::link(&mut app, rt)?;
    }
    // Link-time verification: catch malformed input (e.g. a phi missing an
    // incoming for one of its predecessors) before it reaches the
    // optimizer or the device.
    nzomp_ir::verify_module(&app).map_err(|err| CompileError::Verify { stage: "link", err })?;
    Ok(app)
}

/// Compile with explicit runtime configuration and pass options (used for
/// debug builds and the Fig. 13 ablations).
pub fn compile_with(
    app: Module,
    config: BuildConfig,
    rt_cfg: RtConfig,
    mut opts: PassOptions,
) -> Result<CompileOutput, CompileError> {
    let mut app = link_only(app, config, &rt_cfg)?;
    // Debug builds must keep assumptions (they are runtime-checked, §III-G).
    if rt_cfg.debug_kind != 0 {
        opts.drop_assumes = false;
    }
    let (remarks, timings) = optimize_module_timed(&mut app, &opts);
    // With NZOMP_VERIFY_EACH_PASS=1 the optimizer verified after every
    // pass; a failure there names the offending pass instead of the
    // generic "optimization" stage below.
    if let Some(vf) = &timings.verify_failure {
        return Err(CompileError::Verify {
            stage: vf.pass,
            err: vf.err.clone(),
        });
    }
    nzomp_ir::verify_module(&app)
        .map_err(|err| CompileError::Verify { stage: "optimization", err })?;
    Ok(CompileOutput {
        module: app,
        remarks,
        timings,
    })
}

/// Structural fingerprint of a module: FNV-1a over its printed IR. Two
/// modules with the same print are the same compilation input, so the
/// fingerprint keys the [`CompileCache`] (and the per-device kernel-image
/// registries built on top of it in `nzomp-host`).
pub fn module_fingerprint(m: &Module) -> u64 {
    let text = nzomp_ir::printer::print_module(m);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Memoized compile pipeline: repeated compilations of the same
/// application module under the same [`BuildConfig`] skip the link +
/// optimization pipeline entirely and share one [`CompileOutput`].
///
/// This is the host runtime's recompile eliminator: every launch of an
/// already-registered kernel image must cost a table lookup, not an
/// optimizer run (the `offload_overhead` bench asserts the hit counter).
#[derive(Default)]
pub struct CompileCache {
    entries: Vec<(u64, BuildConfig, Rc<CompileOutput>)>,
    /// Compilations served from the cache.
    pub hits: u64,
    /// Compilations that ran the real pipeline.
    pub misses: u64,
}

impl CompileCache {
    pub fn new() -> CompileCache {
        CompileCache::default()
    }

    /// Compile `app` under `config`, reusing a previous output when the
    /// `(fingerprint, config)` pair was seen before.
    pub fn compile(
        &mut self,
        app: Module,
        config: BuildConfig,
    ) -> Result<Rc<CompileOutput>, CompileError> {
        let fp = module_fingerprint(&app);
        if let Some((_, _, out)) = self
            .entries
            .iter()
            .find(|(f, c, _)| *f == fp && *c == config)
        {
            self.hits += 1;
            return Ok(Rc::clone(out));
        }
        self.misses += 1;
        let out = Rc::new(compile(app, config)?);
        self.entries.push((fp, config, Rc::clone(&out)));
        Ok(out)
    }

    /// Number of distinct compiled images held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}
