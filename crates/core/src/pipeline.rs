//! The compile pipeline: application module → runtime link → optimization.
//!
//! Mirrors §II-B: "the GPU runtime library is first linked into the user
//! code as an LLVM bytecode library and then optimized together with the
//! user application", followed by loading the result onto the (virtual)
//! device.

use nzomp_ir::Module;
use nzomp_opt::{optimize_module, PassOptions, Remarks};
use nzomp_rt::{build_runtime, RtConfig};

use crate::config::BuildConfig;

/// Result of compiling an application module under a configuration.
pub struct CompileOutput {
    /// The linked, optimized device image.
    pub module: Module,
    /// Optimization remarks (`-Rpass[-missed]=openmp-opt`).
    pub remarks: Remarks,
}

/// Compile `app` under `config` (release mode, no debug features).
pub fn compile(app: Module, config: BuildConfig) -> CompileOutput {
    compile_with(app, config, config.rt_config(), config.pass_options())
}

/// Compile with explicit runtime configuration and pass options (used for
/// debug builds and the Fig. 13 ablations).
pub fn compile_with(
    mut app: Module,
    config: BuildConfig,
    rt_cfg: RtConfig,
    mut opts: PassOptions,
) -> CompileOutput {
    if let Some(flavor) = config.runtime() {
        // Kernels that globalize variables under the legacy runtime get the
        // data-sharing stack reserved (the Old-RT SMem delta of Fig. 11).
        let needs_ds = app
            .find_func(nzomp_rt::abi::OLD_DATA_SHARING_PUSH)
            .is_some();
        let rt = build_runtime(flavor, &rt_cfg, needs_ds);
        nzomp_ir::link::link(&mut app, rt).expect("runtime links");
    }
    // Debug builds must keep assumptions (they are runtime-checked, §III-G).
    if rt_cfg.debug_kind != 0 {
        opts.drop_assumes = false;
    }
    let remarks = optimize_module(&mut app, &opts);
    nzomp_ir::verify_module(&app).expect("optimized module verifies");
    CompileOutput {
        module: app,
        remarks,
    }
}
