//! `nzomp` — the user-facing facade: build configurations, the compile
//! pipeline (frontend output → runtime link → optimization → device image)
//! and launch/reporting helpers.
//!
//! The five [`BuildConfig`]s are the columns of the paper's evaluation
//! (Fig. 10–12):
//!
//! | config | runtime | pipeline | notes |
//! |---|---|---|---|
//! | `OldRtNightly` | legacy | baseline | the pre-paper status quo |
//! | `NewRtNightly` | modern | baseline | new runtime before the §IV passes — reproduces the paper's nightly regression (bigger SMem, no wins) |
//! | `NewRtNoAssumptions` | modern | full §IV | co-design without user assumptions |
//! | `NewRt` | modern | full §IV | plus oversubscription assumptions (§III-F) |
//! | `Cuda` | none | generic folding | the native baseline |
//!
//! Panic-free by policy: pipeline failures are typed [`CompileError`]s,
//! never process aborts. The lint gate below enforces it (tests exempt).

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod pipeline;
pub mod report;

pub use config::BuildConfig;
pub use pipeline::{compile, module_fingerprint, CompileCache, CompileError, CompileOutput};
pub use report::{
    compile_stats_table, ConfigRow, ExecTierRow, RecoveryRow, SanitizerRow, ScalingRow,
};

pub use nzomp_front as front;
pub use nzomp_ir as ir;
pub use nzomp_opt as opt;
pub use nzomp_rt as rt;
pub use nzomp_vgpu as vgpu;
