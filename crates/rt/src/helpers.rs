//! Builder helpers shared by both runtime implementations and the frontend.

use nzomp_ir::{FuncBuilder, GlobalId, Operand, Ty};

/// Pointer to `byte_off` inside global `g`.
pub fn field_ptr(b: &mut FuncBuilder, g: GlobalId, byte_off: u64) -> Operand {
    if byte_off == 0 {
        return Operand::Global(g);
    }
    b.ptr_add(Operand::Global(g), Operand::i64(byte_off as i64))
}

/// Pointer to element `idx` (of `elem_size` bytes) of the array at
/// `base + byte_off` inside global `g`.
pub fn array_slot_ptr(
    b: &mut FuncBuilder,
    g: GlobalId,
    byte_off: u64,
    idx: Operand,
    elem_size: u64,
) -> Operand {
    let base = field_ptr(b, g, byte_off);
    b.gep(base, idx, elem_size)
}

/// Conditional write via a dummy location and conditional pointer — the
/// paper's Fig. 7b broadcast idiom. The store itself is unconditional (it
/// dominates the following barrier); only the *location* is conditional,
/// which is what the assumed-memory-content analysis (§IV-B3) is built to
/// handle.
pub fn cond_write(
    b: &mut FuncBuilder,
    dummy: GlobalId,
    ptr: Operand,
    value: Operand,
    ty: Ty,
    cond: Operand,
) {
    let target = b.select(Ty::Ptr, cond, ptr, Operand::Global(dummy));
    b.store(ty, target, value);
}

/// Emit `assume(load(ptr) == expected)` — the paper's Fig. 8b pattern placed
/// after broadcast barriers so the optimizer can treat the conditional write
/// as unconditional.
pub fn assume_field_eq(b: &mut FuncBuilder, ptr: Operand, ty: Ty, expected: Operand) {
    let v = b.load(ty, ptr);
    let c = b.cmp(nzomp_ir::Pred::Eq, ty, v, expected);
    b.assume(c);
}

/// `min(a, b)` on i64.
pub fn imin(b: &mut FuncBuilder, x: Operand, y: Operand) -> Operand {
    b.bin(nzomp_ir::BinOp::SMin, Ty::I64, x, y)
}

/// Round `v` up to a multiple of 8.
pub fn align8(b: &mut FuncBuilder, v: Operand) -> Operand {
    let plus = b.add(v, Operand::i64(7));
    b.and(plus, Operand::i64(!7))
}

/// Emit a call that carries a return type; the builder yields a value for
/// every such call, so the `Option` never comes back empty.
pub fn call_val(b: &mut FuncBuilder, f: Operand, args: Vec<Operand>, ty: Ty) -> Operand {
    b.call(f, args, Some(ty))
        .unwrap_or_else(|| unreachable!("call with a return type yields a value"))
}
