//! The legacy ("Old RT") device runtime — a faithful caricature of the
//! pre-paper LLVM OpenMP GPU runtime the evaluation compares against.
//!
//! Its *design* is what defeats the optimizer, independent of how many
//! passes run (the paper's co-design argument inverted):
//!
//! * every thread writes a per-thread task descriptor into a 2,336-byte
//!   shared-memory device state at init — dynamic offsets, non-constant
//!   values, so field-sensitive analysis cannot fold the later reads;
//! * ICV queries (`omp_get_thread_num`, …) read those descriptors from
//!   shared memory on every call;
//! * worksharing bounds travel through memory (`for_static_init` writes
//!   lb/ub/stride through pointers the caller must alloca) instead of the
//!   callback scheme of Fig. 5;
//! * broadcast writes use conditional *execution* (Fig. 7a) with no
//!   assumptions, so dominance-based content tracking fails (§IV-B3);
//! * every barrier is the divergence-tolerant kind, which the aligned
//!   barrier elimination of §IV-D must conservatively keep;
//! * kernels that globalize locals get a 5,952-byte data-sharing stack
//!   (2,336 + 5,952 = 8,288 bytes — the Old-RT XSBench SMem of Fig. 11).

use nzomp_ir::{FuncBuilder, Function, Global, GlobalId, Init, Module, Operand, Pred, Space, Ty};

use crate::abi::{self, old_state as os, RtConfig};
use crate::helpers::{align8, call_val, field_ptr, imin};

struct Ctx {
    state: GlobalId,
    ds_stack: Option<GlobalId>,
    ds_top: Option<GlobalId>,
}

/// Build the legacy runtime. `needs_data_sharing` reserves the
/// data-sharing stack used by variable globalization.
pub fn build(cfg: &RtConfig, needs_data_sharing: bool) -> Module {
    let _ = cfg; // the legacy runtime has no compile-time feature globals
    let mut m = Module::new("nzomp-rt-legacy");
    let state = m.add_global(Global::new(
        abi::G_OLD_STATE,
        Space::Shared,
        os::SIZE,
        Init::Zero,
    ));
    let (ds_stack, ds_top) = if needs_data_sharing {
        (
            Some(m.add_global(Global::new(
                abi::G_OLD_DS_STACK,
                Space::Shared,
                abi::OLD_DS_STACK_SIZE,
                Init::Zero,
            ))),
            Some(m.add_global(Global::new(abi::G_OLD_DS_TOP, Space::Shared, 8, Init::Zero))),
        )
    } else {
        (None, None)
    };
    let ctx = Ctx {
        state,
        ds_stack,
        ds_top,
    };

    let decls: Vec<(&str, Vec<Ty>, Option<Ty>)> = vec![
        (abi::OLD_TARGET_INIT, vec![Ty::I64], Some(Ty::I64)),
        (abi::OLD_TARGET_DEINIT, vec![Ty::I64], None),
        (abi::OLD_WORKER_LOOP, vec![], None),
        (abi::OLD_PARALLEL_PREPARE, vec![Ty::Ptr, Ty::Ptr], None),
        (abi::OLD_PARALLEL_END, vec![], None),
        (abi::OMP_GET_THREAD_NUM, vec![], Some(Ty::I64)),
        (abi::OMP_GET_NUM_THREADS, vec![], Some(Ty::I64)),
        (abi::OMP_GET_LEVEL, vec![], Some(Ty::I64)),
        (abi::OMP_GET_TEAM_NUM, vec![], Some(Ty::I64)),
        (abi::OMP_GET_NUM_TEAMS, vec![], Some(Ty::I64)),
        (
            abi::OLD_FOR_STATIC_INIT,
            vec![Ty::Ptr, Ty::Ptr, Ty::Ptr, Ty::I64],
            None,
        ),
        (abi::OLD_FOR_STATIC_FINI, vec![], None),
        (
            abi::OLD_DISTRIBUTE_INIT,
            vec![Ty::Ptr, Ty::Ptr, Ty::Ptr, Ty::I64],
            None,
        ),
        (abi::OLD_BARRIER, vec![], None),
        (abi::OLD_DATA_SHARING_PUSH, vec![Ty::I64], Some(Ty::Ptr)),
        (abi::OLD_DATA_SHARING_POP, vec![Ty::Ptr, Ty::I64], None),
    ];
    for (name, params, ret) in &decls {
        m.add_function(Function::declaration(*name, params.clone(), *ret));
    }

    let f = build_init(&m, &ctx); install(&mut m, f);
    install(&mut m, build_deinit(&ctx));
    install(&mut m, build_worker_loop(&ctx));
    install(&mut m, build_prepare_parallel(&ctx));
    install(&mut m, build_end_parallel(&ctx));
    install(&mut m, build_get_thread_num(&ctx));
    install(&mut m, build_get_num_threads(&ctx));
    install(&mut m, build_get_level(&ctx));
    install(&mut m, build_get_team_num());
    install(&mut m, build_get_num_teams());
    let f = build_for_static_init(&m, &ctx); install(&mut m, f);
    install(&mut m, build_for_static_fini());
    install(&mut m, build_distribute_init(&ctx));
    install(&mut m, build_barrier());
    install(&mut m, build_ds_push(&ctx));
    install(&mut m, build_ds_pop(&ctx));

    if let Err(e) = nzomp_ir::verify_module(&m) {
        unreachable!("legacy runtime verifies: {e}");
    }
    m
}

fn install(m: &mut Module, f: Function) {
    let slot = m
        .find_func(&f.name)
        .unwrap_or_else(|| panic!("@{} not declared", f.name));
    m.funcs[slot.index()] = f;
}

fn callee(m: &Module, name: &str) -> Operand {
    Operand::Func(m.find_func(name).unwrap_or_else(|| panic!("@{name}")))
}

/// Pointer to thread `tid`'s task descriptor.
fn descriptor_ptr(b: &mut FuncBuilder, ctx: &Ctx, tid: Operand) -> Operand {
    let base = field_ptr(b, ctx.state, os::DESCRIPTORS);
    b.gep(base, tid, os::DESCRIPTOR_STRIDE)
}

/// `__kmpc_kernel_init_old(mode) -> i64` (1 = finished worker).
fn build_init(m: &Module, ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::OLD_TARGET_INIT, vec![Ty::I64], Some(Ty::I64));
    let mode = b.param(0);
    let tid = b.thread_id();
    // Every thread materializes its task descriptor (stores its own id and
    // an "inactive" flag). Dynamic offset + non-constant value: unfoldable.
    let desc = descriptor_ptr(&mut b, ctx, tid);
    b.store(Ty::I64, desc, tid);
    let flag = b.ptr_add(desc, Operand::i64(8));
    b.store(Ty::I8, flag, Operand::ConstI(0, Ty::I8));
    // Main thread writes the team header — conditional *execution*
    // (Fig. 7a), the form dominance analysis cannot see through.
    let is_main = b.icmp_eq(tid, Operand::i64(0));
    let hdr = b.new_block();
    let after_hdr = b.new_block();
    b.cond_br(is_main, hdr, after_hdr);
    b.switch_to(hdr);
    let bdim = b.block_dim();
    let p = field_ptr(&mut b, ctx.state, os::NTHREADS);
    b.store(Ty::I64, p, bdim);
    let p = field_ptr(&mut b, ctx.state, os::LEVELS);
    // SPMD kernels start inside the (implicit) parallel region.
    let is_spmd = b.icmp_eq(mode, Operand::i64(abi::MODE_SPMD));
    let lvl0 = b.select(Ty::I64, is_spmd, Operand::i64(1), Operand::i64(0));
    b.store(Ty::I64, p, lvl0);
    let p = field_ptr(&mut b, ctx.state, os::PARALLEL_FN);
    b.store(Ty::Ptr, p, Operand::NULL);
    if let Some(top) = ctx.ds_top {
        b.store(Ty::I64, Operand::Global(top), Operand::i64(0));
    }
    b.br(after_hdr);
    b.switch_to(after_hdr);
    b.barrier(); // publish (divergence-tolerant barrier, never aligned)

    let spmd_done = b.new_block();
    let generic_bb = b.new_block();
    let is_spmd2 = b.icmp_eq(mode, Operand::i64(abi::MODE_SPMD));
    b.cond_br(is_spmd2, spmd_done, generic_bb);
    b.switch_to(spmd_done);
    b.ret(Some(Operand::i64(0)));

    b.switch_to(generic_bb);
    let main_bb = b.new_block();
    let worker_bb = b.new_block();
    let is_main2 = b.icmp_eq(tid, Operand::i64(0));
    b.cond_br(is_main2, main_bb, worker_bb);
    b.switch_to(main_bb);
    b.ret(Some(Operand::i64(0)));
    b.switch_to(worker_bb);
    b.call(callee(m, abi::OLD_WORKER_LOOP), vec![], None);
    b.ret(Some(Operand::i64(1)));
    b.finish()
}

fn build_deinit(ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::OLD_TARGET_DEINIT, vec![Ty::I64], None);
    let mode = b.param(0);
    let generic_bb = b.new_block();
    let done = b.new_block();
    let is_spmd = b.icmp_eq(mode, Operand::i64(abi::MODE_SPMD));
    b.cond_br(is_spmd, done, generic_bb);
    b.switch_to(generic_bb);
    let p = field_ptr(&mut b, ctx.state, os::PARALLEL_FN);
    b.store(Ty::Ptr, p, Operand::NULL);
    b.barrier();
    b.br(done);
    b.switch_to(done);
    b.ret(None);
    b.finish()
}

fn build_worker_loop(ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::OLD_WORKER_LOOP, vec![], None);
    let head = b.new_block();
    let work = b.new_block();
    let exit = b.new_block();
    b.br(head);
    b.switch_to(head);
    b.barrier();
    let p_fn = field_ptr(&mut b, ctx.state, os::PARALLEL_FN);
    let f = b.load(Ty::Ptr, p_fn);
    let live = b.cmp(Pred::Ne, Ty::Ptr, f, Operand::NULL);
    b.cond_br(live, work, exit);
    b.switch_to(work);
    // Bookkeeping the old runtime did per parallel region: mark the
    // descriptor active, run, mark inactive.
    let tid = b.thread_id();
    let desc = descriptor_ptr(&mut b, ctx, tid);
    let flag = b.ptr_add(desc, Operand::i64(8));
    b.store(Ty::I8, flag, Operand::ConstI(1, Ty::I8));
    let p_args = field_ptr(&mut b, ctx.state, os::PARALLEL_ARGS);
    let args = b.load(Ty::Ptr, p_args);
    b.call(f, vec![args], None);
    let flag2 = b.ptr_add(desc, Operand::i64(8));
    b.store(Ty::I8, flag2, Operand::ConstI(0, Ty::I8));
    b.barrier();
    b.br(head);
    b.switch_to(exit);
    b.ret(None);
    b.finish()
}

fn build_prepare_parallel(ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::OLD_PARALLEL_PREPARE, vec![Ty::Ptr, Ty::Ptr], None);
    let f = b.param(0);
    let args = b.param(1);
    let p = field_ptr(&mut b, ctx.state, os::PARALLEL_ARGS);
    b.store(Ty::Ptr, p, args);
    let p = field_ptr(&mut b, ctx.state, os::PARALLEL_FN);
    b.store(Ty::Ptr, p, f);
    let p = field_ptr(&mut b, ctx.state, os::LEVELS);
    b.store(Ty::I64, p, Operand::i64(1));
    b.ret(None);
    b.finish()
}

fn build_end_parallel(ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::OLD_PARALLEL_END, vec![], None);
    let p = field_ptr(&mut b, ctx.state, os::LEVELS);
    b.store(Ty::I64, p, Operand::i64(0));
    let p = field_ptr(&mut b, ctx.state, os::PARALLEL_FN);
    b.store(Ty::Ptr, p, Operand::NULL);
    b.ret(None);
    b.finish()
}

/// `omp_get_thread_num`: a shared-memory load of the task descriptor on
/// every call — the overhead the co-designed runtime folds to a register.
fn build_get_thread_num(ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::OMP_GET_THREAD_NUM, vec![], Some(Ty::I64));
    let tid = b.thread_id();
    let desc = descriptor_ptr(&mut b, ctx, tid);
    let v = b.load(Ty::I64, desc);
    b.ret(Some(v));
    b.finish()
}

fn build_get_num_threads(ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::OMP_GET_NUM_THREADS, vec![], Some(Ty::I64));
    let p_lvl = field_ptr(&mut b, ctx.state, os::LEVELS);
    let lvl = b.load(Ty::I64, p_lvl);
    let in_par = b.icmp_eq(lvl, Operand::i64(1));
    let p = field_ptr(&mut b, ctx.state, os::NTHREADS);
    let nth = b.load(Ty::I64, p);
    let r = b.select(Ty::I64, in_par, nth, Operand::i64(1));
    b.ret(Some(r));
    b.finish()
}

fn build_get_level(ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::OMP_GET_LEVEL, vec![], Some(Ty::I64));
    let p = field_ptr(&mut b, ctx.state, os::LEVELS);
    let v = b.load(Ty::I64, p);
    b.ret(Some(v));
    b.finish()
}

fn build_get_team_num() -> Function {
    let mut b = FuncBuilder::new(abi::OMP_GET_TEAM_NUM, vec![], Some(Ty::I64));
    let v = b.block_id();
    b.ret(Some(v));
    b.finish()
}

fn build_get_num_teams() -> Function {
    let mut b = FuncBuilder::new(abi::OMP_GET_NUM_TEAMS, vec![], Some(Ty::I64));
    let v = b.grid_dim();
    b.ret(Some(v));
    b.finish()
}

/// `for_static_init`: static (blocked) schedule with bounds written through
/// memory — the host-runtime-compatible API the paper's combined scheme
/// deliberately breaks with (§III-F).
fn build_for_static_init(m: &Module, ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(
        abi::OLD_FOR_STATIC_INIT,
        vec![Ty::Ptr, Ty::Ptr, Ty::Ptr, Ty::I64],
        None,
    );
    let lb = b.param(0);
    let ub = b.param(1);
    let st = b.param(2);
    let niters = b.param(3);
    let tn = call_val(&mut b, callee(m, abi::OMP_GET_THREAD_NUM), vec![], Ty::I64);
    let p = field_ptr(&mut b, ctx.state, os::NTHREADS);
    let nth = b.load(Ty::I64, p);
    let nth_m1 = b.add(nth, Operand::i64(-1));
    let num = b.add(niters, nth_m1);
    let chunk = b.sdiv(num, nth);
    let lo = b.mul(tn, chunk);
    let hi0 = b.add(lo, chunk);
    let hi = imin(&mut b, hi0, niters);
    b.store(Ty::I64, lb, lo);
    b.store(Ty::I64, ub, hi);
    b.store(Ty::I64, st, Operand::i64(1));
    b.ret(None);
    b.finish()
}

fn build_for_static_fini() -> Function {
    let mut b = FuncBuilder::new(abi::OLD_FOR_STATIC_FINI, vec![], None);
    b.barrier();
    b.ret(None);
    b.finish()
}

fn build_distribute_init(ctx: &Ctx) -> Function {
    let _ = ctx;
    let mut b = FuncBuilder::new(
        abi::OLD_DISTRIBUTE_INIT,
        vec![Ty::Ptr, Ty::Ptr, Ty::Ptr, Ty::I64],
        None,
    );
    let lb = b.param(0);
    let ub = b.param(1);
    let st = b.param(2);
    let niters = b.param(3);
    let bid = b.block_id();
    let nteams = b.grid_dim();
    let nt_m1 = b.add(nteams, Operand::i64(-1));
    let num = b.add(niters, nt_m1);
    let chunk = b.sdiv(num, nteams);
    let lo = b.mul(bid, chunk);
    let hi0 = b.add(lo, chunk);
    let hi = imin(&mut b, hi0, niters);
    b.store(Ty::I64, lb, lo);
    b.store(Ty::I64, ub, hi);
    b.store(Ty::I64, st, Operand::i64(1));
    b.ret(None);
    b.finish()
}

fn build_barrier() -> Function {
    let mut b = FuncBuilder::new(abi::OLD_BARRIER, vec![], None);
    b.barrier();
    b.ret(None);
    b.finish()
}

/// Globalization support: bump-allocate from the shared data-sharing stack,
/// falling back to device malloc (or going straight to malloc when the
/// kernel reserved no stack).
fn build_ds_push(ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::OLD_DATA_SHARING_PUSH, vec![Ty::I64], Some(Ty::Ptr));
    b.attrs_mut().no_inline = true;
    let size = b.param(0);
    let sz = align8(&mut b, size);
    match (ctx.ds_stack, ctx.ds_top) {
        (Some(stack), Some(top)) => {
            let old = b.atomic_add(Ty::I64, Operand::Global(top), sz);
            let end = b.add(old, sz);
            let fits = b.cmp(
                Pred::Sle,
                Ty::I64,
                end,
                Operand::i64(abi::OLD_DS_STACK_SIZE as i64),
            );
            let hit = b.new_block();
            let miss = b.new_block();
            b.cond_br(fits, hit, miss);
            b.switch_to(hit);
            let p = b.ptr_add(Operand::Global(stack), old);
            b.ret(Some(p));
            b.switch_to(miss);
            let neg = b.sub(Operand::i64(0), sz);
            b.atomic_add(Ty::I64, Operand::Global(top), neg);
            let hp = b.malloc(sz);
            b.ret(Some(hp));
        }
        _ => {
            let hp = b.malloc(sz);
            b.ret(Some(hp));
        }
    }
    b.finish()
}

fn build_ds_pop(ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::OLD_DATA_SHARING_POP, vec![Ty::Ptr, Ty::I64], None);
    b.attrs_mut().no_inline = true;
    let ptr = b.param(0);
    let size = b.param(1);
    let sz = align8(&mut b, size);
    match (ctx.ds_stack, ctx.ds_top) {
        (Some(stack), Some(top)) => {
            let p_int = b.cast(nzomp_ir::CastKind::PtrCast, Ty::I64, ptr);
            let base_int = b.cast(
                nzomp_ir::CastKind::PtrCast,
                Ty::I64,
                Operand::Global(stack),
            );
            let end_int = b.add(base_int, Operand::i64(abi::OLD_DS_STACK_SIZE as i64));
            let ge = b.cmp(Pred::Uge, Ty::I64, p_int, base_int);
            let lt = b.cmp(Pred::Ult, Ty::I64, p_int, end_int);
            let both = b.and(ge, lt);
            let in_stack = b.icmp_ne(both, Operand::i64(0));
            let pop = b.new_block();
            let heap = b.new_block();
            let done = b.new_block();
            b.cond_br(in_stack, pop, heap);
            b.switch_to(pop);
            let neg = b.sub(Operand::i64(0), sz);
            b.atomic_add(Ty::I64, Operand::Global(top), neg);
            b.br(done);
            b.switch_to(heap);
            b.free(ptr);
            b.br(done);
            b.switch_to(done);
            b.ret(None);
        }
        _ => {
            b.free(ptr);
            b.ret(None);
        }
    }
    b.finish()
}
