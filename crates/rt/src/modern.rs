//! The co-designed OpenMP GPU device runtime (paper §III), built from
//! scratch as an IR library.
//!
//! Design points reproduced one-for-one:
//!
//! * **SPMD-mode flag** in static shared memory, set once during
//!   initialization by the main thread and never changed; the mode is also
//!   passed *by value* so optimized builds never read it (§III-A).
//! * **Team ICV state** in static shared memory, initialized by the main
//!   thread with conditional-pointer writes (Fig. 7b) followed by an aligned
//!   barrier and `assume`s of the written values (Fig. 8b) so the compiler
//!   can fold later reads (§III-B, §IV-B3).
//! * **Thread states**: a pointer array in shared memory, NULLed by each
//!   thread at init; individual thread ICV states are only allocated when a
//!   nested data environment is entered, from the shared-memory stack
//!   (§III-C).
//! * **Shared-memory stack** with device-`malloc` fallback (§III-D).
//! * **Combined worksharing loops** following the `noChunkImpl` pseudocode
//!   of Fig. 5, with the oversubscription flags lowered to constant globals
//!   that break the loops at compile time (§III-F).
//! * **Zero-overhead debugging**: a constant `debug_kind` global guards
//!   assertion and tracing paths; in release builds they fold away and
//!   assertions become assumptions (§III-G).

use nzomp_ir::{
    ExecMode, FuncBuilder, Function, Global, GlobalId, Init, Module, Operand, Pred, Space, Ty,
};

use crate::abi::{self, team_state as ts, thread_state as th, RtConfig};
use crate::helpers::{align8, array_slot_ptr, assume_field_eq, call_val, cond_write, field_ptr};

/// Global ids of the runtime state, needed while building function bodies.
struct Ctx {
    is_spmd: GlobalId,
    team_state: GlobalId,
    thread_states: GlobalId,
    stack: GlobalId,
    stack_top: GlobalId,
    dummy: GlobalId,
    debug_kind: GlobalId,
    teams_oversub: GlobalId,
    threads_oversub: GlobalId,
    trace_count: GlobalId,
}

/// Build the modern runtime module for the given compile-time configuration.
pub fn build(cfg: &RtConfig) -> Module {
    let mut m = Module::new("nzomp-rt-modern");

    let ctx = Ctx {
        is_spmd: m.add_global(Global::new(abi::G_IS_SPMD, Space::Shared, 8, Init::Zero)),
        team_state: m.add_global(Global::new(
            abi::G_TEAM_STATE,
            Space::Shared,
            ts::SIZE,
            Init::Zero,
        )),
        thread_states: m.add_global(Global::new(
            abi::G_THREAD_STATES,
            Space::Shared,
            8 * abi::MAX_THREADS,
            Init::Zero,
        )),
        stack: m.add_global(Global::new(
            abi::G_SMEM_STACK,
            Space::Shared,
            abi::SMEM_STACK_SIZE,
            Init::Zero,
        )),
        stack_top: m.add_global(Global::new(
            abi::G_SMEM_STACK_TOP,
            Space::Shared,
            8,
            Init::Zero,
        )),
        dummy: m.add_global(Global::new(
            abi::G_COND_WRITE_DUMMY,
            Space::Shared,
            8,
            Init::Zero,
        )),
        // The compile-time configuration globals (§III-F/G): constant space,
        // value baked in by the "compiler driver".
        debug_kind: m.add_global(Global::constant(
            abi::G_DEBUG_KIND,
            Space::Constant,
            8,
            Init::I64(cfg.debug_kind),
        )),
        teams_oversub: m.add_global(Global::constant(
            abi::G_ASSUME_TEAMS_OVERSUB,
            Space::Constant,
            8,
            Init::I64(cfg.assume_teams_oversubscription as i64),
        )),
        threads_oversub: m.add_global(Global::constant(
            abi::G_ASSUME_THREADS_OVERSUB,
            Space::Constant,
            8,
            Init::I64(cfg.assume_threads_oversubscription as i64),
        )),
        trace_count: m.add_global(Global::new(
            abi::G_TRACE_COUNT,
            Space::Global,
            8,
            Init::Zero,
        )),
    };

    // Declare everything first so bodies can reference each other.
    let decls: Vec<(&str, Vec<Ty>, Option<Ty>)> = vec![
        (abi::NZOMP_TRACE, vec![], None),
        (abi::NZOMP_ASSERT, vec![Ty::I1], None),
        (abi::SYNCTHREADS_ALIGNED, vec![], None),
        (abi::KMPC_BARRIER, vec![], None),
        (abi::TARGET_INIT, vec![Ty::I64], Some(Ty::I64)),
        (abi::TARGET_DEINIT, vec![Ty::I64], None),
        (abi::OMP_GET_THREAD_NUM, vec![], Some(Ty::I64)),
        (abi::OMP_GET_NUM_THREADS, vec![], Some(Ty::I64)),
        (abi::OMP_GET_LEVEL, vec![], Some(Ty::I64)),
        (abi::OMP_GET_TEAM_NUM, vec![], Some(Ty::I64)),
        (abi::OMP_GET_NUM_TEAMS, vec![], Some(Ty::I64)),
        (abi::ALLOC_SHARED, vec![Ty::I64], Some(Ty::Ptr)),
        (abi::FREE_SHARED, vec![Ty::Ptr, Ty::I64], None),
        (abi::PARALLEL_51, vec![Ty::Ptr, Ty::Ptr], None),
        ("__kmpc_parallel_spmd", vec![Ty::Ptr, Ty::Ptr], None),
        (abi::WORKER_LOOP, vec![], None),
        (
            abi::DIST_PAR_FOR_LOOP,
            vec![Ty::Ptr, Ty::Ptr, Ty::I64],
            None,
        ),
        (
            abi::FOR_STATIC_LOOP,
            vec![Ty::Ptr, Ty::Ptr, Ty::I64, Ty::I64],
            None,
        ),
        (
            abi::DISTRIBUTE_STATIC_LOOP,
            vec![Ty::Ptr, Ty::Ptr, Ty::I64],
            None,
        ),
    ];
    for (name, params, ret) in &decls {
        m.add_function(Function::declaration(*name, params.clone(), *ret));
    }

    install(&mut m, build_trace(&ctx));
    let f = build_assert(&m, &ctx); install(&mut m, f);
    install(&mut m, build_syncthreads_aligned());
    let f = build_kmpc_barrier(&m, &ctx); install(&mut m, f);
    let f = build_target_init(&m, &ctx); install(&mut m, f);
    let f = build_target_deinit(&m, &ctx); install(&mut m, f);
    let f = build_get_thread_num(&m, &ctx); install(&mut m, f);
    let f = build_get_num_threads(&m, &ctx); install(&mut m, f);
    let f = build_get_level(&m, &ctx); install(&mut m, f);
    let f = build_get_team_num(&m); install(&mut m, f);
    let f = build_get_num_teams(&m); install(&mut m, f);
    let f = build_alloc_shared(&m, &ctx); install(&mut m, f);
    let f = build_free_shared(&m, &ctx); install(&mut m, f);
    let f = build_parallel_51(&m, &ctx); install(&mut m, f);
    let f = build_parallel_spmd(&m); install(&mut m, f);
    let f = build_worker_loop(&m, &ctx); install(&mut m, f);
    let f = build_dist_par_for(&m, &ctx); install(&mut m, f);
    let f = build_for_static_loop(&m, &ctx); install(&mut m, f);
    let f = build_distribute_static_loop(&m, &ctx); install(&mut m, f);

    if let Err(e) = nzomp_ir::verify_module(&m) {
        unreachable!("modern runtime verifies: {e}");
    }
    m
}

/// Replace the declaration of `f.name` with the definition `f`.
fn install(m: &mut Module, f: Function) {
    let slot = m
        .find_func(&f.name)
        .unwrap_or_else(|| panic!("@{} not declared", f.name));
    assert_eq!(m.func(slot).params, f.params, "@{} signature", f.name);
    assert_eq!(m.func(slot).ret, f.ret, "@{} return", f.name);
    m.funcs[slot.index()] = f;
}

fn callee(m: &Module, name: &str) -> Operand {
    Operand::Func(m.find_func(name).unwrap_or_else(|| panic!("@{name}")))
}

// ---------------------------------------------------------------------------
// Debug machinery (§III-G)
// ---------------------------------------------------------------------------

/// `__nzomp_trace`: in builds with function tracing enabled, count runtime
/// entries in a global counter; otherwise trivially dead.
fn build_trace(ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::NZOMP_TRACE, vec![], None);
    b.attrs_mut().always_inline = true;
    let dk = b.load(Ty::I64, Operand::Global(ctx.debug_kind));
    let bit = b.and(dk, Operand::i64(abi::DEBUG_FUNCTION_TRACING));
    let on = b.icmp_ne(bit, Operand::i64(0));
    let trace_bb = b.new_block();
    let done = b.new_block();
    b.cond_br(on, trace_bb, done);
    b.switch_to(trace_bb);
    b.atomic_add(Ty::I64, Operand::Global(ctx.trace_count), Operand::i64(1));
    b.br(done);
    b.switch_to(done);
    b.ret(None);
    b.finish()
}

/// `__nzomp_assert(cond)`: with assertions enabled, verify and abort on
/// failure; in release the condition becomes a compiler assumption
/// ("if not, thus in release mode, the condition will automatically become
/// an assumption", §III-G).
fn build_assert(m: &Module, ctx: &Ctx) -> Function {
    let _ = m;
    let mut b = FuncBuilder::new(abi::NZOMP_ASSERT, vec![Ty::I1], None);
    b.attrs_mut().always_inline = true;
    let cond = b.param(0);
    let dk = b.load(Ty::I64, Operand::Global(ctx.debug_kind));
    let bit = b.and(dk, Operand::i64(abi::DEBUG_ASSERTIONS));
    let on = b.icmp_ne(bit, Operand::i64(0));
    let check = b.new_block();
    let relax = b.new_block();
    let fail = b.new_block();
    let done = b.new_block();
    b.cond_br(on, check, relax);
    b.switch_to(check);
    b.cond_br(cond, done, fail);
    b.switch_to(fail);
    b.assert_fail();
    b.unreachable();
    b.switch_to(relax);
    b.assume(cond);
    b.br(done);
    b.switch_to(done);
    b.ret(None);
    b.finish()
}

/// The aligned barrier of Fig. 6: annotated `ext_aligned_barrier` and
/// `ext_no_call_asm`.
fn build_syncthreads_aligned() -> Function {
    let mut b = FuncBuilder::new(abi::SYNCTHREADS_ALIGNED, vec![], None);
    b.attrs_mut().aligned_barrier = true;
    b.attrs_mut().no_call_asm = true;
    // The body is inline assembly in the real runtime (Fig. 6): the
    // compiler cannot look inside; the `ext_aligned_barrier` /
    // `ext_no_call_asm` assumptions are all it has (§IV-C).
    b.attrs_mut().no_inline = true;
    b.aligned_barrier();
    b.ret(None);
    b.finish()
}

/// `__kmpc_barrier`: mode-dependent — aligned in SPMD mode (all threads
/// reach it), divergence-tolerant otherwise. Once the SPMD flag folds, the
/// aligned form remains and becomes eligible for elimination (§IV-D).
fn build_kmpc_barrier(m: &Module, ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::KMPC_BARRIER, vec![], None);
    b.attrs_mut().always_inline = true;
    let spmd = b.load(Ty::I64, Operand::Global(ctx.is_spmd));
    let is_spmd = b.icmp_ne(spmd, Operand::i64(0));
    let al = b.new_block();
    let un = b.new_block();
    let done = b.new_block();
    b.cond_br(is_spmd, al, un);
    b.switch_to(al);
    b.call(callee(m, abi::SYNCTHREADS_ALIGNED), vec![], None);
    b.br(done);
    b.switch_to(un);
    b.barrier();
    b.br(done);
    b.switch_to(done);
    b.ret(None);
    b.finish()
}

// ---------------------------------------------------------------------------
// Kernel init / deinit (§III-A, §III-B, §III-C)
// ---------------------------------------------------------------------------

/// `__kmpc_target_init(mode) -> i64`.
///
/// SPMD mode: all threads call it; the main thread broadcasts the SPMD flag
/// and team ICV state through conditional-pointer writes, an aligned barrier
/// publishes them, and assumes pin the values for the optimizer. Returns 0.
///
/// Generic mode: thread 0 becomes the main thread (returns 0) after
/// initializing state; all other threads enter the worker state machine and
/// return 1 when the kernel is done (the caller then jumps to the exit).
fn build_target_init(m: &Module, ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::TARGET_INIT, vec![Ty::I64], Some(Ty::I64));
    let mode = b.param(0);
    b.call(callee(m, abi::NZOMP_TRACE), vec![], None);
    let tid = b.thread_id();
    let is_main = b.icmp_eq(tid, Operand::i64(0));

    let spmd_bb = b.new_block();
    let generic_bb = b.new_block();
    let is_spmd_mode = b.icmp_eq(mode, Operand::i64(abi::MODE_SPMD));
    b.cond_br(is_spmd_mode, spmd_bb, generic_bb);

    // ---- SPMD path ------------------------------------------------------
    b.switch_to(spmd_bb);
    let bdim = b.block_dim();
    cond_write(&mut b, ctx.dummy, Operand::Global(ctx.is_spmd), mode, Ty::I64, is_main);
    let p_nth = field_ptr(&mut b, ctx.team_state, ts::NTHREADS);
    cond_write(&mut b, ctx.dummy, p_nth, bdim, Ty::I64, is_main);
    let p_lvl = field_ptr(&mut b, ctx.team_state, ts::LEVELS);
    cond_write(&mut b, ctx.dummy, p_lvl, Operand::i64(1), Ty::I64, is_main);
    let p_act = field_ptr(&mut b, ctx.team_state, ts::ACTIVE_LEVELS);
    cond_write(&mut b, ctx.dummy, p_act, Operand::i64(1), Ty::I64, is_main);
    let p_hts = field_ptr(&mut b, ctx.team_state, ts::HAS_THREAD_STATE);
    cond_write(&mut b, ctx.dummy, p_hts, Operand::i64(0), Ty::I64, is_main);
    cond_write(
        &mut b,
        ctx.dummy,
        Operand::Global(ctx.stack_top),
        Operand::i64(0),
        Ty::I64,
        is_main,
    );
    // Each thread clears its own thread-state pointer (§III-C).
    let slot = array_slot_ptr(&mut b, ctx.thread_states, 0, tid, 8);
    b.store(Ty::Ptr, slot, Operand::NULL);
    b.call(callee(m, abi::SYNCTHREADS_ALIGNED), vec![], None);
    // Fig. 8b: post-broadcast assumptions.
    assume_field_eq(&mut b, Operand::Global(ctx.is_spmd), Ty::I64, mode);
    let p_lvl2 = field_ptr(&mut b, ctx.team_state, ts::LEVELS);
    assume_field_eq(&mut b, p_lvl2, Ty::I64, Operand::i64(1));
    let p_nth2 = field_ptr(&mut b, ctx.team_state, ts::NTHREADS);
    let bdim2 = b.block_dim();
    assume_field_eq(&mut b, p_nth2, Ty::I64, bdim2);
    let p_hts2 = field_ptr(&mut b, ctx.team_state, ts::HAS_THREAD_STATE);
    assume_field_eq(&mut b, p_hts2, Ty::I64, Operand::i64(0));
    b.ret(Some(Operand::i64(0)));

    // ---- generic path ----------------------------------------------------
    b.switch_to(generic_bb);
    let main_bb = b.new_block();
    let worker_bb = b.new_block();
    b.cond_br(is_main, main_bb, worker_bb);

    b.switch_to(main_bb);
    // Only the main thread runs here; plain stores suffice (workers are
    // parked at the state-machine barrier before they read any state).
    b.store(Ty::I64, Operand::Global(ctx.is_spmd), Operand::i64(0));
    let bdim3 = b.block_dim();
    let p = field_ptr(&mut b, ctx.team_state, ts::NTHREADS);
    b.store(Ty::I64, p, bdim3);
    let p = field_ptr(&mut b, ctx.team_state, ts::LEVELS);
    b.store(Ty::I64, p, Operand::i64(0));
    let p = field_ptr(&mut b, ctx.team_state, ts::ACTIVE_LEVELS);
    b.store(Ty::I64, p, Operand::i64(0));
    let p = field_ptr(&mut b, ctx.team_state, ts::PARALLEL_FN);
    b.store(Ty::Ptr, p, Operand::NULL);
    let p = field_ptr(&mut b, ctx.team_state, ts::PARALLEL_ARGS);
    b.store(Ty::Ptr, p, Operand::NULL);
    let p = field_ptr(&mut b, ctx.team_state, ts::HAS_THREAD_STATE);
    b.store(Ty::I64, p, Operand::i64(0));
    b.store(Ty::I64, Operand::Global(ctx.stack_top), Operand::i64(0));
    let slot = array_slot_ptr(&mut b, ctx.thread_states, 0, tid, 8);
    b.store(Ty::Ptr, slot, Operand::NULL);
    b.ret(Some(Operand::i64(0)));

    b.switch_to(worker_bb);
    let slot = array_slot_ptr(&mut b, ctx.thread_states, 0, tid, 8);
    b.store(Ty::Ptr, slot, Operand::NULL);
    b.call(callee(m, abi::WORKER_LOOP), vec![], None);
    b.ret(Some(Operand::i64(1)));

    b.finish()
}

/// `__kmpc_target_deinit(mode)`: in generic mode the main thread signals
/// worker termination (NULL work function + barrier); SPMD mode needs
/// nothing, so optimized SPMD kernels lose the whole call.
fn build_target_deinit(m: &Module, ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::TARGET_DEINIT, vec![Ty::I64], None);
    let mode = b.param(0);
    b.call(callee(m, abi::NZOMP_TRACE), vec![], None);
    let generic_bb = b.new_block();
    let done = b.new_block();
    let is_spmd_mode = b.icmp_eq(mode, Operand::i64(abi::MODE_SPMD));
    b.cond_br(is_spmd_mode, done, generic_bb);
    b.switch_to(generic_bb);
    let p = field_ptr(&mut b, ctx.team_state, ts::PARALLEL_FN);
    b.store(Ty::Ptr, p, Operand::NULL);
    b.barrier(); // wake workers so they observe the termination signal
    b.br(done);
    b.switch_to(done);
    b.ret(None);
    b.finish()
}

// ---------------------------------------------------------------------------
// ICV queries
// ---------------------------------------------------------------------------

/// Load this thread's thread-state pointer (NULL when it only uses the team
/// state — the common case the optimizer folds to NULL, §IV-B1).
fn load_thread_state(b: &mut FuncBuilder, ctx: &Ctx, tid: Operand) -> Operand {
    let slot = array_slot_ptr(b, ctx.thread_states, 0, tid, 8);
    b.load(Ty::Ptr, slot)
}

fn build_get_thread_num(m: &Module, ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::OMP_GET_THREAD_NUM, vec![], Some(Ty::I64));
    b.call(callee(m, abi::NZOMP_TRACE), vec![], None);
    let tid = b.thread_id();
    let tstate = load_thread_state(&mut b, ctx, tid);
    let has = b.cmp(Pred::Ne, Ty::Ptr, tstate, Operand::NULL);
    let from_ts = b.new_block();
    let from_team = b.new_block();
    b.cond_br(has, from_ts, from_team);
    b.switch_to(from_ts);
    let p = b.ptr_add(tstate, Operand::i64(th::THREAD_NUM as i64));
    let v = b.load(Ty::I64, p);
    b.ret(Some(v));
    b.switch_to(from_team);
    // No individual state: the thread num is the hardware thread id at
    // level <= 1, and 0 in (serialized) deeper regions.
    let p_lvl = field_ptr(&mut b, ctx.team_state, ts::LEVELS);
    let lvl = b.load(Ty::I64, p_lvl);
    let deep = b.cmp(Pred::Sgt, Ty::I64, lvl, Operand::i64(1));
    let r = b.select(Ty::I64, deep, Operand::i64(0), tid);
    b.ret(Some(r));
    b.finish()
}

fn build_get_num_threads(m: &Module, ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::OMP_GET_NUM_THREADS, vec![], Some(Ty::I64));
    b.call(callee(m, abi::NZOMP_TRACE), vec![], None);
    let tid = b.thread_id();
    let tstate = load_thread_state(&mut b, ctx, tid);
    let has = b.cmp(Pred::Ne, Ty::Ptr, tstate, Operand::NULL);
    let from_ts = b.new_block();
    let from_team = b.new_block();
    b.cond_br(has, from_ts, from_team);
    b.switch_to(from_ts);
    let p = b.ptr_add(tstate, Operand::i64(th::NTHREADS as i64));
    let v = b.load(Ty::I64, p);
    b.ret(Some(v));
    b.switch_to(from_team);
    let p_lvl = field_ptr(&mut b, ctx.team_state, ts::LEVELS);
    let lvl = b.load(Ty::I64, p_lvl);
    let in_parallel = b.icmp_eq(lvl, Operand::i64(1));
    let p_nth = field_ptr(&mut b, ctx.team_state, ts::NTHREADS);
    let nth = b.load(Ty::I64, p_nth);
    let r = b.select(Ty::I64, in_parallel, nth, Operand::i64(1));
    b.ret(Some(r));
    b.finish()
}

fn build_get_level(m: &Module, ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::OMP_GET_LEVEL, vec![], Some(Ty::I64));
    b.call(callee(m, abi::NZOMP_TRACE), vec![], None);
    let tid = b.thread_id();
    let tstate = load_thread_state(&mut b, ctx, tid);
    let has = b.cmp(Pred::Ne, Ty::Ptr, tstate, Operand::NULL);
    let from_ts = b.new_block();
    let from_team = b.new_block();
    b.cond_br(has, from_ts, from_team);
    b.switch_to(from_ts);
    let p = b.ptr_add(tstate, Operand::i64(th::LEVELS as i64));
    let v = b.load(Ty::I64, p);
    b.ret(Some(v));
    b.switch_to(from_team);
    let p_lvl = field_ptr(&mut b, ctx.team_state, ts::LEVELS);
    let lvl = b.load(Ty::I64, p_lvl);
    b.ret(Some(lvl));
    b.finish()
}

fn build_get_team_num(m: &Module) -> Function {
    let _ = m;
    let mut b = FuncBuilder::new(abi::OMP_GET_TEAM_NUM, vec![], Some(Ty::I64));
    b.attrs_mut().always_inline = true;
    b.attrs_mut().read_none = true;
    let v = b.block_id();
    b.ret(Some(v));
    b.finish()
}

fn build_get_num_teams(m: &Module) -> Function {
    let _ = m;
    let mut b = FuncBuilder::new(abi::OMP_GET_NUM_TEAMS, vec![], Some(Ty::I64));
    b.attrs_mut().always_inline = true;
    b.attrs_mut().read_none = true;
    let v = b.grid_dim();
    b.ret(Some(v));
    b.finish()
}

// ---------------------------------------------------------------------------
// Shared-memory stack (§III-D)
// ---------------------------------------------------------------------------

fn build_alloc_shared(m: &Module, ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::ALLOC_SHARED, vec![Ty::I64], Some(Ty::Ptr));
    // Kept outlined so globalization elimination (§IV-A2) can recognize and
    // demote the allocation; LLVM likewise treats __kmpc_alloc_shared as a
    // known runtime call rather than inlining it away.
    b.attrs_mut().no_inline = true;
    b.call(callee(m, abi::NZOMP_TRACE), vec![], None);
    let size = b.param(0);
    let sz = align8(&mut b, size);
    let old = b.atomic_add(Ty::I64, Operand::Global(ctx.stack_top), sz);
    let end = b.add(old, sz);
    let fits = b.cmp(
        Pred::Sle,
        Ty::I64,
        end,
        Operand::i64(abi::SMEM_STACK_SIZE as i64),
    );
    let hit = b.new_block();
    let miss = b.new_block();
    b.cond_br(fits, hit, miss);
    b.switch_to(hit);
    let p = b.ptr_add(Operand::Global(ctx.stack), old);
    b.ret(Some(p));
    // Stack full: undo the reservation and fall back to global memory.
    b.switch_to(miss);
    let neg = b.sub(Operand::i64(0), sz);
    b.atomic_add(Ty::I64, Operand::Global(ctx.stack_top), neg);
    let hp = b.malloc(sz);
    b.ret(Some(hp));
    b.finish()
}

fn build_free_shared(m: &Module, ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::FREE_SHARED, vec![Ty::Ptr, Ty::I64], None);
    b.attrs_mut().no_inline = true;
    b.call(callee(m, abi::NZOMP_TRACE), vec![], None);
    let ptr = b.param(0);
    let size = b.param(1);
    let sz = align8(&mut b, size);
    let p_int = b.cast(nzomp_ir::CastKind::PtrCast, Ty::I64, ptr);
    let base_int = b.cast(
        nzomp_ir::CastKind::PtrCast,
        Ty::I64,
        Operand::Global(ctx.stack),
    );
    let end_int = b.add(base_int, Operand::i64(abi::SMEM_STACK_SIZE as i64));
    let ge = b.cmp(Pred::Uge, Ty::I64, p_int, base_int);
    let lt = b.cmp(Pred::Ult, Ty::I64, p_int, end_int);
    let in_stack = b.and(ge, lt);
    let in_stack = b.icmp_ne(in_stack, Operand::i64(0));
    let pop = b.new_block();
    let heap = b.new_block();
    let done = b.new_block();
    b.cond_br(in_stack, pop, heap);
    b.switch_to(pop);
    let neg = b.sub(Operand::i64(0), sz);
    b.atomic_add(Ty::I64, Operand::Global(ctx.stack_top), neg);
    b.br(done);
    b.switch_to(heap);
    b.free(ptr);
    b.br(done);
    b.switch_to(done);
    b.ret(None);
    b.finish()
}

// ---------------------------------------------------------------------------
// Parallel regions (§II-C state machine; §III-C nesting)
// ---------------------------------------------------------------------------

/// `__kmpc_parallel_51(fn, args)`.
///
/// * Called from the sequential (level-0) main thread of a generic-mode
///   kernel: broadcast the work function to the state machine, participate,
///   join.
/// * Called from inside an active parallel region: *serialized* nested
///   parallel — allocate an individual thread ICV state from the shared
///   stack (Fig. 3/4), run the body alone, pop the state. This is the case
///   the paper "strongly discourages" because it defeats state elimination.
fn build_parallel_51(m: &Module, ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(abi::PARALLEL_51, vec![Ty::Ptr, Ty::Ptr], None);
    let work_fn = b.param(0);
    let work_args = b.param(1);
    b.call(callee(m, abi::NZOMP_TRACE), vec![], None);
    let lvl = call_val(&mut b, callee(m, abi::OMP_GET_LEVEL), vec![], Ty::I64);
    let team_wide = b.icmp_eq(lvl, Operand::i64(0));
    let wide_bb = b.new_block();
    let nested_bb = b.new_block();
    b.cond_br(team_wide, wide_bb, nested_bb);

    // Team-wide: only the generic-mode main thread reaches this path.
    b.switch_to(wide_bb);
    let p_args = field_ptr(&mut b, ctx.team_state, ts::PARALLEL_ARGS);
    b.store(Ty::Ptr, p_args, work_args);
    let p_fn = field_ptr(&mut b, ctx.team_state, ts::PARALLEL_FN);
    b.store(Ty::Ptr, p_fn, work_fn);
    let p_lvl = field_ptr(&mut b, ctx.team_state, ts::LEVELS);
    b.store(Ty::I64, p_lvl, Operand::i64(1));
    b.barrier(); // release workers
    b.call(work_fn, vec![work_args], None); // main participates
    b.barrier(); // join workers
    let p_lvl = field_ptr(&mut b, ctx.team_state, ts::LEVELS);
    b.store(Ty::I64, p_lvl, Operand::i64(0));
    b.ret(None);

    // Nested: serialized with an individual thread ICV state.
    b.switch_to(nested_bb);
    let tid = b.thread_id();
    let tstate = call_val(
        &mut b,
        callee(m, abi::ALLOC_SHARED),
        vec![Operand::i64(th::SIZE as i64)],
        Ty::Ptr,
    );
    let slot = array_slot_ptr(&mut b, ctx.thread_states, 0, tid, 8);
    let prev = b.load(Ty::Ptr, slot);
    let p = b.ptr_add(tstate, Operand::i64(th::PREV as i64));
    b.store(Ty::Ptr, p, prev);
    let p = b.ptr_add(tstate, Operand::i64(th::THREAD_NUM as i64));
    b.store(Ty::I64, p, Operand::i64(0));
    let p = b.ptr_add(tstate, Operand::i64(th::NTHREADS as i64));
    b.store(Ty::I64, p, Operand::i64(1));
    let lvl1 = b.add(lvl, Operand::i64(1));
    let p = b.ptr_add(tstate, Operand::i64(th::LEVELS as i64));
    b.store(Ty::I64, p, lvl1);
    b.store(Ty::Ptr, slot, tstate);
    let p_hts = field_ptr(&mut b, ctx.team_state, ts::HAS_THREAD_STATE);
    b.store(Ty::I64, p_hts, Operand::i64(1));
    b.call(work_fn, vec![work_args], None);
    b.store(Ty::Ptr, slot, prev);
    b.call(
        callee(m, abi::FREE_SHARED),
        vec![tstate, Operand::i64(th::SIZE as i64)],
        None,
    );
    b.ret(None);
    b.finish()
}

/// SPMD-mode parallel region: all threads are already active; a pair of
/// barriers separates the (guarded) sequential parts from the region — the
/// barriers the paper notes "cannot always be removed" (§VII) but often can
/// (§IV-D).
fn build_parallel_spmd(m: &Module) -> Function {
    let mut b = FuncBuilder::new("__kmpc_parallel_spmd", vec![Ty::Ptr, Ty::Ptr], None);
    let work_fn = b.param(0);
    let work_args = b.param(1);
    b.call(callee(m, abi::NZOMP_TRACE), vec![], None);
    b.call(callee(m, abi::SYNCTHREADS_ALIGNED), vec![], None);
    b.call(work_fn, vec![work_args], None);
    b.call(callee(m, abi::SYNCTHREADS_ALIGNED), vec![], None);
    b.ret(None);
    b.finish()
}

/// The generic-mode worker state machine (Bertolli et al., paper §II-C).
fn build_worker_loop(m: &Module, ctx: &Ctx) -> Function {
    let _ = m;
    let mut b = FuncBuilder::new(abi::WORKER_LOOP, vec![], None);
    let head = b.new_block();
    let work = b.new_block();
    let exit = b.new_block();
    b.br(head);
    b.switch_to(head);
    b.barrier(); // wait for work (or termination)
    let p_fn = field_ptr(&mut b, ctx.team_state, ts::PARALLEL_FN);
    let f = b.load(Ty::Ptr, p_fn);
    let live = b.cmp(Pred::Ne, Ty::Ptr, f, Operand::NULL);
    b.cond_br(live, work, exit);
    b.switch_to(work);
    let p_args = field_ptr(&mut b, ctx.team_state, ts::PARALLEL_ARGS);
    let args = b.load(Ty::Ptr, p_args);
    b.call(f, vec![args], None);
    b.barrier(); // join
    b.br(head);
    b.switch_to(exit);
    b.ret(None);
    b.finish()
}

// ---------------------------------------------------------------------------
// Worksharing loops (§III-F, Fig. 5)
// ---------------------------------------------------------------------------

/// Shared shape of the `noChunkImpl` pseudo-code (Fig. 5): cover the
/// iteration space from `start` with `stride`, breaking the loop when the
/// oversubscription flag (a compile-time constant global) says each
/// thread/team executes at most one iteration.
fn no_chunk_loop(
    b: &mut FuncBuilder,
    m: &Module,
    body: Operand,
    args: Operand,
    niters: Operand,
    start: Operand,
    stride: Operand,
    oversub_flag: GlobalId,
) {
    let entry = b.current_block();
    let loop_bb = b.new_block();
    let latch = b.new_block();
    let oversub_bb = b.new_block();
    let exit = b.new_block();

    let in_range = b.cmp(Pred::Slt, Ty::I64, start, niters);
    b.cond_br(in_range, loop_bb, exit);

    b.switch_to(loop_bb);
    let iv = b.phi(Ty::I64, vec![(entry, start)]);
    b.call(body, vec![iv, args], None);
    let next = b.add(iv, stride);
    // "User assumptions to avoid the loop" (Fig. 5).
    let flag = b.load(Ty::I64, Operand::Global(oversub_flag));
    let oversub = b.icmp_ne(flag, Operand::i64(0));
    b.cond_br(oversub, oversub_bb, latch);

    b.switch_to(oversub_bb);
    // The flag asserts every thread runs at most one iteration; verify in
    // debug builds, assume in release (§III-F: "after asserting that the
    // condition actually holds at runtime").
    let done = b.cmp(Pred::Sge, Ty::I64, next, niters);
    b.call(callee(m, abi::NZOMP_ASSERT), vec![done], None);
    b.br(exit);

    b.switch_to(latch);
    let more = b.cmp(Pred::Slt, Ty::I64, next, niters);
    b.cond_br(more, loop_bb, exit);
    b.phi_add_incoming(iv, latch, next);

    b.switch_to(exit);
}

/// Combined `distribute parallel for` (the common SPMD case): CUDA-style
/// grid-stride distribution `iv = bid*nthreads+tid; stride = total`.
fn build_dist_par_for(m: &Module, ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(
        abi::DIST_PAR_FOR_LOOP,
        vec![Ty::Ptr, Ty::Ptr, Ty::I64],
        None,
    );
    let body = b.param(0);
    let args = b.param(1);
    let niters = b.param(2);
    b.call(callee(m, abi::NZOMP_TRACE), vec![], None);
    // The iteration mapping consults the runtime's ICV layer; the
    // field-sensitive/assumed-content/invariant analyses (§IV-B) fold these
    // queries down to the hardware registers.
    let tid = call_val(&mut b, callee(m, abi::OMP_GET_THREAD_NUM), vec![], Ty::I64);
    let nth = call_val(&mut b, callee(m, abi::OMP_GET_NUM_THREADS), vec![], Ty::I64);
    let bid = call_val(&mut b, callee(m, abi::OMP_GET_TEAM_NUM), vec![], Ty::I64);
    let nbl = call_val(&mut b, callee(m, abi::OMP_GET_NUM_TEAMS), vec![], Ty::I64);
    let base = b.mul(bid, nth);
    let start = b.add(base, tid);
    let stride = b.mul(nbl, nth);
    no_chunk_loop(&mut b, m, body, args, niters, start, stride, ctx.threads_oversub);
    b.ret(None);
    b.finish()
}

/// `for` worksharing inside an active parallel region. Uses the ICV queries
/// (which the optimizer folds to hardware intrinsics in the common case)
/// and ends with the implicit worksharing barrier unless `nowait`.
fn build_for_static_loop(m: &Module, ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(
        abi::FOR_STATIC_LOOP,
        vec![Ty::Ptr, Ty::Ptr, Ty::I64, Ty::I64],
        None,
    );
    let body = b.param(0);
    let args = b.param(1);
    let niters = b.param(2);
    let nowait = b.param(3);
    b.call(callee(m, abi::NZOMP_TRACE), vec![], None);
    let start = call_val(&mut b, callee(m, abi::OMP_GET_THREAD_NUM), vec![], Ty::I64);
    let stride = call_val(&mut b, callee(m, abi::OMP_GET_NUM_THREADS), vec![], Ty::I64);
    no_chunk_loop(&mut b, m, body, args, niters, start, stride, ctx.threads_oversub);
    let skip = b.icmp_ne(nowait, Operand::i64(0));
    let bar = b.new_block();
    let done = b.new_block();
    b.cond_br(skip, done, bar);
    b.switch_to(bar);
    b.call(callee(m, abi::KMPC_BARRIER), vec![], None);
    b.br(done);
    b.switch_to(done);
    b.ret(None);
    b.finish()
}

/// `distribute` across teams (generic-mode main threads).
fn build_distribute_static_loop(m: &Module, ctx: &Ctx) -> Function {
    let mut b = FuncBuilder::new(
        abi::DISTRIBUTE_STATIC_LOOP,
        vec![Ty::Ptr, Ty::Ptr, Ty::I64],
        None,
    );
    let body = b.param(0);
    let args = b.param(1);
    let niters = b.param(2);
    b.call(callee(m, abi::NZOMP_TRACE), vec![], None);
    let bid = b.block_id();
    let nbl = b.grid_dim();
    no_chunk_loop(&mut b, m, body, args, niters, bid, nbl, ctx.teams_oversub);
    b.ret(None);
    b.finish()
}

/// Kernel exec-mode helper used by the frontend.
pub fn exec_mode_const(mode: ExecMode) -> i64 {
    match mode {
        ExecMode::Generic => abi::MODE_GENERIC,
        ExecMode::Spmd => abi::MODE_SPMD,
    }
}
