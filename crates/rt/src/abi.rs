//! Symbol names, state layouts and configuration shared between the device
//! runtimes, the frontend (which emits calls against these symbols) and the
//! optimizer (which recognizes them).

/// Kernel execution mode values passed to `__kmpc_target_init`.
pub const MODE_GENERIC: i64 = 0;
pub const MODE_SPMD: i64 = 1;

/// Debug-kind bit-field (paper §III-G: "fine-grained debugging through the
/// use of a bit-field that specifies which debugging features are to be
/// enabled").
pub const DEBUG_ASSERTIONS: i64 = 1 << 0;
pub const DEBUG_FUNCTION_TRACING: i64 = 1 << 1;

// ---- modern (co-designed) runtime symbols --------------------------------

pub const TARGET_INIT: &str = "__kmpc_target_init";
pub const TARGET_DEINIT: &str = "__kmpc_target_deinit";
pub const PARALLEL_51: &str = "__kmpc_parallel_51";
pub const WORKER_LOOP: &str = "__kmpc_worker_loop";
pub const DIST_PAR_FOR_LOOP: &str = "__kmpc_distribute_parallel_for_static_loop";
pub const FOR_STATIC_LOOP: &str = "__kmpc_for_static_loop";
pub const DISTRIBUTE_STATIC_LOOP: &str = "__kmpc_distribute_static_loop";
pub const ALLOC_SHARED: &str = "__kmpc_alloc_shared";
pub const FREE_SHARED: &str = "__kmpc_free_shared";
pub const KMPC_BARRIER: &str = "__kmpc_barrier";
pub const SYNCTHREADS_ALIGNED: &str = "__kmpc_syncthreads_aligned";
pub const OMP_GET_THREAD_NUM: &str = "omp_get_thread_num";
pub const OMP_GET_NUM_THREADS: &str = "omp_get_num_threads";
pub const OMP_GET_TEAM_NUM: &str = "omp_get_team_num";
pub const OMP_GET_NUM_TEAMS: &str = "omp_get_num_teams";
pub const OMP_GET_LEVEL: &str = "omp_get_level";
pub const NZOMP_ASSERT: &str = "__nzomp_assert";
pub const NZOMP_TRACE: &str = "__nzomp_trace";

// ---- modern runtime globals ----------------------------------------------

pub const G_IS_SPMD: &str = "__omp_rtl_is_spmd_mode";
pub const G_TEAM_STATE: &str = "__omp_rtl_team_state";
pub const G_THREAD_STATES: &str = "__omp_rtl_thread_states";
pub const G_SMEM_STACK: &str = "__omp_rtl_smem_stack";
pub const G_SMEM_STACK_TOP: &str = "__omp_rtl_smem_stack_top";
pub const G_COND_WRITE_DUMMY: &str = "__omp_rtl_dummy";
pub const G_DEBUG_KIND: &str = "__omp_rtl_debug_kind";
pub const G_ASSUME_TEAMS_OVERSUB: &str = "__omp_rtl_assume_teams_oversubscription";
pub const G_ASSUME_THREADS_OVERSUB: &str = "__omp_rtl_assume_threads_oversubscription";
pub const G_TRACE_COUNT: &str = "__omp_rtl_trace_count";

/// Team ICV state layout (shared memory, paper §III-B). All fields 8 bytes.
pub mod team_state {
    pub const NTHREADS: u64 = 0;
    pub const LEVELS: u64 = 8;
    pub const ACTIVE_LEVELS: u64 = 16;
    pub const PARALLEL_FN: u64 = 24;
    pub const PARALLEL_ARGS: u64 = 32;
    pub const HAS_THREAD_STATE: u64 = 40;
    pub const SIZE: u64 = 64;
}

/// Per-thread ICV state, allocated on demand from the shared-memory stack
/// (paper §III-C). Linked through `PREV` to represent nested data
/// environments.
pub mod thread_state {
    pub const PREV: u64 = 0;
    pub const THREAD_NUM: u64 = 8;
    pub const NTHREADS: u64 = 16;
    pub const LEVELS: u64 = 24;
    pub const SIZE: u64 = 40;
}

/// Max hardware threads per team the runtime supports (size of the
/// thread-states pointer array).
pub const MAX_THREADS: u64 = 256;

/// Shared-memory stack capacity (paper §III-D). Sized so the modern
/// runtime's total static shared footprint is 11,304 bytes — the "New RT
/// (Nightly)" SMem figure of the paper's Fig. 11 before optimization.
pub const SMEM_STACK_SIZE: u64 = 9168;

// ---- legacy runtime symbols -----------------------------------------------

pub const OLD_TARGET_INIT: &str = "__kmpc_kernel_init_old";
pub const OLD_TARGET_DEINIT: &str = "__kmpc_kernel_deinit_old";
pub const OLD_PARALLEL_PREPARE: &str = "__kmpc_kernel_prepare_parallel_old";
pub const OLD_PARALLEL_END: &str = "__kmpc_kernel_end_parallel_old";
pub const OLD_WORKER_LOOP: &str = "__kmpc_worker_loop_old";
pub const OLD_FOR_STATIC_INIT: &str = "__kmpc_for_static_init_old";
pub const OLD_FOR_STATIC_FINI: &str = "__kmpc_for_static_fini_old";
pub const OLD_DISTRIBUTE_INIT: &str = "__kmpc_distribute_static_init_old";
pub const OLD_DATA_SHARING_PUSH: &str = "__kmpc_data_sharing_push_stack_old";
pub const OLD_DATA_SHARING_POP: &str = "__kmpc_data_sharing_pop_stack_old";
pub const OLD_GET_THREAD_NUM: &str = "omp_get_thread_num"; // same public name
pub const OLD_BARRIER: &str = "__kmpc_barrier_old";

// ---- legacy runtime globals -------------------------------------------------

pub const G_OLD_STATE: &str = "__old_rt_device_state";
pub const G_OLD_DS_STACK: &str = "__old_rt_data_sharing_stack";
pub const G_OLD_DS_TOP: &str = "__old_rt_data_sharing_top";

/// Legacy device state blob: team header + per-thread task descriptors.
/// Totals 2,336 bytes — the "Old RT (Nightly)" SMem figure of Fig. 11.
pub mod old_state {
    pub const LEVELS: u64 = 0;
    pub const NTHREADS: u64 = 8;
    pub const PARALLEL_FN: u64 = 16;
    pub const PARALLEL_ARGS: u64 = 24;
    /// Per-thread descriptor array base; 9 bytes per thread, 256 threads.
    pub const DESCRIPTORS: u64 = 32;
    pub const DESCRIPTOR_STRIDE: u64 = 9;
    pub const SIZE: u64 = 32 + 9 * 256; // 2336
}

/// Extra shared scratch the legacy frontend reserves per kernel that uses
/// variable globalization ("data sharing slots"). Sized so a
/// globalization-using kernel shows the 8,288-byte Old-RT SMem figure:
/// 2336 + 5952 = 8288.
pub const OLD_DS_STACK_SIZE: u64 = 5944; // + 8 bytes top pointer = 5952

/// Compile-time runtime configuration: which feature globals are baked into
/// the runtime image (paper §III-F/G — command-line flags become constant
/// globals read "at compile time via constant propagation").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtConfig {
    /// Debug bit-field; 0 = release build.
    pub debug_kind: i64,
    /// `-fopenmp-assume-teams-oversubscription`
    pub assume_teams_oversubscription: bool,
    /// `-fopenmp-assume-threads-oversubscription`
    pub assume_threads_oversubscription: bool,
}

impl Default for RtConfig {
    fn default() -> RtConfig {
        RtConfig {
            debug_kind: 0,
            assume_teams_oversubscription: false,
            assume_threads_oversubscription: false,
        }
    }
}
