//! `nzomp-rt` — the OpenMP GPU device runtimes, built as IR libraries.
//!
//! Two runtimes are provided, mirroring the paper's evaluation columns:
//!
//! * [`modern`] — the co-designed runtime of paper §III: SPMD-mode flag in
//!   shared memory, team ICV state, on-demand thread ICV states behind a
//!   pointer array, a shared-memory stack with device-malloc fallback,
//!   combined `noChunkImpl` worksharing (Fig. 5), conditional-pointer
//!   broadcast writes with post-barrier assumptions (Fig. 7b/8b), and
//!   zero-overhead debug machinery (§III-G).
//! * [`legacy`] — a faithful caricature of the pre-paper runtime: per-thread
//!   task descriptors written by every thread, memory-carried worksharing
//!   bounds (`for_static_init`), unaligned barriers everywhere, a
//!   data-sharing stack for globalization, and no assumptions — the design
//!   itself defeats the compiler, which is the paper's co-design argument.
//!
//! Both are plain [`nzomp_ir::Module`]s: the frontend links one of them into
//! the application module and the optimizer folds whatever the design lets
//! it fold.

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod abi;
pub mod helpers;
pub mod legacy;
pub mod modern;

pub use abi::RtConfig;

/// Which device runtime to link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeFlavor {
    /// The pre-paper runtime ("Old RT").
    Legacy,
    /// The co-designed runtime of §III ("New RT").
    Modern,
}

/// Build the runtime library module for `flavor`.
///
/// `needs_data_sharing` only matters for the legacy flavor: kernels that
/// globalize local variables get the legacy data-sharing stack reserved in
/// shared memory (this is why Old-RT SMem differs between XSBench and
/// RSBench in Fig. 11).
pub fn build_runtime(
    flavor: RuntimeFlavor,
    cfg: &RtConfig,
    needs_data_sharing: bool,
) -> nzomp_ir::Module {
    match flavor {
        RuntimeFlavor::Modern => modern::build(cfg),
        RuntimeFlavor::Legacy => legacy::build(cfg, needs_data_sharing),
    }
}

/// Signature of a public runtime entry point, for emitting declarations in
/// application modules. `None` for unknown names.
pub fn api_signature(name: &str) -> Option<(Vec<nzomp_ir::Ty>, Option<nzomp_ir::Ty>)> {
    use nzomp_ir::Ty::{Ptr, I1, I64};
    let sig = match name {
        abi::NZOMP_TRACE => (vec![], None),
        abi::NZOMP_ASSERT => (vec![I1], None),
        abi::SYNCTHREADS_ALIGNED | abi::KMPC_BARRIER => (vec![], None),
        abi::TARGET_INIT => (vec![I64], Some(I64)),
        abi::TARGET_DEINIT => (vec![I64], None),
        abi::OMP_GET_THREAD_NUM
        | abi::OMP_GET_NUM_THREADS
        | abi::OMP_GET_LEVEL
        | abi::OMP_GET_TEAM_NUM
        | abi::OMP_GET_NUM_TEAMS => (vec![], Some(I64)),
        abi::ALLOC_SHARED => (vec![I64], Some(Ptr)),
        abi::FREE_SHARED => (vec![Ptr, I64], None),
        abi::PARALLEL_51 | "__kmpc_parallel_spmd" => (vec![Ptr, Ptr], None),
        abi::WORKER_LOOP | abi::OLD_WORKER_LOOP => (vec![], None),
        abi::DIST_PAR_FOR_LOOP | abi::DISTRIBUTE_STATIC_LOOP => (vec![Ptr, Ptr, I64], None),
        abi::FOR_STATIC_LOOP => (vec![Ptr, Ptr, I64, I64], None),
        abi::OLD_TARGET_INIT => (vec![I64], Some(I64)),
        abi::OLD_TARGET_DEINIT => (vec![I64], None),
        abi::OLD_PARALLEL_PREPARE => (vec![Ptr, Ptr], None),
        abi::OLD_PARALLEL_END => (vec![], None),
        abi::OLD_FOR_STATIC_INIT | abi::OLD_DISTRIBUTE_INIT => (vec![Ptr, Ptr, Ptr, I64], None),
        abi::OLD_FOR_STATIC_FINI | abi::OLD_BARRIER => (vec![], None),
        abi::OLD_DATA_SHARING_PUSH => (vec![I64], Some(Ptr)),
        abi::OLD_DATA_SHARING_POP => (vec![Ptr, I64], None),
        _ => return None,
    };
    Some(sig)
}

/// Find-or-declare a runtime entry point in an application module.
pub fn declare_api(m: &mut nzomp_ir::Module, name: &str) -> nzomp_ir::module::FuncRef {
    if let Some(f) = m.find_func(name) {
        return f;
    }
    let (params, ret) =
        api_signature(name).unwrap_or_else(|| panic!("unknown runtime API @{name}"));
    m.add_function(nzomp_ir::Function::declaration(name, params, ret))
}
