//! Behavioral tests: hand-lowered kernels (what the frontend will emit)
//! linked against each runtime and executed on the virtual GPU. These pin
//! down the runtime semantics before any optimization runs.

use nzomp_ir::{ExecMode, FuncBuilder, Module, Operand, Ty};
use nzomp_rt::{abi, build_runtime, declare_api, RtConfig, RuntimeFlavor};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, RtVal, TrapKind};

fn link_rt(mut app: Module, flavor: RuntimeFlavor, cfg: &RtConfig) -> Module {
    let rt = build_runtime(flavor, cfg, true);
    nzomp_ir::link::link(&mut app, rt).expect("link");
    nzomp_ir::verify_module(&app).expect("verify");
    app
}

/// Modern-runtime SPMD kernel:
/// `target teams distribute parallel for: out[i] = 2*i`.
fn modern_spmd_module() -> Module {
    let mut m = Module::new("app");
    // Outlined loop body: body(iv, argsptr); *argsptr holds `out`.
    let mut bb = FuncBuilder::new("body", vec![Ty::I64, Ty::Ptr], None);
    let iv = bb.param(0);
    let args = bb.param(1);
    let out = bb.load(Ty::Ptr, args);
    let slot = bb.gep(out, iv, 8);
    let v = bb.mul(iv, Operand::i64(2));
    bb.store(Ty::I64, slot, v);
    bb.ret(None);
    let body = m.add_function(bb.finish());

    let init = declare_api(&mut m, abi::TARGET_INIT);
    let deinit = declare_api(&mut m, abi::TARGET_DEINIT);
    let loop_fn = declare_api(&mut m, abi::DIST_PAR_FOR_LOOP);

    let mut kb = FuncBuilder::new("kernel", vec![Ty::Ptr, Ty::I64], None);
    let out = kb.param(0);
    let n = kb.param(1);
    let _ = kb.call(
        Operand::Func(init),
        vec![Operand::i64(abi::MODE_SPMD)],
        Some(Ty::I64),
    );
    // Each thread passes its own args copy (SPMD: private is fine).
    let args = kb.alloca(8);
    kb.store(Ty::Ptr, args, out);
    kb.call(
        Operand::Func(loop_fn),
        vec![Operand::Func(body), args, n],
        None,
    );
    kb.call(
        Operand::Func(deinit),
        vec![Operand::i64(abi::MODE_SPMD)],
        None,
    );
    kb.ret(None);
    let k = m.add_function(kb.finish());
    m.add_kernel(k, ExecMode::Spmd);
    m
}

#[test]
fn modern_spmd_distribute_parallel_for() {
    let m = link_rt(modern_spmd_module(), RuntimeFlavor::Modern, &RtConfig::default());
    let mut dev = Device::load(m, DeviceConfig::default());
    let n = 1000i64;
    let out = dev.alloc(8 * n as u64);
    let metrics = dev
        .launch("kernel", Launch::new(4, 32), &[RtVal::P(out), RtVal::I(n)])
        .unwrap();
    let got = dev.read_i64(out, n as usize).unwrap();
    for i in 0..n as usize {
        assert_eq!(got[i], 2 * i as i64);
    }
    // Unoptimized: runtime calls and the runtime's shared state are there.
    assert!(metrics.runtime_calls > 0);
    assert_eq!(metrics.smem_bytes, 11304, "modern RT static smem");
}

/// Iteration-space coverage for arbitrary (teams, threads, n): every
/// iteration executed exactly once (atomic increment per index).
#[test]
fn modern_worksharing_covers_iteration_space() {
    for (teams, threads, n) in [(1u32, 1u32, 7i64), (2, 8, 64), (3, 5, 17), (4, 32, 100)] {
        let mut m = Module::new("cover");
        let mut bb = FuncBuilder::new("body", vec![Ty::I64, Ty::Ptr], None);
        let iv = bb.param(0);
        let args = bb.param(1);
        let out = bb.load(Ty::Ptr, args);
        let slot = bb.gep(out, iv, 8);
        bb.atomic_add(Ty::I64, slot, Operand::i64(1));
        bb.ret(None);
        let body = m.add_function(bb.finish());
        let init = declare_api(&mut m, abi::TARGET_INIT);
        let loop_fn = declare_api(&mut m, abi::DIST_PAR_FOR_LOOP);
        let mut kb = FuncBuilder::new("kernel", vec![Ty::Ptr, Ty::I64], None);
        let out = kb.param(0);
        let n_arg = kb.param(1);
        kb.call(
            Operand::Func(init),
            vec![Operand::i64(abi::MODE_SPMD)],
            Some(Ty::I64),
        );
        let args = kb.alloca(8);
        kb.store(Ty::Ptr, args, out);
        kb.call(
            Operand::Func(loop_fn),
            vec![Operand::Func(body), args, n_arg],
            None,
        );
        kb.ret(None);
        let k = m.add_function(kb.finish());
        m.add_kernel(k, ExecMode::Spmd);
        let m = link_rt(m, RuntimeFlavor::Modern, &RtConfig::default());
        let mut dev = Device::load(m, DeviceConfig::default());
        let out = dev.alloc(8 * n as u64);
        dev.launch(
            "kernel",
            Launch::new(teams, threads),
            &[RtVal::P(out), RtVal::I(n)],
        )
        .unwrap();
        let got = dev.read_i64(out, n as usize).unwrap();
        assert!(
            got.iter().all(|&c| c == 1),
            "coverage {teams}x{threads} n={n}: {got:?}"
        );
    }
}

/// Generic-mode kernel with the state machine: `parallel` from sequential
/// main-thread code. Parallel args must be globalized (alloc_shared).
fn modern_generic_module() -> Module {
    let mut m = Module::new("app");
    let mut bb = FuncBuilder::new("par_body", vec![Ty::Ptr], None);
    let args = bb.param(0);
    let gtn = declare_api(&mut m, abi::OMP_GET_THREAD_NUM);
    let out = bb.load(Ty::Ptr, args);
    let tn = bb.call(Operand::Func(gtn), vec![], Some(Ty::I64)).unwrap();
    let slot = bb.gep(out, tn, 8);
    let v = bb.add(tn, Operand::i64(100));
    bb.store(Ty::I64, slot, v);
    bb.ret(None);
    let body = m.add_function(bb.finish());

    let init = declare_api(&mut m, abi::TARGET_INIT);
    let deinit = declare_api(&mut m, abi::TARGET_DEINIT);
    let par = declare_api(&mut m, abi::PARALLEL_51);
    let alloc = declare_api(&mut m, abi::ALLOC_SHARED);
    let freesh = declare_api(&mut m, abi::FREE_SHARED);

    let mut kb = FuncBuilder::new("kernel", vec![Ty::Ptr], None);
    let out = kb.param(0);
    let ec = kb
        .call(
            Operand::Func(init),
            vec![Operand::i64(abi::MODE_GENERIC)],
            Some(Ty::I64),
        )
        .unwrap();
    let is_worker = kb.icmp_ne(ec, Operand::i64(0));
    let main_bb = kb.new_block();
    let exit_bb = kb.new_block();
    kb.cond_br(is_worker, exit_bb, main_bb);
    kb.switch_to(main_bb);
    // Globalized parallel args (workers must be able to read them).
    let args = kb
        .call(Operand::Func(alloc), vec![Operand::i64(8)], Some(Ty::Ptr))
        .unwrap();
    kb.store(Ty::Ptr, args, out);
    kb.call(Operand::Func(par), vec![Operand::Func(body), args], None);
    kb.call(Operand::Func(freesh), vec![args, Operand::i64(8)], None);
    kb.call(
        Operand::Func(deinit),
        vec![Operand::i64(abi::MODE_GENERIC)],
        None,
    );
    kb.br(exit_bb);
    kb.switch_to(exit_bb);
    kb.ret(None);
    let k = m.add_function(kb.finish());
    m.add_kernel(k, ExecMode::Generic);
    m
}

#[test]
fn modern_generic_state_machine_parallel() {
    let m = link_rt(modern_generic_module(), RuntimeFlavor::Modern, &RtConfig::default());
    let mut dev = Device::load(m, DeviceConfig::default());
    let threads = 16u32;
    let out = dev.alloc(8 * threads as u64);
    let metrics = dev
        .launch("kernel", Launch::new(2, threads), &[RtVal::P(out)])
        .unwrap();
    let got = dev.read_i64(out, threads as usize).unwrap();
    for t in 0..threads as usize {
        assert_eq!(got[t], t as i64 + 100, "thread {t}");
    }
    // The state machine costs barriers.
    assert!(metrics.barriers >= 4);
}

/// Nested parallel (paper Fig. 4): the inner region is serialized with an
/// individual thread ICV state; omp_get_thread_num() == 0 and level == 2
/// inside.
#[test]
fn modern_nested_parallel_is_serialized() {
    let mut m = Module::new("nested");
    let gtn = declare_api(&mut m, abi::OMP_GET_THREAD_NUM);
    let glvl = declare_api(&mut m, abi::OMP_GET_LEVEL);
    let gnth = declare_api(&mut m, abi::OMP_GET_NUM_THREADS);
    let par = declare_api(&mut m, abi::PARALLEL_51);

    // inner body: record (thread_num, level, num_threads) for the hardware
    // thread that ran it.
    let mut ib = FuncBuilder::new("inner", vec![Ty::Ptr], None);
    let args = ib.param(0);
    let out = ib.load(Ty::Ptr, args);
    let hw = ib.thread_id();
    let tn = ib.call(Operand::Func(gtn), vec![], Some(Ty::I64)).unwrap();
    let lv = ib.call(Operand::Func(glvl), vec![], Some(Ty::I64)).unwrap();
    let nt = ib.call(Operand::Func(gnth), vec![], Some(Ty::I64)).unwrap();
    let base = ib.mul(hw, Operand::i64(24));
    let p0 = ib.ptr_add(out, base);
    ib.store(Ty::I64, p0, tn);
    let p1 = ib.ptr_add(p0, Operand::i64(8));
    ib.store(Ty::I64, p1, lv);
    let p2 = ib.ptr_add(p0, Operand::i64(16));
    ib.store(Ty::I64, p2, nt);
    ib.ret(None);
    let inner = m.add_function(ib.finish());

    // outer body: each thread starts a nested parallel.
    let mut ob = FuncBuilder::new("outer", vec![Ty::Ptr], None);
    let args = ob.param(0);
    ob.call(Operand::Func(par), vec![Operand::Func(inner), args], None);
    ob.ret(None);
    let outer = m.add_function(ob.finish());

    let init = declare_api(&mut m, abi::TARGET_INIT);
    let deinit = declare_api(&mut m, abi::TARGET_DEINIT);
    let alloc = declare_api(&mut m, abi::ALLOC_SHARED);

    let mut kb = FuncBuilder::new("kernel", vec![Ty::Ptr], None);
    let out = kb.param(0);
    let ec = kb
        .call(
            Operand::Func(init),
            vec![Operand::i64(abi::MODE_GENERIC)],
            Some(Ty::I64),
        )
        .unwrap();
    let is_worker = kb.icmp_ne(ec, Operand::i64(0));
    let main_bb = kb.new_block();
    let exit_bb = kb.new_block();
    kb.cond_br(is_worker, exit_bb, main_bb);
    kb.switch_to(main_bb);
    let args = kb
        .call(Operand::Func(alloc), vec![Operand::i64(8)], Some(Ty::Ptr))
        .unwrap();
    kb.store(Ty::Ptr, args, out);
    kb.call(Operand::Func(par), vec![Operand::Func(outer), args], None);
    kb.call(
        Operand::Func(deinit),
        vec![Operand::i64(abi::MODE_GENERIC)],
        None,
    );
    kb.br(exit_bb);
    kb.switch_to(exit_bb);
    kb.ret(None);
    let k = m.add_function(kb.finish());
    m.add_kernel(k, ExecMode::Generic);

    let m = link_rt(m, RuntimeFlavor::Modern, &RtConfig::default());
    let mut dev = Device::load(m, DeviceConfig::default());
    let threads = 8u32;
    let out = dev.alloc(24 * threads as u64);
    dev.launch("kernel", Launch::new(1, threads), &[RtVal::P(out)])
        .unwrap();
    let got = dev.read_i64(out, 3 * threads as usize).unwrap();
    for t in 0..threads as usize {
        assert_eq!(got[3 * t], 0, "nested thread_num (thread {t})");
        assert_eq!(got[3 * t + 1], 2, "nested level (thread {t})");
        assert_eq!(got[3 * t + 2], 1, "nested num_threads (thread {t})");
    }
}

/// Legacy runtime SPMD-style kernel using distribute + for_static_init with
/// memory-carried bounds.
fn legacy_spmd_module() -> Module {
    let mut m = Module::new("legacy-app");
    let init = declare_api(&mut m, abi::OLD_TARGET_INIT);
    let deinit = declare_api(&mut m, abi::OLD_TARGET_DEINIT);
    let dist = declare_api(&mut m, abi::OLD_DISTRIBUTE_INIT);
    let fsi = declare_api(&mut m, abi::OLD_FOR_STATIC_INIT);
    let fini = declare_api(&mut m, abi::OLD_FOR_STATIC_FINI);

    let mut kb = FuncBuilder::new("kernel", vec![Ty::Ptr, Ty::I64], None);
    let out = kb.param(0);
    let n = kb.param(1);
    kb.call(
        Operand::Func(init),
        vec![Operand::i64(abi::MODE_SPMD)],
        Some(Ty::I64),
    );
    // Memory-carried bounds: the old API shape.
    let lb = kb.alloca(8);
    let ub = kb.alloca(8);
    let st = kb.alloca(8);
    kb.call(Operand::Func(dist), vec![lb, ub, st, n], None);
    let tlo = kb.load(Ty::I64, lb);
    let thi = kb.load(Ty::I64, ub);
    let tspan = kb.sub(thi, tlo);
    let lb2 = kb.alloca(8);
    let ub2 = kb.alloca(8);
    let st2 = kb.alloca(8);
    kb.call(Operand::Func(fsi), vec![lb2, ub2, st2, tspan], None);
    let lo_rel = kb.load(Ty::I64, lb2);
    let hi_rel = kb.load(Ty::I64, ub2);
    let lo = kb.add(tlo, lo_rel);
    let hi = kb.add(tlo, hi_rel);
    nzomp_ir::builder::build_counted_loop(&mut kb, lo, hi, Operand::i64(1), |kb, i| {
        let slot = kb.gep(out, i, 8);
        let v = kb.mul(i, Operand::i64(3));
        kb.store(Ty::I64, slot, v);
    });
    kb.call(Operand::Func(fini), vec![], None);
    kb.call(
        Operand::Func(deinit),
        vec![Operand::i64(abi::MODE_SPMD)],
        None,
    );
    kb.ret(None);
    let k = m.add_function(kb.finish());
    m.add_kernel(k, ExecMode::Spmd);
    m
}

#[test]
fn legacy_spmd_worksharing() {
    let m = link_rt(legacy_spmd_module(), RuntimeFlavor::Legacy, &RtConfig::default());
    let mut dev = Device::load(m, DeviceConfig::default());
    let n = 300i64;
    let out = dev.alloc(8 * n as u64);
    let metrics = dev
        .launch("kernel", Launch::new(3, 10), &[RtVal::P(out), RtVal::I(n)])
        .unwrap();
    let got = dev.read_i64(out, n as usize).unwrap();
    for i in 0..n as usize {
        assert_eq!(got[i], 3 * i as i64, "index {i}");
    }
    // Legacy with data sharing: 2336 + 5944 + 8 bytes of shared state.
    assert_eq!(metrics.smem_bytes, 8288);
}

/// Legacy generic-mode parallel through the old state machine.
#[test]
fn legacy_generic_state_machine() {
    let mut m = Module::new("legacy-gen");
    let gtn = declare_api(&mut m, abi::OMP_GET_THREAD_NUM);
    let mut bb = FuncBuilder::new("par_body", vec![Ty::Ptr], None);
    let args = bb.param(0);
    let out = bb.load(Ty::Ptr, args);
    let tn = bb.call(Operand::Func(gtn), vec![], Some(Ty::I64)).unwrap();
    let slot = bb.gep(out, tn, 8);
    let v = bb.add(tn, Operand::i64(7));
    bb.store(Ty::I64, slot, v);
    bb.ret(None);
    let body = m.add_function(bb.finish());

    let init = declare_api(&mut m, abi::OLD_TARGET_INIT);
    let deinit = declare_api(&mut m, abi::OLD_TARGET_DEINIT);
    let prep = declare_api(&mut m, abi::OLD_PARALLEL_PREPARE);
    let endp = declare_api(&mut m, abi::OLD_PARALLEL_END);
    let bar = declare_api(&mut m, abi::OLD_BARRIER);
    let push = declare_api(&mut m, abi::OLD_DATA_SHARING_PUSH);
    let pop = declare_api(&mut m, abi::OLD_DATA_SHARING_POP);

    let mut kb = FuncBuilder::new("kernel", vec![Ty::Ptr], None);
    let out = kb.param(0);
    let ec = kb
        .call(
            Operand::Func(init),
            vec![Operand::i64(abi::MODE_GENERIC)],
            Some(Ty::I64),
        )
        .unwrap();
    let is_worker = kb.icmp_ne(ec, Operand::i64(0));
    let main_bb = kb.new_block();
    let exit_bb = kb.new_block();
    kb.cond_br(is_worker, exit_bb, main_bb);
    kb.switch_to(main_bb);
    let args = kb
        .call(Operand::Func(push), vec![Operand::i64(8)], Some(Ty::Ptr))
        .unwrap();
    kb.store(Ty::Ptr, args, out);
    kb.call(Operand::Func(prep), vec![Operand::Func(body), args], None);
    kb.call(Operand::Func(bar), vec![], None); // release workers
    kb.call(Operand::Func(body), vec![args], None); // main participates
    kb.call(Operand::Func(bar), vec![], None); // join
    kb.call(Operand::Func(endp), vec![], None);
    kb.call(Operand::Func(pop), vec![args, Operand::i64(8)], None);
    kb.call(
        Operand::Func(deinit),
        vec![Operand::i64(abi::MODE_GENERIC)],
        None,
    );
    kb.br(exit_bb);
    kb.switch_to(exit_bb);
    kb.ret(None);
    let k = m.add_function(kb.finish());
    m.add_kernel(k, ExecMode::Generic);

    let m = link_rt(m, RuntimeFlavor::Legacy, &RtConfig::default());
    let mut dev = Device::load(m, DeviceConfig::default());
    let threads = 12u32;
    let out = dev.alloc(8 * threads as u64);
    dev.launch("kernel", Launch::new(1, threads), &[RtVal::P(out)])
        .unwrap();
    let got = dev.read_i64(out, threads as usize).unwrap();
    for t in 0..threads as usize {
        assert_eq!(got[t], t as i64 + 7, "thread {t}");
    }
}

/// Debug build: the oversubscription assumption is *verified* (paper §III-F
/// "after asserting that the condition actually holds at runtime").
#[test]
fn oversubscription_assumption_checked_in_debug() {
    let cfg = RtConfig {
        debug_kind: abi::DEBUG_ASSERTIONS,
        assume_threads_oversubscription: true,
        ..RtConfig::default()
    };
    // 2 teams x 4 threads = 8 slots, but 100 iterations: assumption is false.
    let m = link_rt(modern_spmd_module(), RuntimeFlavor::Modern, &cfg);
    let mut dev = Device::load(m, DeviceConfig::default());
    let out = dev.alloc(8 * 100);
    let err = dev
        .launch("kernel", Launch::new(2, 4), &[RtVal::P(out), RtVal::I(100)])
        .unwrap_err();
    assert_eq!(err.kind, TrapKind::AssertFail);

    // With enough threads the assumption holds and the kernel passes.
    let m2 = link_rt(modern_spmd_module(), RuntimeFlavor::Modern, &cfg);
    let mut dev2 = Device::load(m2, DeviceConfig::default());
    let out2 = dev2.alloc(8 * 100);
    dev2.launch("kernel", Launch::new(4, 32), &[RtVal::P(out2), RtVal::I(100)])
        .unwrap();
}

/// Function tracing (debug): runtime entries are counted; release: zero.
#[test]
fn function_tracing_counts_runtime_entries() {
    let cfg = RtConfig {
        debug_kind: abi::DEBUG_FUNCTION_TRACING,
        ..RtConfig::default()
    };
    let m = link_rt(modern_spmd_module(), RuntimeFlavor::Modern, &cfg);
    let mut dev = Device::load(m, DeviceConfig::default());
    let out = dev.alloc(8 * 10);
    dev.launch("kernel", Launch::new(1, 4), &[RtVal::P(out), RtVal::I(10)])
        .unwrap();
    let addr = dev.global_addr(abi::G_TRACE_COUNT).unwrap();
    let count = dev.read_i64(addr, 1).unwrap()[0];
    assert!(count > 0, "trace counter should have fired, got {count}");

    let m2 = link_rt(
        modern_spmd_module(),
        RuntimeFlavor::Modern,
        &RtConfig::default(),
    );
    let mut dev2 = Device::load(m2, DeviceConfig::default());
    let out2 = dev2.alloc(8 * 10);
    dev2.launch("kernel", Launch::new(1, 4), &[RtVal::P(out2), RtVal::I(10)])
        .unwrap();
    let addr2 = dev2.global_addr(abi::G_TRACE_COUNT).unwrap();
    assert_eq!(dev2.read_i64(addr2, 1).unwrap()[0], 0);
}

/// Shared-memory stack exhaustion falls back to device malloc (§III-D).
#[test]
fn alloc_shared_falls_back_to_malloc() {
    let mut m = Module::new("fallback");
    let alloc = declare_api(&mut m, abi::ALLOC_SHARED);
    let freesh = declare_api(&mut m, abi::FREE_SHARED);
    let init = declare_api(&mut m, abi::TARGET_INIT);
    let mut kb = FuncBuilder::new("kernel", vec![Ty::Ptr], None);
    let out = kb.param(0);
    kb.call(
        Operand::Func(init),
        vec![Operand::i64(abi::MODE_SPMD)],
        Some(Ty::I64),
    );
    // Allocate more than SMEM_STACK_SIZE in one go: must fall back.
    let big = Operand::i64((abi::SMEM_STACK_SIZE + 4096) as i64);
    let p = kb
        .call(Operand::Func(alloc), vec![big], Some(Ty::Ptr))
        .unwrap();
    kb.store(Ty::I64, p, Operand::i64(77));
    let v = kb.load(Ty::I64, p);
    kb.store(Ty::I64, out, v);
    kb.call(Operand::Func(freesh), vec![p, big], None);
    kb.ret(None);
    let k = m.add_function(kb.finish());
    m.add_kernel(k, ExecMode::Spmd);
    let m = link_rt(m, RuntimeFlavor::Modern, &RtConfig::default());
    let mut dev = Device::load(m, DeviceConfig::default());
    let out = dev.alloc(8);
    let metrics = dev
        .launch("kernel", Launch::new(1, 1), &[RtVal::P(out)])
        .unwrap();
    assert_eq!(dev.read_i64(out, 1).unwrap()[0], 77);
    assert_eq!(metrics.device_mallocs, 1, "fell back to device malloc");
}
