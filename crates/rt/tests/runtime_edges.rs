//! Edge cases of the device runtimes: ICV queries per mode, worksharing
//! degenerate shapes, shared-stack LIFO behavior.

use nzomp_ir::{ExecMode, FuncBuilder, Module, Operand, Ty};
use nzomp_rt::{abi, build_runtime, declare_api, RtConfig, RuntimeFlavor};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, RtVal};

fn link_modern(mut app: Module) -> Module {
    let rt = build_runtime(RuntimeFlavor::Modern, &RtConfig::default(), true);
    nzomp_ir::link::link(&mut app, rt).unwrap();
    nzomp_ir::verify_module(&app).unwrap();
    app
}

/// ICV queries from an SPMD kernel: thread_num == hw tid, num_threads ==
/// block dim, level == 1, team/num_teams == grid coordinates.
#[test]
fn icv_queries_in_spmd_mode() {
    let mut m = Module::new("icv");
    let init = declare_api(&mut m, abi::TARGET_INIT);
    let fns = [
        abi::OMP_GET_THREAD_NUM,
        abi::OMP_GET_NUM_THREADS,
        abi::OMP_GET_LEVEL,
        abi::OMP_GET_TEAM_NUM,
        abi::OMP_GET_NUM_TEAMS,
    ]
    .map(|n| declare_api(&mut m, n));
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    b.call(Operand::Func(init), vec![Operand::i64(abi::MODE_SPMD)], Some(Ty::I64));
    let tid = b.thread_id();
    let bid = b.block_id();
    let bdim = b.block_dim();
    let tmp = b.mul(bid, bdim);
    let gid = b.add(tmp, tid);
    let base = b.mul(gid, Operand::i64(5 * 8));
    let out = b.ptr_add(b.param(0), base);
    for (i, f) in fns.iter().enumerate() {
        let v = b.call(Operand::Func(*f), vec![], Some(Ty::I64)).unwrap();
        let slot = b.ptr_add(out, Operand::i64(i as i64 * 8));
        b.store(Ty::I64, slot, v);
    }
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    let m = link_modern(m);
    let mut dev = Device::load(m, DeviceConfig::default());
    let (teams, threads) = (3u32, 4u32);
    let buf = dev.alloc(5 * 8 * (teams * threads) as u64);
    dev.launch("k", Launch::new(teams, threads), &[RtVal::P(buf)]).unwrap();
    let vals = dev.read_i64(buf, 5 * (teams * threads) as usize).unwrap();
    for team in 0..teams as i64 {
        for t in 0..threads as i64 {
            let g = (team * threads as i64 + t) as usize;
            assert_eq!(vals[g * 5], t, "thread_num");
            assert_eq!(vals[g * 5 + 1], threads as i64, "num_threads");
            assert_eq!(vals[g * 5 + 2], 1, "level");
            assert_eq!(vals[g * 5 + 3], team, "team_num");
            assert_eq!(vals[g * 5 + 4], teams as i64, "num_teams");
        }
    }
}

/// Worksharing with zero iterations executes nothing and terminates.
#[test]
fn worksharing_zero_iterations() {
    let mut m = Module::new("zero");
    let init = declare_api(&mut m, abi::TARGET_INIT);
    let ws = declare_api(&mut m, abi::DIST_PAR_FOR_LOOP);
    let mut bb = FuncBuilder::new("body", vec![Ty::I64, Ty::Ptr], None);
    let args = bb.param(1);
    let p = bb.load(Ty::Ptr, args);
    bb.atomic_add(Ty::I64, p, Operand::i64(1));
    bb.ret(None);
    let body = m.add_function(bb.finish());
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    b.call(Operand::Func(init), vec![Operand::i64(abi::MODE_SPMD)], Some(Ty::I64));
    let a = b.alloca(8);
    b.store(Ty::Ptr, a, b.param(0));
    b.call(Operand::Func(ws), vec![Operand::Func(body), a, Operand::i64(0)], None);
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    let m = link_modern(m);
    let mut dev = Device::load(m, DeviceConfig::default());
    let buf = dev.alloc(8);
    dev.launch("k", Launch::new(2, 8), &[RtVal::P(buf)]).unwrap();
    assert_eq!(dev.read_i64(buf, 1).unwrap()[0], 0);
}

/// One thread, one team, many iterations: the grid-stride loop handles the
/// degenerate launch.
#[test]
fn worksharing_single_thread_many_iters() {
    let mut m = Module::new("one");
    let init = declare_api(&mut m, abi::TARGET_INIT);
    let ws = declare_api(&mut m, abi::DIST_PAR_FOR_LOOP);
    let mut bb = FuncBuilder::new("body", vec![Ty::I64, Ty::Ptr], None);
    let iv = bb.param(0);
    let args = bb.param(1);
    let p = bb.load(Ty::Ptr, args);
    let slot = bb.gep(p, iv, 8);
    bb.store(Ty::I64, slot, iv);
    bb.ret(None);
    let body = m.add_function(bb.finish());
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr, Ty::I64], None);
    b.call(Operand::Func(init), vec![Operand::i64(abi::MODE_SPMD)], Some(Ty::I64));
    let a = b.alloca(8);
    b.store(Ty::Ptr, a, b.param(0));
    b.call(Operand::Func(ws), vec![Operand::Func(body), a, b.param(1)], None);
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    let m = link_modern(m);
    let mut dev = Device::load(m, DeviceConfig::default());
    let n = 37i64;
    let buf = dev.alloc(8 * n as u64);
    dev.launch("k", Launch::new(1, 1), &[RtVal::P(buf), RtVal::I(n)]).unwrap();
    let vals = dev.read_i64(buf, n as usize).unwrap();
    for (i, v) in vals.iter().enumerate() {
        assert_eq!(*v, i as i64);
    }
}

/// Shared stack is LIFO: alloc/free pairs reuse the same storage.
#[test]
fn shared_stack_is_lifo() {
    let mut m = Module::new("lifo");
    let init = declare_api(&mut m, abi::TARGET_INIT);
    let alloc = declare_api(&mut m, abi::ALLOC_SHARED);
    let freesh = declare_api(&mut m, abi::FREE_SHARED);
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    b.call(Operand::Func(init), vec![Operand::i64(abi::MODE_SPMD)], Some(Ty::I64));
    let p1 = b.call(Operand::Func(alloc), vec![Operand::i64(16)], Some(Ty::Ptr)).unwrap();
    b.call(Operand::Func(freesh), vec![p1, Operand::i64(16)], None);
    let p2 = b.call(Operand::Func(alloc), vec![Operand::i64(16)], Some(Ty::Ptr)).unwrap();
    b.call(Operand::Func(freesh), vec![p2, Operand::i64(16)], None);
    // LIFO reuse: same address both times.
    let i1 = b.cast(nzomp_ir::CastKind::PtrCast, Ty::I64, p1);
    let i2 = b.cast(nzomp_ir::CastKind::PtrCast, Ty::I64, p2);
    let same = b.icmp_eq(i1, i2);
    let v = b.select(Ty::I64, same, Operand::i64(1), Operand::i64(0));
    b.store(Ty::I64, b.param(0), v);
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    let m = link_modern(m);
    let mut dev = Device::load(m, DeviceConfig::default());
    let out = dev.alloc(8);
    dev.launch("k", Launch::new(1, 1), &[RtVal::P(out)]).unwrap();
    assert_eq!(dev.read_i64(out, 1).unwrap()[0], 1);
}

/// The legacy runtime without data sharing builds a smaller image and
/// `data_sharing_push` falls back to device malloc.
#[test]
fn legacy_without_data_sharing_uses_malloc() {
    let mut m = Module::new("nods");
    let init = declare_api(&mut m, abi::OLD_TARGET_INIT);
    let push = declare_api(&mut m, abi::OLD_DATA_SHARING_PUSH);
    let pop = declare_api(&mut m, abi::OLD_DATA_SHARING_POP);
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    b.call(Operand::Func(init), vec![Operand::i64(abi::MODE_SPMD)], Some(Ty::I64));
    let p = b.call(Operand::Func(push), vec![Operand::i64(32)], Some(Ty::Ptr)).unwrap();
    b.store(Ty::I64, p, Operand::i64(11));
    let v = b.load(Ty::I64, p);
    b.store(Ty::I64, b.param(0), v);
    b.call(Operand::Func(pop), vec![p, Operand::i64(32)], None);
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);
    let rt = build_runtime(RuntimeFlavor::Legacy, &RtConfig::default(), false);
    nzomp_ir::link::link(&mut m, rt).unwrap();
    let mut dev = Device::load(m, DeviceConfig::default());
    let out = dev.alloc(8);
    let metrics = dev.launch("k", Launch::new(1, 1), &[RtVal::P(out)]).unwrap();
    assert_eq!(dev.read_i64(out, 1).unwrap()[0], 11);
    assert_eq!(metrics.smem_bytes, 2336, "no DS stack reserved");
    assert_eq!(metrics.device_mallocs, 1, "push fell back to malloc");
}

/// The modern runtime's static shared-memory footprint is exactly the
/// paper's 11,304 bytes (Fig. 11, "New RT (Nightly)").
#[test]
fn modern_runtime_footprint_matches_paper() {
    let rt = build_runtime(RuntimeFlavor::Modern, &RtConfig::default(), true);
    assert_eq!(rt.shared_memory_bytes(), 11304);
    let legacy_ds = build_runtime(RuntimeFlavor::Legacy, &RtConfig::default(), true);
    assert_eq!(legacy_ds.shared_memory_bytes(), 8288);
    let legacy = build_runtime(RuntimeFlavor::Legacy, &RtConfig::default(), false);
    assert_eq!(legacy.shared_memory_bytes(), 2336);
}

/// Config constants are baked into the image.
#[test]
fn rt_config_becomes_constant_globals() {
    let cfg = RtConfig {
        debug_kind: 3,
        assume_teams_oversubscription: true,
        assume_threads_oversubscription: false,
    };
    let rt = build_runtime(RuntimeFlavor::Modern, &cfg, false);
    let dk = rt.find_global(abi::G_DEBUG_KIND).unwrap();
    assert_eq!(rt.global(dk).init.read_int(0, 8), 3);
    assert!(rt.global(dk).constant);
    let t = rt.find_global(abi::G_ASSUME_TEAMS_OVERSUB).unwrap();
    assert_eq!(rt.global(t).init.read_int(0, 8), 1);
    let th = rt.find_global(abi::G_ASSUME_THREADS_OVERSUB).unwrap();
    assert_eq!(rt.global(th).init.read_int(0, 8), 0);
}

/// Both runtime libraries survive a textual print → parse round trip and
/// still execute correctly afterwards (the parser is a full peer of the
/// printer).
#[test]
fn runtimes_roundtrip_through_text() {
    for flavor in [RuntimeFlavor::Modern, RuntimeFlavor::Legacy] {
        let rt = build_runtime(flavor, &RtConfig::default(), true);
        let text = nzomp_ir::printer::print_module(&rt);
        let rt2 = nzomp_ir::parser::parse_module(&text)
            .unwrap_or_else(|e| panic!("{flavor:?}: {e}"));
        nzomp_ir::verify_module(&rt2).unwrap();
        assert_eq!(rt.shared_memory_bytes(), rt2.shared_memory_bytes());
        assert_eq!(rt.funcs.len(), rt2.funcs.len());
        assert_eq!(rt.live_inst_count(), rt2.live_inst_count());
    }
}

/// A parsed-back application module executes identically to the original.
#[test]
fn parsed_module_executes_identically() {
    let app = {
        let mut m = Module::new("rt-app");
        let init = declare_api(&mut m, abi::TARGET_INIT);
        let ws = declare_api(&mut m, abi::DIST_PAR_FOR_LOOP);
        let mut bb = FuncBuilder::new("body", vec![Ty::I64, Ty::Ptr], None);
        let iv = bb.param(0);
        let args = bb.param(1);
        let p = bb.load(Ty::Ptr, args);
        let slot = bb.gep(p, iv, 8);
        let v = bb.mul(iv, iv);
        bb.store(Ty::I64, slot, v);
        bb.ret(None);
        let body = m.add_function(bb.finish());
        let mut b = FuncBuilder::new("k", vec![Ty::Ptr, Ty::I64], None);
        b.call(Operand::Func(init), vec![Operand::i64(abi::MODE_SPMD)], Some(Ty::I64));
        let a = b.alloca(8);
        b.store(Ty::Ptr, a, b.param(0));
        b.call(Operand::Func(ws), vec![Operand::Func(body), a, b.param(1)], None);
        b.ret(None);
        let k = m.add_function(b.finish());
        m.add_kernel(k, ExecMode::Spmd);
        link_modern(m)
    };
    let text = nzomp_ir::printer::print_module(&app);
    let app2 = nzomp_ir::parser::parse_module(&text).unwrap();

    let run = |m: Module| {
        let mut dev = Device::load(m, DeviceConfig::default());
        let n = 40i64;
        let buf = dev.alloc(8 * n as u64);
        let metrics = dev
            .launch("k", Launch::new(2, 10), &[RtVal::P(buf), RtVal::I(n)])
            .unwrap();
        (dev.read_i64(buf, n as usize).unwrap(), metrics.cycles)
    };
    let (v1, c1) = run(app);
    let (v2, c2) = run(app2);
    assert_eq!(v1, v2);
    assert_eq!(c1, c2, "identical cost too");
    for (i, v) in v1.iter().enumerate() {
        assert_eq!(*v, (i * i) as i64);
    }
}
