//! Runtime-level parallel determinism: kernels linked against *both*
//! device runtimes execute bit-identically at any worker-thread count.
//!
//! This is the interesting runtime property behind `docs/parallel-vgpu.md`:
//! the runtimes' shared state (team stack pointer, ICVs) lives in
//! `Shared` space — team-private — so buffered parallel execution never
//! sees cross-team runtime traffic; the only Global-space runtime cell is
//! the debug trace counter, which is accumulated with a result-unused
//! atomic add and merges exactly.

use nzomp_ir::{ExecMode, FuncBuilder, Module, Operand, Ty};
use nzomp_rt::{abi, build_runtime, declare_api, RtConfig, RuntimeFlavor};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, RtVal};

fn link_rt(mut app: Module, flavor: RuntimeFlavor, cfg: &RtConfig) -> Module {
    let rt = build_runtime(flavor, cfg, true);
    nzomp_ir::link::link(&mut app, rt).expect("link");
    nzomp_ir::verify_module(&app).expect("verify");
    app
}

/// `target teams distribute parallel for: out[i] = 3*i + 1`, the standard
/// modern-runtime lowering shape.
fn modern_spmd_module() -> Module {
    let mut m = Module::new("par_rt");
    let mut bb = FuncBuilder::new("body", vec![Ty::I64, Ty::Ptr], None);
    let iv = bb.param(0);
    let args = bb.param(1);
    let out = bb.load(Ty::Ptr, args);
    let slot = bb.gep(out, iv, 8);
    let v3 = bb.mul(iv, Operand::i64(3));
    let v = bb.add(v3, Operand::i64(1));
    bb.store(Ty::I64, slot, v);
    bb.ret(None);
    let body = m.add_function(bb.finish());

    let init = declare_api(&mut m, abi::TARGET_INIT);
    let deinit = declare_api(&mut m, abi::TARGET_DEINIT);
    let loop_fn = declare_api(&mut m, abi::DIST_PAR_FOR_LOOP);

    let mut kb = FuncBuilder::new("kernel", vec![Ty::Ptr, Ty::I64], None);
    let out = kb.param(0);
    let n = kb.param(1);
    let _ = kb.call(
        Operand::Func(init),
        vec![Operand::i64(abi::MODE_SPMD)],
        Some(Ty::I64),
    );
    let args = kb.alloca(8);
    kb.store(Ty::Ptr, args, out);
    kb.call(Operand::Func(loop_fn), vec![Operand::Func(body), args, n], None);
    kb.call(Operand::Func(deinit), vec![Operand::i64(abi::MODE_SPMD)], None);
    kb.ret(None);
    let k = m.add_function(kb.finish());
    m.add_kernel(k, ExecMode::Spmd);
    m
}

/// The same loop through the legacy API: distribute + for_static_init
/// with memory-carried bounds (worksharing state in team-shared memory).
fn legacy_spmd_module() -> Module {
    let mut m = Module::new("par_rt_legacy");
    let init = declare_api(&mut m, abi::OLD_TARGET_INIT);
    let deinit = declare_api(&mut m, abi::OLD_TARGET_DEINIT);
    let dist = declare_api(&mut m, abi::OLD_DISTRIBUTE_INIT);
    let fsi = declare_api(&mut m, abi::OLD_FOR_STATIC_INIT);
    let fini = declare_api(&mut m, abi::OLD_FOR_STATIC_FINI);

    let mut kb = FuncBuilder::new("kernel", vec![Ty::Ptr, Ty::I64], None);
    let out = kb.param(0);
    let n = kb.param(1);
    kb.call(
        Operand::Func(init),
        vec![Operand::i64(abi::MODE_SPMD)],
        Some(Ty::I64),
    );
    let lb = kb.alloca(8);
    let ub = kb.alloca(8);
    let st = kb.alloca(8);
    kb.call(Operand::Func(dist), vec![lb, ub, st, n], None);
    let tlo = kb.load(Ty::I64, lb);
    let thi = kb.load(Ty::I64, ub);
    let tspan = kb.sub(thi, tlo);
    let lb2 = kb.alloca(8);
    let ub2 = kb.alloca(8);
    let st2 = kb.alloca(8);
    kb.call(Operand::Func(fsi), vec![lb2, ub2, st2, tspan], None);
    let lo_rel = kb.load(Ty::I64, lb2);
    let hi_rel = kb.load(Ty::I64, ub2);
    let lo = kb.add(tlo, lo_rel);
    let hi = kb.add(tlo, hi_rel);
    nzomp_ir::builder::build_counted_loop(&mut kb, lo, hi, Operand::i64(1), |kb, i| {
        let slot = kb.gep(out, i, 8);
        let v3 = kb.mul(i, Operand::i64(3));
        let v = kb.add(v3, Operand::i64(1));
        kb.store(Ty::I64, slot, v);
    });
    kb.call(Operand::Func(fini), vec![], None);
    kb.call(
        Operand::Func(deinit),
        vec![Operand::i64(abi::MODE_SPMD)],
        None,
    );
    kb.ret(None);
    let k = m.add_function(kb.finish());
    m.add_kernel(k, ExecMode::Spmd);
    m
}

const N: i64 = 500;

/// Launch a pre-linked module at `workers` threads; return the full
/// metrics cycle count and the complete global image, after asserting
/// the loop really computed `out[i] = 3*i + 1`.
fn run(m: &Module, workers: usize) -> (u64, Vec<u8>) {
    let mut dev = Device::load(m.clone(), DeviceConfig::default());
    dev.set_worker_threads(workers);
    let out = dev.alloc(8 * N as u64);
    let metrics = dev
        .launch("kernel", Launch::new(16, 32), &[RtVal::P(out), RtVal::I(N)])
        .unwrap();
    let got = dev.read_i64(out, N as usize).unwrap();
    for (i, v) in got.iter().enumerate() {
        assert_eq!(*v, 3 * i as i64 + 1, "index {i} wrong");
    }
    (metrics.cycles, dev.global_bytes().to_vec())
}

/// Both runtime flavors, release builds: identical cycles and identical
/// global images at 1 / 2 / 8 workers.
#[test]
fn runtimes_parallel_deterministic() {
    let cfg = RtConfig::default();
    for (name, m) in [
        ("modern", link_rt(modern_spmd_module(), RuntimeFlavor::Modern, &cfg)),
        ("legacy", link_rt(legacy_spmd_module(), RuntimeFlavor::Legacy, &cfg)),
    ] {
        let base = run(&m, 1);
        for workers in [2usize, 8] {
            assert_eq!(run(&m, workers), base, "{name} diverges at {workers} workers");
        }
    }
}

/// Debug builds route every runtime call through the Global-space trace
/// counter — the one shared-by-design runtime cell. Its atomic traffic
/// must merge identically too.
#[test]
fn debug_trace_counter_parallel_deterministic() {
    let cfg = RtConfig {
        debug_kind: abi::DEBUG_ASSERTIONS | abi::DEBUG_FUNCTION_TRACING,
        ..RtConfig::default()
    };
    let m = link_rt(modern_spmd_module(), RuntimeFlavor::Modern, &cfg);
    let base = run(&m, 1);
    for workers in [2usize, 8] {
        assert_eq!(
            run(&m, workers),
            base,
            "trace counter diverges at {workers} workers"
        );
    }
}
