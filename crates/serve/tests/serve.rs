//! Integration suite of the serving engine: admission order, typed
//! rejections, fair rotation, single-flight compilation, fault
//! isolation, session state, and the trace-replay determinism gate
//! across worker counts and execution tiers.

use std::rc::Rc;

use nzomp::BuildConfig;
use nzomp_front::{spmd_kernel_for, RuntimeFlavor};
use nzomp_ir::{Module, Operand, Ty};
use nzomp_serve::trace::{replay, Trace, TraceOp};
use nzomp_serve::{
    Outcome, RejectReason, ReqArg, RequestSpec, Serve, ServeConfig, ServeError, TenantConfig,
    TenantId,
};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{DeviceConfig, ExecTier, RtVal};

const N: usize = 32;

fn quick() -> DeviceConfig {
    DeviceConfig { check_assumes: false, ..DeviceConfig::default() }
}

fn launch() -> Launch {
    Launch { teams: 2, threads_per_team: 16, dyn_smem_bytes: 0 }
}

/// `out[i] = a[i] * 2 + i` — the workspace's standard clean kernel.
fn scale_app() -> Rc<Module> {
    let mut m = Module::new("serve_scale");
    spmd_kernel_for(
        &mut m,
        RuntimeFlavor::Modern,
        "k",
        &[Ty::Ptr, Ty::Ptr, Ty::I64],
        |_b, p| p[2],
        |_m, b, iv, p| {
            let pa = b.gep(p[0], iv, 8);
            let x = b.load(Ty::F64, pa);
            let two = b.fmul(x, Operand::f64(2.0));
            let i_f = b.si_to_fp(iv);
            let v = b.fadd(two, i_f);
            let po = b.gep(p[1], iv, 8);
            b.store(Ty::F64, po, v);
        },
    );
    Rc::new(m)
}

/// `out[i] = i / d` — integer division, so `d == 0` is a deterministic
/// `DivByZero` trap on every lane.
fn div_app() -> Rc<Module> {
    let mut m = Module::new("serve_div");
    spmd_kernel_for(
        &mut m,
        RuntimeFlavor::Modern,
        "d",
        &[Ty::Ptr, Ty::I64, Ty::I64],
        |_b, p| p[2],
        |_m, b, iv, p| {
            let q = b.sdiv(iv, p[1]);
            let po = b.gep(p[0], iv, 8);
            b.store(Ty::I64, po, q);
        },
    );
    Rc::new(m)
}

/// `state[i] += 1.0` — persistent session state the tenant accumulates
/// into across requests.
fn accum_app() -> Rc<Module> {
    let mut m = Module::new("serve_accum");
    spmd_kernel_for(
        &mut m,
        RuntimeFlavor::Modern,
        "acc",
        &[Ty::Ptr, Ty::I64],
        |_b, p| p[1],
        |_m, b, iv, p| {
            let ps = b.gep(p[0], iv, 8);
            let x = b.load(Ty::F64, ps);
            let v = b.fadd(x, Operand::f64(1.0));
            b.store(Ty::F64, ps, v);
        },
    );
    Rc::new(m)
}

fn input(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64) * 0.5 - 3.0).collect()
}

fn expected(input: &[f64]) -> Vec<f64> {
    input.iter().enumerate().map(|(i, x)| x * 2.0 + i as f64).collect()
}

fn scale_req(module: &Rc<Module>, inp: Rc<Vec<u8>>) -> RequestSpec {
    RequestSpec {
        module: module.clone(),
        config: BuildConfig::NewRtNoAssumptions,
        kernel: "k".into(),
        launch: launch(),
        args: vec![
            ReqArg::In(inp),
            ReqArg::Out(8 * N as u64),
            ReqArg::Scalar(RtVal::I(N as i64)),
        ],
    }
}

fn div_req(module: &Rc<Module>, divisor: i64) -> RequestSpec {
    RequestSpec {
        module: module.clone(),
        config: BuildConfig::NewRtNoAssumptions,
        kernel: "d".into(),
        launch: launch(),
        args: vec![
            ReqArg::Out(8 * N as u64),
            ReqArg::Scalar(RtVal::I(divisor)),
            ReqArg::Scalar(RtVal::I(N as i64)),
        ],
    }
}

fn cfg(devices: usize) -> ServeConfig {
    let mut c = ServeConfig::new(devices);
    c.dev_cfg = quick();
    c.worker_threads = Some(1);
    c
}

#[test]
fn completes_a_request_end_to_end() {
    let mut serve = Serve::new(cfg(2));
    let t = serve.add_tenant("t0", TenantConfig::default());
    let app = scale_app();
    let inp = Rc::new(nzomp_host::f64_bytes(&input(N)));
    let r = serve.submit(t, scale_req(&app, inp)).unwrap();
    serve.drain();
    match serve.outcome(r) {
        Some(Outcome::Completed { outputs, cycles, finished, started, .. }) => {
            assert!(*cycles > 0 && finished > started);
            let (idx, bytes) = &outputs[0];
            assert_eq!(*idx, 1, "the Out arg is kernel parameter 1");
            assert_eq!(nzomp_host::bytes_to_f64(bytes), expected(&input(N)));
        }
        o => panic!("expected completion, got {o:?}"),
    }
    let m = serve.metrics();
    assert_eq!((m.submitted, m.admitted, m.completed, m.faulted), (1, 1, 1, 0));
    assert!(m.makespan_cycles > 0);
    // The quota reservation was fully released at completion.
    assert_eq!(serve.tenant_rows()[0].peak_bytes, 8 * N as u64 * 2);
}

#[test]
fn admission_checks_run_in_documented_order() {
    // Saturation outranks backlog and quota: a request over all three
    // limits reports Saturated.
    let mut c = cfg(1);
    c.global_max_in_flight = 1;
    let mut serve = Serve::new(c);
    let t = serve.add_tenant("t0", TenantConfig::new(8 * N as u64 * 2, 1));
    let app = scale_app();
    let inp = Rc::new(nzomp_host::f64_bytes(&input(N)));
    let r0 = serve.submit(t, scale_req(&app, inp.clone())).unwrap();
    let r1 = serve.submit(t, scale_req(&app, inp.clone())).unwrap();
    assert!(matches!(
        serve.outcome(r1),
        Some(Outcome::Rejected { reason: RejectReason::Saturated { in_flight: 1, limit: 1 }, .. })
    ));

    // Backlog next: widen the global window, keep the tenant window at 1.
    let mut c = cfg(1);
    c.global_max_in_flight = 100;
    let mut serve = Serve::new(c);
    let t = serve.add_tenant("t0", TenantConfig::new(u64::MAX, 1));
    let r0b = serve.submit(t, scale_req(&app, inp.clone())).unwrap();
    let r1b = serve.submit(t, scale_req(&app, inp.clone())).unwrap();
    assert!(matches!(
        serve.outcome(r1b),
        Some(Outcome::Rejected { reason: RejectReason::TenantBacklog { in_flight: 1, limit: 1 }, .. })
    ));

    // Quota last: wide windows, tight bytes.
    let need = 8 * N as u64 * 2; // In + Out
    let mut serve = Serve::new(cfg(1));
    let t = serve.add_tenant("t0", TenantConfig::new(need + need / 2, 100));
    let r0c = serve.submit(t, scale_req(&app, inp.clone())).unwrap();
    let r1c = serve.submit(t, scale_req(&app, inp.clone())).unwrap();
    match serve.outcome(r1c) {
        Some(Outcome::Rejected { reason: RejectReason::QuotaExceeded { needed, in_use, quota }, .. }) => {
            assert_eq!((*needed, *in_use, *quota), (need, need, need + need / 2));
        }
        o => panic!("expected quota rejection, got {o:?}"),
    }

    // Rejections never disturb the admitted work.
    serve.drain();
    assert!(serve.outcome(r0c).is_some_and(Outcome::is_completed));
    let _ = (r0, r0b);
}

#[test]
fn window_reopens_after_drain() {
    let mut c = cfg(1);
    c.global_max_in_flight = 1;
    let mut serve = Serve::new(c);
    let t = serve.add_tenant("t0", TenantConfig::default());
    let app = scale_app();
    let inp = Rc::new(nzomp_host::f64_bytes(&input(N)));
    let r0 = serve.submit(t, scale_req(&app, inp.clone())).unwrap();
    let r1 = serve.submit(t, scale_req(&app, inp.clone())).unwrap();
    assert!(serve.outcome(r1).is_some_and(Outcome::is_rejected));
    serve.drain();
    // The in-flight window drained; the next request is admitted.
    let r2 = serve.submit(t, scale_req(&app, inp)).unwrap();
    serve.drain();
    assert!(serve.outcome(r0).is_some_and(Outcome::is_completed));
    assert!(serve.outcome(r2).is_some_and(Outcome::is_completed));
    assert_eq!(serve.metrics().rejected_saturated, 1);
}

#[test]
fn dispatch_rotates_fairly_over_tenants() {
    let mut c = cfg(1);
    c.seed = 0; // fairness cursor starts at tenant 0
    let mut serve = Serve::new(c);
    let a = serve.add_tenant("a", TenantConfig::default());
    let b = serve.add_tenant("b", TenantConfig::default());
    let app = scale_app();
    let inp = Rc::new(nzomp_host::f64_bytes(&input(N)));
    let mut ids = Vec::new();
    for _ in 0..3 {
        ids.push((0u32, serve.submit_at(0, a, scale_req(&app, inp.clone())).unwrap()));
    }
    for _ in 0..3 {
        ids.push((1u32, serve.submit_at(0, b, scale_req(&app, inp.clone())).unwrap()));
    }
    serve.drain();
    // Order the six requests by modeled start cycle: one device, so
    // starts are distinct, and the rotation must alternate a b a b a b
    // rather than clearing tenant a's backlog first.
    let mut by_start: Vec<(u64, u32)> = ids
        .iter()
        .map(|(tenant, r)| match serve.outcome(*r) {
            Some(Outcome::Completed { started, .. }) => (*started, *tenant),
            o => panic!("expected completion, got {o:?}"),
        })
        .collect();
    by_start.sort_unstable();
    let order: Vec<u32> = by_start.iter().map(|(_, t)| *t).collect();
    assert_eq!(order, vec![0, 1, 0, 1, 0, 1], "seeded rotation interleaves tenants");
}

#[test]
fn single_flight_compile_dedup() {
    // Six tenants submit the same module fingerprint: exactly one
    // pipeline run, five cache hits.
    let mut serve = Serve::new(cfg(2));
    let app = scale_app();
    let inp = Rc::new(nzomp_host::f64_bytes(&input(N)));
    for i in 0..6 {
        let t = serve.add_tenant(&format!("t{i}"), TenantConfig::default());
        serve.submit(t, scale_req(&app, inp.clone())).unwrap();
    }
    serve.drain();
    let stats = serve.host_stats();
    assert_eq!((stats.compile_hits, stats.compile_misses), (5, 1));
    assert_eq!(serve.metrics().completed, 6);
    // A structurally identical module through a different Rc still
    // single-flights — the cache keys on the fingerprint, not identity.
    let t = serve.add_tenant("t6", TenantConfig::default());
    serve.submit(t, scale_req(&scale_app(), inp)).unwrap();
    serve.drain();
    assert_eq!(serve.compile_stats(), (6, 1));
}

#[test]
fn faults_are_typed_and_do_not_disturb_other_tenants() {
    let mut serve = Serve::new(cfg(2));
    let good = serve.add_tenant("good", TenantConfig::default());
    let bad = serve.add_tenant("bad", TenantConfig::default());
    let scale = scale_app();
    let div = div_app();
    let inp = Rc::new(nzomp_host::f64_bytes(&input(N)));
    let rf = serve.submit(bad, div_req(&div, 0)).unwrap();
    let rg = serve.submit(good, scale_req(&scale, inp.clone())).unwrap();
    let rb2 = serve.submit(bad, div_req(&div, 3)).unwrap();
    serve.drain();
    match serve.outcome(rf) {
        Some(Outcome::Faulted { device, error, .. }) => {
            assert!(device.is_some());
            assert!(error.contains("division by zero"), "unexpected error: {error}");
        }
        o => panic!("expected fault, got {o:?}"),
    }
    // The good tenant's request and the bad tenant's *next* request both
    // complete: a trap poisons one request, not a device or a tenant.
    match serve.outcome(rg) {
        Some(Outcome::Completed { outputs, .. }) => {
            assert_eq!(nzomp_host::bytes_to_f64(&outputs[0].1), expected(&input(N)));
        }
        o => panic!("expected completion, got {o:?}"),
    }
    match serve.outcome(rb2) {
        Some(Outcome::Completed { outputs, .. }) => {
            let vals = nzomp_host::bytes_to_bits(&outputs[0].1);
            assert_eq!(vals[7], 7 / 3);
        }
        o => panic!("expected completion, got {o:?}"),
    }
    let m = serve.metrics();
    assert_eq!((m.completed, m.faulted), (2, 1));
}

#[test]
fn session_state_accumulates_across_requests() {
    let mut serve = Serve::new(cfg(1));
    let t = serve.add_tenant("t0", TenantConfig::default());
    let app = accum_app();
    let state = serve.session_map(t, vec![0u8; 8 * N]).unwrap();
    let acc_req = || RequestSpec {
        module: app.clone(),
        config: BuildConfig::NewRtNoAssumptions,
        kernel: "acc".into(),
        launch: launch(),
        args: vec![ReqArg::Session(state), ReqArg::Scalar(RtVal::I(N as i64))],
    };
    serve.submit(t, acc_req()).unwrap();
    serve.submit(t, acc_req()).unwrap();
    serve.drain();
    assert_eq!(serve.metrics().completed, 2);
    let bytes = serve.session_read(t, state).unwrap();
    assert_eq!(nzomp_host::bytes_to_f64(&bytes), vec![2.0; N], "both increments persisted");
    // Unmapping writes back and invalidates the handle.
    serve.session_unmap(t, state).unwrap();
    assert!(matches!(
        serve.session_read(t, state),
        Err(ServeError::UnknownSession { .. })
    ));
}

#[test]
fn cross_tenant_session_references_are_refused() {
    let mut serve = Serve::new(cfg(1));
    let a = serve.add_tenant("a", TenantConfig::default());
    let b = serve.add_tenant("b", TenantConfig::default());
    let sa = serve.session_map(a, vec![1u8; 64]).unwrap();
    // Tenant b cannot read, unmap, or submit against a's buffer.
    assert!(matches!(serve.session_read(b, sa), Err(ServeError::CrossTenant { owner: 0, caller: 1 })));
    assert!(matches!(serve.session_unmap(b, sa), Err(ServeError::CrossTenant { .. })));
    let spec = RequestSpec {
        module: accum_app(),
        config: BuildConfig::NewRtNoAssumptions,
        kernel: "acc".into(),
        launch: launch(),
        args: vec![ReqArg::Session(sa), ReqArg::Scalar(RtVal::I(8))],
    };
    assert!(matches!(serve.submit(b, spec), Err(ServeError::CrossTenant { .. })));
    // The refusal consumed nothing: a's state is intact and b admitted 0.
    assert_eq!(serve.session_read(a, sa).unwrap(), vec![1u8; 64]);
    assert_eq!(serve.metrics().submitted, 0);
}

#[test]
fn session_maps_are_quota_charged() {
    let mut serve = Serve::new(cfg(1));
    let t = serve.add_tenant("t0", TenantConfig::new(100, 16));
    let _s0 = serve.session_map(t, vec![0u8; 80]).unwrap();
    match serve.session_map(t, vec![0u8; 40]) {
        Err(ServeError::SessionQuota { needed: 40, in_use: 80, quota: 100, .. }) => {}
        o => panic!("expected session quota error, got {o:?}"),
    }
}

/// The tentpole determinism gate: one mixed trace — 8 tenants, 4
/// devices, clean, faulting, and quota-rejected requests, session state —
/// replays bit-identically across runs, worker counts {1, 8}, and both
/// execution tiers.
#[test]
fn trace_replays_bit_identically_across_axes() {
    let scale = scale_app();
    let div = div_app();
    let accum = accum_app();
    let inp = Rc::new(nzomp_host::f64_bytes(&input(N)));

    let mut trace = Trace::new();
    for i in 0..8 {
        // Tenant 4's backlog window and tenant 5's quota are only wide
        // enough for one request in flight — their bursts draw typed
        // backlog and quota rejections respectively.
        let cfg = match i {
            4 => TenantConfig::new(u64::MAX, 1),
            5 => TenantConfig::new(8 * N as u64 * 2, 64),
            _ => TenantConfig::default(),
        };
        trace.push(TraceOp::Tenant { name: format!("t{i}"), cfg });
    }
    // Tenants 0 and 1 carry session state.
    trace.push(TraceOp::Map { tenant: 0, bytes: vec![0u8; 8 * N] });
    trace.push(TraceOp::Map { tenant: 1, bytes: vec![0u8; 8 * N] });
    let acc_spec = |tenant: u32| RequestSpec {
        module: accum.clone(),
        config: BuildConfig::NewRtNoAssumptions,
        kernel: "acc".into(),
        launch: launch(),
        args: vec![
            ReqArg::Session(nzomp_serve::SBuf { tenant: TenantId(tenant), idx: 0 }),
            ReqArg::Scalar(RtVal::I(N as i64)),
        ],
    };
    // Six same-timestamp bursts: all eight tenants submit at once, with
    // extras that provably overrun each limit — tenant 4 doubles up past
    // its backlog window, tenant 5 past its quota, and four tenant-6
    // extras fill the global window so tenant 7's second request hits
    // saturation. Tenant 3 trips div-by-zero faults on rounds 0 and 3.
    for round in 0..6u64 {
        let at = round * 150;
        for tenant in 0..8u32 {
            let spec = match (tenant, round % 2) {
                (3, _) => div_req(&div, if round % 3 == 0 { 0 } else { 2 }),
                (0, 0) => acc_spec(0),
                (1, 1) => acc_spec(1),
                _ => scale_req(&scale, inp.clone()),
            };
            trace.push(TraceOp::Submit { at, tenant, spec });
            if tenant == 4 || tenant == 5 {
                trace.push(TraceOp::Submit { at, tenant, spec: scale_req(&scale, inp.clone()) });
            }
        }
        for tenant in [6, 6, 6, 6, 7] {
            trace.push(TraceOp::Submit { at, tenant, spec: scale_req(&scale, inp.clone()) });
        }
    }
    trace.push(TraceOp::Drain);

    let base = {
        let mut c = cfg(4);
        c.global_max_in_flight = 12;
        c
    };
    let one = replay(&trace, &base).unwrap();

    // The trace exercised every outcome class, including all three
    // typed rejection reasons.
    assert!(one.metrics.completed > 0 && one.metrics.faulted > 0, "{:?}", one.metrics);
    assert!(one.metrics.rejected_quota > 0, "{:?}", one.metrics);
    assert!(one.metrics.rejected_backlog > 0, "{:?}", one.metrics);
    assert!(one.metrics.rejected_saturated > 0, "{:?}", one.metrics);
    // Session state survived the run and is part of the snapshot.
    assert!(one.session_images[0][0].1.iter().any(|b| *b != 0));

    // Same config, second run: bit-identical.
    let two = replay(&trace, &base).unwrap();
    assert_eq!(one, two, "same-config replay must be bit-identical");

    // Worker-count axis.
    let mut w8 = base.clone();
    w8.worker_threads = Some(8);
    assert_eq!(one, replay(&trace, &w8).unwrap(), "replay differs across worker counts");

    // Exec-tier axis.
    let mut interp = base.clone();
    interp.exec_tier = Some(ExecTier::Interp);
    let mut bytecode = base.clone();
    bytecode.exec_tier = Some(ExecTier::Bytecode);
    assert_eq!(
        replay(&trace, &interp).unwrap(),
        replay(&trace, &bytecode).unwrap(),
        "replay differs across execution tiers"
    );
}
