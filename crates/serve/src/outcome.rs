//! Typed per-request outcomes and control-plane errors of the serving
//! layer. Every way a request can end — admitted and completed, admitted
//! and trapped, or refused at the door — is a value, never a panic,
//! extending the PR 1 robustness contract one layer up.

use std::fmt;

/// Why the admission controller refused a request. Checks run in the
/// documented order — global saturation, then tenant backlog, then
/// quota — so a request over several limits always reports the same
/// reason on replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The global in-flight window (queued + dispatched across every
    /// tenant) is full — fleet-wide backpressure.
    Saturated { in_flight: usize, limit: usize },
    /// The tenant's own in-flight window is full — per-tenant
    /// backpressure, so one noisy tenant cannot consume the global
    /// window.
    TenantBacklog { in_flight: usize, limit: usize },
    /// Admitting the request's buffers would exceed the tenant's
    /// byte-granular device-memory quota.
    QuotaExceeded { needed: u64, in_use: u64, quota: u64 },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Saturated { in_flight, limit } => {
                write!(f, "service saturated: {in_flight} in flight of a {limit} global window")
            }
            RejectReason::TenantBacklog { in_flight, limit } => {
                write!(f, "tenant backlog full: {in_flight} in flight of a {limit} tenant window")
            }
            RejectReason::QuotaExceeded { needed, in_use, quota } => write!(
                f,
                "quota exceeded: request needs {needed} B with {in_use} B in use of a {quota} B quota"
            ),
        }
    }
}

/// How one request ended. Exactly one outcome is recorded per
/// [`crate::ReqId`]; all times are modeled cycles on the serve clock.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Refused at admission — no device work happened, no quota was
    /// charged.
    Rejected { at: u64, reason: RejectReason },
    /// Ran to completion on `device`.
    Completed {
        device: usize,
        /// When the device started the request (admission order + device
        /// availability under the open-loop model).
        started: u64,
        /// `started + cycles` — when the quota reservation was released.
        finished: u64,
        /// Modeled kernel cycles (identical across worker counts and
        /// exec tiers by the vGPU bit-identity contract, so serve
        /// latencies replay across every axis).
        cycles: u64,
        /// `(kernel-parameter index, bytes)` of every `Out` argument.
        outputs: Vec<(usize, Vec<u8>)>,
        /// Device address of each kernel argument (`None` for scalars) —
        /// what the isolation suite checks for disjointness.
        arg_ptrs: Vec<Option<u64>>,
    },
    /// Admitted but failed: a device trap, a compile refusal, or a lost
    /// fleet. Carries the rendered [`nzomp_host::HostError`].
    Faulted {
        /// `None` when the request never reached a device (compile
        /// refusal, fleet lost).
        device: Option<usize>,
        started: u64,
        finished: u64,
        error: String,
    },
}

impl Outcome {
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed { .. })
    }

    pub fn is_rejected(&self) -> bool {
        matches!(self, Outcome::Rejected { .. })
    }

    pub fn is_faulted(&self) -> bool {
        matches!(self, Outcome::Faulted { .. })
    }
}

/// A control-plane misuse of the serving API: naming a tenant or session
/// buffer that does not exist, touching another tenant's buffer, or
/// over-mapping a session. Distinct from [`Outcome::Rejected`] — these
/// are caller bugs surfaced as typed errors, not load-dependent
/// admission decisions, so a trace that replays cleanly can never start
/// returning them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    UnknownTenant(u32),
    UnknownSession { tenant: u32, buf: u32 },
    /// A request referenced a session buffer owned by a different
    /// tenant — the namespace isolation boundary.
    CrossTenant { owner: u32, caller: u32 },
    /// `session_map` would push the tenant past its quota. Session maps
    /// are control-plane (the caller holds the handle), so the refusal
    /// is an error, unlike the per-request [`RejectReason::QuotaExceeded`]
    /// outcome.
    SessionQuota { tenant: u32, needed: u64, in_use: u64, quota: u64 },
    /// A host-runtime failure outside any request (session readback or
    /// eviction), rendered.
    Host(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            ServeError::UnknownSession { tenant, buf } => {
                write!(f, "tenant {tenant} has no session buffer {buf}")
            }
            ServeError::CrossTenant { owner, caller } => write!(
                f,
                "tenant {caller} referenced a session buffer owned by tenant {owner}"
            ),
            ServeError::SessionQuota { tenant, needed, in_use, quota } => write!(
                f,
                "tenant {tenant} session map of {needed} B exceeds quota ({in_use} B in use of {quota} B)"
            ),
            ServeError::Host(e) => write!(f, "host runtime failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}
