//! Service-wide counters — the serving analogue of
//! [`nzomp_host::RecoveryMetrics`]: plain data, `Eq`-comparable, so the
//! trace-replay determinism gate can assert bit-identity over them.

/// Everything the serving layer counts across a run. All plain `u64`s;
/// equality over the whole struct is part of the replay contract.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Requests presented to `submit`, admitted or not.
    pub submitted: u64,
    /// Requests past admission (queued or dispatched).
    pub admitted: u64,
    /// Admitted requests that ran to completion.
    pub completed: u64,
    /// Admitted requests that ended in a typed fault.
    pub faulted: u64,
    /// Rejections by reason — the three admission checks in order.
    pub rejected_saturated: u64,
    pub rejected_backlog: u64,
    pub rejected_quota: u64,
    /// Session buffers written back and unmapped to rebind a device to a
    /// different kernel image.
    pub evictions: u64,
    /// Session buffers moved between devices to follow their tenant's
    /// placement.
    pub migrations: u64,
    /// Serve-clock cycle at which `drain` retired the last request.
    pub makespan_cycles: u64,
}

impl ServeMetrics {
    /// Total typed rejections.
    pub fn rejected(&self) -> u64 {
        self.rejected_saturated + self.rejected_backlog + self.rejected_quota
    }

    /// Saturation throughput: completed requests per million modeled
    /// cycles of makespan. `None` for an empty run (no-NaN policy).
    pub fn throughput_per_mcycle(&self) -> Option<f64> {
        if self.makespan_cycles == 0 {
            return None;
        }
        Some(self.completed as f64 * 1.0e6 / self.makespan_cycles as f64)
    }
}
