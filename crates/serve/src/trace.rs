//! Request traces and the replay determinism gate.
//!
//! A [`Trace`] is the full external input of a serving run — tenant
//! registrations, session maps, timed submissions, drains. [`replay`]
//! runs one against a fresh engine and snapshots everything observable:
//! per-request outcomes, per-tenant session memory images, tenant report
//! rows, service metrics, and compile-cache counters. The determinism
//! contract is `replay(trace, cfg) == replay(trace, cfg)` — bit-identical
//! across runs, worker counts ({1, 8}), and execution tiers — which the
//! serve suites and the `serve_load` bench both assert.

use nzomp::report::ServeRow;

use crate::metrics::ServeMetrics;
use crate::outcome::{Outcome, ServeError};
use crate::session::TenantConfig;
use crate::{ReqId, RequestSpec, SBuf, Serve, ServeConfig, TenantId};

/// One externally-visible serving operation. Tenant and session-buffer
/// references are positional (registration order), so a trace is
/// self-contained and replays against a fresh engine.
#[derive(Clone, Debug)]
pub enum TraceOp {
    /// Register tenant number `len(tenants so far)`.
    Tenant { name: String, cfg: TenantConfig },
    /// Map a session buffer for tenant `tenant` (handles are issued in
    /// order: the i-th `Map` of a tenant yields `SBuf { tenant, idx: i }`).
    Map { tenant: u32, bytes: Vec<u8> },
    /// Submit a request at modeled cycle `at`.
    Submit { at: u64, tenant: u32, spec: RequestSpec },
    /// Unmap a session buffer.
    Unmap { tenant: u32, buf: u32 },
    /// Run the engine until every admitted request has retired.
    Drain,
}

/// A recorded run: the ops in submission order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub ops: Vec<TraceOp>,
}

impl Trace {
    pub fn new() -> Trace {
        Trace::default()
    }

    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }
}

/// Everything observable about one serving run. `PartialEq` over the
/// whole struct is the replay gate: two snapshots are equal iff the runs
/// were bit-identical.
#[derive(Clone, Debug, PartialEq)]
pub struct Replayed {
    /// Outcome per request, in submission order (always `Some` after the
    /// final drain; kept optional so a partial snapshot is representable).
    pub outcomes: Vec<Option<Outcome>>,
    pub metrics: ServeMetrics,
    pub rows: Vec<ServeRow>,
    /// Per tenant: `(session-buffer index, final bytes)` of every live
    /// session buffer — the device memory image of the tenant's state.
    pub session_images: Vec<Vec<(u32, Vec<u8>)>>,
    /// `(compile-cache hits, misses)` — the single-flight evidence.
    pub compile: (u64, u64),
}

/// Apply a trace to a fresh engine built from `cfg`, ending with a drain,
/// and snapshot the run. An `Err` means the trace itself is malformed
/// (references a tenant or buffer it never created) — a well-formed trace
/// can never start erroring on replay.
pub fn replay(trace: &Trace, cfg: &ServeConfig) -> Result<Replayed, ServeError> {
    let mut serve = Serve::new(cfg.clone());
    for op in &trace.ops {
        match op {
            TraceOp::Tenant { name, cfg } => {
                serve.add_tenant(name, *cfg);
            }
            TraceOp::Map { tenant, bytes } => {
                serve.session_map(TenantId(*tenant), bytes.clone())?;
            }
            TraceOp::Submit { at, tenant, spec } => {
                serve.submit_at(*at, TenantId(*tenant), spec.clone())?;
            }
            TraceOp::Unmap { tenant, buf } => {
                let t = TenantId(*tenant);
                serve.session_unmap(t, SBuf { tenant: t, idx: *buf })?;
            }
            TraceOp::Drain => serve.drain(),
        }
    }
    serve.drain();
    snapshot(&mut serve)
}

/// Snapshot a drained engine (shared by [`replay`] and live runs that
/// recorded their own trace).
pub fn snapshot(serve: &mut Serve) -> Result<Replayed, ServeError> {
    let mut session_images = Vec::with_capacity(serve.num_tenants());
    for t in 0..serve.num_tenants() {
        session_images.push(serve.session_image(TenantId(t as u32))?);
    }
    Ok(Replayed {
        outcomes: serve.outcomes().to_vec(),
        metrics: serve.metrics().clone(),
        rows: serve.tenant_rows(),
        session_images,
        compile: serve.compile_stats(),
    })
}

/// Convenience: the outcome slots a trace produced for a submission
/// index (`Submit` ops are request 0, 1, … in order).
pub fn req(i: usize) -> ReqId {
    ReqId(i as u32)
}
