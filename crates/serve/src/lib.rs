//! `nzomp-serve` — a multi-tenant offload service over [`nzomp_host`]:
//! the front door that admits target-region requests from many
//! concurrent tenants and drives them through one shared device fleet.
//!
//! The layer adds exactly what `nzomp-host` stops short of:
//!
//! * **per-tenant sessions** — namespaced buffer handles ([`SBuf`]) with
//!   byte-granular device-memory quotas; a tenant can never name, read,
//!   or collide with another tenant's memory ([`session`]);
//! * **admission control** — bounded per-tenant and global in-flight
//!   windows checked in a fixed order (saturation → backlog → quota), so
//!   every refusal is a typed [`Outcome::Rejected`], never a panic, and
//!   replays identically ([`outcome`]);
//! * **fair, least-loaded placement** — a seeded rotating cursor picks
//!   the next tenant; [`nzomp_host::Host::pick_device`] (the `sched.rs`
//!   policies, quarantine-aware) picks the device;
//! * **single-flight compilation** — every dispatch goes through the
//!   host's fingerprint-keyed compile cache, so N tenants submitting the
//!   same module cost exactly one pipeline run;
//! * **deterministic replay** — the engine is a single-threaded
//!   simulation over modeled cycles: a recorded request trace replays
//!   bit-identically (outcomes, session memory images, metrics) across
//!   runs, worker counts, and execution tiers ([`trace`]).
//!
//! Time is *modeled*: the serve clock advances only through request
//! submit timestamps and kernel cycle counts, exactly like the host
//! runtime's makespan model, which is what makes every decision — and
//! therefore every latency percentile — replayable. See
//! `docs/serving.md` for the architecture and the determinism argument.

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod metrics;
pub mod outcome;
pub mod session;
pub mod trace;

use std::collections::BTreeMap;
use std::rc::Rc;

use nzomp::report::{percentile, ServeRow};
use nzomp::BuildConfig;
use nzomp_host::{
    BufId, Host, HostError, HostStats, ImageId, KArg, MapKind, MapSpec, SchedPolicy, StreamId,
};
use nzomp_ir::Module;
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{DeviceConfig, ExecTier, RtVal};

pub use metrics::ServeMetrics;
pub use outcome::{Outcome, RejectReason, ServeError};
pub use session::TenantConfig;

use session::{Session, SessionBuf};

/// Handle of a registered tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

/// Handle of a submitted request — the index into [`Serve::outcomes`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u32);

/// Handle of a session-mapped buffer. Carries its owner so cross-tenant
/// references are structurally detectable before any host call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SBuf {
    pub tenant: TenantId,
    pub idx: u32,
}

/// One kernel argument of a request, in kernel-parameter order.
#[derive(Clone, Debug)]
pub enum ReqArg {
    /// `map(to:)` input bytes. `Rc` so recorded traces share storage
    /// with the live submission.
    In(Rc<Vec<u8>>),
    /// `map(from:)` output of this many bytes, returned in
    /// [`Outcome::Completed`].
    Out(u64),
    /// `map(alloc:)` device-only scratch of this many bytes.
    Scratch(u64),
    /// A firstprivate scalar.
    Scalar(RtVal),
    /// A session buffer mapped `tofrom` for the request and left
    /// device-resident afterwards — the tenant's persistent state.
    Session(SBuf),
}

impl ReqArg {
    /// Device bytes this argument charges against the tenant's quota at
    /// admission. Session buffers were charged when mapped.
    fn quota_bytes(&self) -> u64 {
        match self {
            ReqArg::In(b) => b.len() as u64,
            ReqArg::Out(n) | ReqArg::Scratch(n) => *n,
            ReqArg::Scalar(_) | ReqArg::Session(_) => 0,
        }
    }
}

/// One target-region request: which kernel of which module to run, with
/// which arguments.
#[derive(Clone, Debug)]
pub struct RequestSpec {
    pub module: Rc<Module>,
    pub config: BuildConfig,
    pub kernel: String,
    pub launch: Launch,
    pub args: Vec<ReqArg>,
}

/// Service-wide knobs fixed at construction.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Devices in the fleet.
    pub devices: usize,
    pub dev_cfg: DeviceConfig,
    /// Placement policy over non-quarantined slots.
    pub policy: SchedPolicy,
    /// Queued + dispatched requests across every tenant — the global
    /// backpressure window.
    pub global_max_in_flight: usize,
    /// Seeds the fairness cursor and the host's stream-drain schedule.
    pub seed: u64,
    /// Pin every device's worker-thread count (the `NZOMP_VGPU_THREADS`
    /// axis); `None` leaves env resolution in charge.
    pub worker_threads: Option<usize>,
    /// Pin every device's execution tier (the `NZOMP_EXEC_TIER` axis).
    pub exec_tier: Option<ExecTier>,
}

impl ServeConfig {
    pub fn new(devices: usize) -> ServeConfig {
        ServeConfig {
            devices,
            dev_cfg: DeviceConfig::default(),
            policy: SchedPolicy::LeastLoaded,
            global_max_in_flight: 64,
            seed: 0x5e12_7e00,
            worker_threads: None,
            exec_tier: None,
        }
    }
}

/// A dispatched request awaiting its modeled completion: the prebuilt
/// outcome plus what completing it must release.
struct Active {
    req: ReqId,
    tenant: TenantId,
    /// Quota bytes reserved at admission, released at completion.
    bytes: u64,
    submitted_at: u64,
    outcome: Outcome,
}

/// The serving engine. Single-threaded and deterministic by
/// construction: requests execute in admission order, time is modeled,
/// and the only scheduling freedom — which tenant goes next, which
/// device hosts it — is derived from the seed and the load counters.
pub struct Serve {
    host: Host,
    cfg: ServeConfig,
    sessions: Vec<Session>,
    /// Admitted-but-undispatched specs by request id.
    specs: Vec<Option<(TenantId, RequestSpec, u64, u64)>>,
    outcomes: Vec<Option<Outcome>>,
    /// Dispatched requests keyed by `(modeled finish cycle, dispatch
    /// sequence)` — the deterministic completion order.
    active: BTreeMap<(u64, u32), Active>,
    seq: u32,
    /// Modeled cycle each device becomes free.
    dev_free: Vec<u64>,
    /// Image currently bound per device (`None` until first dispatch).
    dev_image: Vec<Option<ImageId>>,
    /// Session buffers resident per device.
    residents: Vec<Vec<SBuf>>,
    /// Fair-share rotation cursor over tenants.
    cursor: usize,
    /// The serve clock, in modeled cycles.
    clock: u64,
    stream: StreamId,
    metrics: ServeMetrics,
}

impl Serve {
    pub fn new(cfg: ServeConfig) -> Serve {
        let mut host = Host::new(cfg.dev_cfg.clone(), cfg.devices);
        host.set_policy(cfg.policy);
        host.set_drain_seed(cfg.seed);
        if let Some(w) = cfg.worker_threads {
            host.set_worker_threads(w);
        }
        if let Some(t) = cfg.exec_tier {
            host.set_exec_tier(t);
        }
        let stream = host.stream();
        let devices = cfg.devices;
        Serve {
            host,
            sessions: Vec::new(),
            specs: Vec::new(),
            outcomes: Vec::new(),
            active: BTreeMap::new(),
            seq: 0,
            dev_free: vec![0; devices],
            dev_image: vec![None; devices],
            residents: vec![Vec::new(); devices],
            cursor: cfg.seed as usize,
            clock: 0,
            stream,
            metrics: ServeMetrics::default(),
            cfg,
        }
    }

    // ---- tenants and sessions -------------------------------------------

    /// Register a tenant with its quota and backlog limits.
    pub fn add_tenant(&mut self, name: &str, cfg: TenantConfig) -> TenantId {
        self.sessions.push(Session::new(name.to_string(), cfg));
        TenantId((self.sessions.len() - 1) as u32)
    }

    pub fn num_tenants(&self) -> usize {
        self.sessions.len()
    }

    fn session(&self, t: TenantId) -> Result<&Session, ServeError> {
        self.sessions.get(t.0 as usize).ok_or(ServeError::UnknownTenant(t.0))
    }

    fn session_mut(&mut self, t: TenantId) -> Result<&mut Session, ServeError> {
        self.sessions.get_mut(t.0 as usize).ok_or(ServeError::UnknownTenant(t.0))
    }

    /// Map persistent session state: host bytes the tenant's requests can
    /// reference via [`ReqArg::Session`] across many submissions. Charged
    /// against the quota until [`Serve::session_unmap`]. Device residency
    /// is lazy — established by the first dispatched request that names
    /// the buffer.
    pub fn session_map(&mut self, t: TenantId, bytes: Vec<u8>) -> Result<SBuf, ServeError> {
        let len = bytes.len() as u64;
        let s = self.session(t)?;
        if s.used_bytes.saturating_add(len) > s.cfg.mem_quota {
            return Err(ServeError::SessionQuota {
                tenant: t.0,
                needed: len,
                in_use: s.used_bytes,
                quota: s.cfg.mem_quota,
            });
        }
        let buf = self.host.register_bytes(bytes);
        let s = self.session_mut(t)?;
        s.charge(len);
        s.bufs.push(SessionBuf { buf, len, resident: None, unmapped: false });
        let idx = (s.bufs.len() - 1) as u32;
        Ok(SBuf { tenant: t, idx })
    }

    fn sbuf_info(&self, caller: TenantId, sb: SBuf) -> Result<(BufId, u64, Option<usize>), ServeError> {
        if sb.tenant != caller {
            return Err(ServeError::CrossTenant { owner: sb.tenant.0, caller: caller.0 });
        }
        let s = self.session(caller)?;
        match s.bufs.get(sb.idx as usize) {
            Some(b) if !b.unmapped => Ok((b.buf, b.len, b.resident)),
            _ => Err(ServeError::UnknownSession { tenant: caller.0, buf: sb.idx }),
        }
    }

    /// Current bytes of a session buffer — the device copy when resident,
    /// the host copy otherwise. Non-destructive (the map survives).
    pub fn session_read(&mut self, t: TenantId, sb: SBuf) -> Result<Vec<u8>, ServeError> {
        let (buf, len, resident) = self.sbuf_info(t, sb)?;
        match resident {
            Some(dev) => self
                .host
                .read_present(dev, buf, 0, len)
                .map_err(|e| ServeError::Host(e.to_string())),
            None => self
                .host
                .buf_bytes(buf)
                .map(|b| b.to_vec())
                .map_err(|e| ServeError::Host(e.to_string())),
        }
    }

    /// Write back (if resident), unmap, and release the quota charge of a
    /// session buffer.
    pub fn session_unmap(&mut self, t: TenantId, sb: SBuf) -> Result<(), ServeError> {
        let (buf, len, resident) = self.sbuf_info(t, sb)?;
        if let Some(dev) = resident {
            self.evict(dev, buf, len).map_err(|e| ServeError::Host(e.to_string()))?;
            if let Some(r) = self.residents.get_mut(dev) {
                r.retain(|x| *x != sb);
            }
        }
        let s = self.session_mut(t)?;
        s.release(len);
        if let Some(b) = s.bufs.get_mut(sb.idx as usize) {
            b.resident = None;
            b.unmapped = true;
        }
        Ok(())
    }

    // ---- submission and admission ---------------------------------------

    /// Submit at the current serve clock.
    pub fn submit(&mut self, t: TenantId, spec: RequestSpec) -> Result<ReqId, ServeError> {
        let now = self.clock;
        self.submit_at(now, t, spec)
    }

    /// Submit a request at modeled cycle `at` (clamped forward to the
    /// serve clock — time never rewinds). Admission checks run in fixed
    /// order: global saturation, tenant backlog, tenant quota. The
    /// returned id always gains exactly one [`Outcome`]; only API misuse
    /// (unknown tenant, foreign session buffer) is an `Err`.
    pub fn submit_at(&mut self, at: u64, t: TenantId, spec: RequestSpec) -> Result<ReqId, ServeError> {
        // Control-plane validation first: a malformed request is a typed
        // error, not an outcome.
        self.session(t)?;
        for a in &spec.args {
            if let ReqArg::Session(sb) = a {
                self.sbuf_info(t, *sb)?;
            }
        }
        let now = at.max(self.clock);
        self.advance(now);

        let req = ReqId(self.outcomes.len() as u32);
        self.outcomes.push(None);
        self.specs.push(None);
        self.metrics.submitted += 1;
        if let Some(s) = self.sessions.get_mut(t.0 as usize) {
            s.submitted += 1;
        }

        // 1. Global saturation.
        let global_in_flight =
            self.active.len() + self.sessions.iter().map(|s| s.queued.len()).sum::<usize>();
        if global_in_flight >= self.cfg.global_max_in_flight {
            return Ok(self.reject(
                req,
                t,
                now,
                RejectReason::Saturated { in_flight: global_in_flight, limit: self.cfg.global_max_in_flight },
            ));
        }
        // 2. Tenant backlog.
        let (in_flight, limit, used, quota) = {
            let s = self.session(t)?;
            (s.in_flight(), s.cfg.max_in_flight, s.used_bytes, s.cfg.mem_quota)
        };
        if in_flight >= limit {
            return Ok(self.reject(req, t, now, RejectReason::TenantBacklog { in_flight, limit }));
        }
        // 3. Quota.
        let needed: u64 = spec.args.iter().map(ReqArg::quota_bytes).sum();
        if used.saturating_add(needed) > quota {
            return Ok(self.reject(
                req,
                t,
                now,
                RejectReason::QuotaExceeded { needed, in_use: used, quota },
            ));
        }

        self.metrics.admitted += 1;
        if let Some(slot) = self.specs.get_mut(req.0 as usize) {
            *slot = Some((t, spec, now, needed));
        }
        if let Some(s) = self.sessions.get_mut(t.0 as usize) {
            s.charge(needed);
            s.queued.push_back(req);
        }
        self.pump(now);
        Ok(req)
    }

    fn reject(&mut self, req: ReqId, t: TenantId, at: u64, reason: RejectReason) -> ReqId {
        match &reason {
            RejectReason::Saturated { .. } => {
                self.metrics.rejected_saturated += 1;
                if let Some(s) = self.sessions.get_mut(t.0 as usize) {
                    s.rejected_saturated += 1;
                }
            }
            RejectReason::TenantBacklog { .. } => {
                self.metrics.rejected_backlog += 1;
                if let Some(s) = self.sessions.get_mut(t.0 as usize) {
                    s.rejected_backlog += 1;
                }
            }
            RejectReason::QuotaExceeded { .. } => {
                self.metrics.rejected_quota += 1;
                if let Some(s) = self.sessions.get_mut(t.0 as usize) {
                    s.rejected_quota += 1;
                }
            }
        }
        if let Some(o) = self.outcomes.get_mut(req.0 as usize) {
            *o = Some(Outcome::Rejected { at, reason });
        }
        req
    }

    // ---- the modeled-time engine ----------------------------------------

    /// Retire every dispatched request whose modeled finish is ≤ `t`,
    /// pumping the queues as device slots free up, then move the clock
    /// to `t`.
    fn advance(&mut self, t: u64) {
        while let Some((&(fin, _), _)) = self.active.first_key_value() {
            if fin > t {
                break;
            }
            let Some(((fin, _), done)) = self.active.pop_first() else {
                break;
            };
            self.clock = self.clock.max(fin);
            self.complete(done);
            let now = self.clock;
            self.pump(now);
        }
        self.clock = self.clock.max(t);
    }

    fn complete(&mut self, done: Active) {
        if let Some(s) = self.sessions.get_mut(done.tenant.0 as usize) {
            s.release(done.bytes);
            s.active = s.active.saturating_sub(1);
            match &done.outcome {
                Outcome::Completed { finished, .. } => {
                    s.completed += 1;
                    s.latencies.push(finished.saturating_sub(done.submitted_at));
                    self.metrics.completed += 1;
                }
                Outcome::Faulted { .. } => {
                    s.faulted += 1;
                    self.metrics.faulted += 1;
                }
                Outcome::Rejected { .. } => {}
            }
        }
        if let Some(o) = self.outcomes.get_mut(done.req.0 as usize) {
            *o = Some(done.outcome);
        }
    }

    /// Dispatch queued requests while device slots are free, rotating
    /// fairly over tenants from the seeded cursor. With the whole fleet
    /// quarantined every queued request faults out — typed, terminal,
    /// and drain always terminates.
    fn pump(&mut self, now: u64) {
        let n = self.sessions.len();
        if n == 0 {
            return;
        }
        if self.host.live_devices() == 0 {
            let queued: Vec<(TenantId, ReqId)> = self
                .sessions
                .iter_mut()
                .enumerate()
                .flat_map(|(t, s)| {
                    s.queued.drain(..).map(move |r| (TenantId(t as u32), r)).collect::<Vec<_>>()
                })
                .collect();
            for (t, r) in queued {
                if let Some(s) = self.sessions.get_mut(t.0 as usize) {
                    s.active += 1;
                }
                self.fault(r, t, None, now, "fleet lost: every device is quarantined".to_string());
            }
            return;
        }
        while self.active.len() < self.host.live_devices() {
            let mut picked = None;
            for k in 0..n {
                let t = (self.cursor + k) % n;
                if self.sessions.get(t).is_some_and(|s| !s.queued.is_empty()) {
                    picked = Some(t);
                    break;
                }
            }
            let Some(t) = picked else { break };
            self.cursor = (t + 1) % n;
            let Some(req) = self.sessions.get_mut(t).and_then(|s| {
                s.active += 1;
                s.queued.pop_front()
            }) else {
                break;
            };
            self.dispatch(req, TenantId(t as u32), now);
        }
    }

    /// Record a terminal fault for `req` as an immediately-retiring
    /// active entry, so quota release and counters flow through the one
    /// completion path.
    fn fault(&mut self, req: ReqId, t: TenantId, device: Option<usize>, now: u64, error: String) {
        let (submitted_at, bytes) = self
            .specs
            .get(req.0 as usize)
            .and_then(|s| s.as_ref())
            .map_or((now, 0), |(_, _, at, b)| (*at, *b));
        let seq = self.seq;
        self.seq += 1;
        self.active.insert(
            (now, seq),
            Active {
                req,
                tenant: t,
                bytes,
                submitted_at,
                outcome: Outcome::Faulted { device, started: now, finished: now, error },
            },
        );
    }

    // ---- dispatch: the request's actual device work ---------------------

    /// Run one admitted request end-to-end on the host runtime. Device
    /// work executes *now* in admission order (which is what keeps the
    /// engine deterministic); only the completion — quota release and
    /// outcome publication — is deferred to the modeled finish cycle.
    fn dispatch(&mut self, req: ReqId, t: TenantId, now: u64) {
        let Some((_, spec, _, _)) = self.specs.get(req.0 as usize).and_then(|s| s.clone()) else {
            self.fault(req, t, None, now, "internal: dispatched request has no spec".to_string());
            return;
        };
        // Single-flight compile: the host cache keys on the module
        // fingerprint + config, so every tenant after the first hits.
        let img = match self.host.load_image((*spec.module).clone(), spec.config) {
            Ok(i) => i,
            Err(e) => {
                self.fault(req, t, None, now, e.to_string());
                return;
            }
        };
        let Some(dev) = self.host.pick_device() else {
            self.fault(req, t, None, now, "fleet lost: every device is quarantined".to_string());
            return;
        };
        if let Err(e) = self.make_resident(dev, img) {
            self.fault(req, t, Some(dev), now, e.to_string());
            return;
        }
        match self.run_on_device(req, t, dev, &spec, now) {
            Ok(()) => {}
            Err(e) => self.fault(req, t, Some(dev), now, e.to_string()),
        }
    }

    /// Ensure `dev` runs `img`, writing back and evicting every resident
    /// session buffer first when the image changes (a rebind resets the
    /// device's present table and memory).
    fn make_resident(&mut self, dev: usize, img: ImageId) -> Result<(), HostError> {
        if self.dev_image.get(dev).copied().flatten() == Some(img) && !self.host.quarantined(dev) {
            return Ok(());
        }
        let residents = self.residents.get_mut(dev).map(std::mem::take).unwrap_or_default();
        for sb in residents {
            let Some((buf, len)) = self
                .sessions
                .get(sb.tenant.0 as usize)
                .and_then(|s| s.bufs.get(sb.idx as usize))
                .map(|b| (b.buf, b.len))
            else {
                continue;
            };
            self.evict(dev, buf, len)?;
            if let Some(b) = self
                .sessions
                .get_mut(sb.tenant.0 as usize)
                .and_then(|s| s.bufs.get_mut(sb.idx as usize))
            {
                b.resident = None;
            }
        }
        self.host.bind_image(dev, img)?;
        if let Some(slot) = self.dev_image.get_mut(dev) {
            *slot = Some(img);
        }
        Ok(())
    }

    /// Write a resident buffer back to its host storage and unmap it.
    fn evict(&mut self, dev: usize, buf: BufId, len: u64) -> Result<(), HostError> {
        self.host.data_exit(self.stream, dev, &[MapSpec::whole(buf, len, MapKind::ToFrom)])?;
        self.host.sync()?;
        self.metrics.evictions += 1;
        Ok(())
    }

    fn run_on_device(
        &mut self,
        req: ReqId,
        t: TenantId,
        dev: usize,
        spec: &RequestSpec,
        now: u64,
    ) -> Result<(), HostError> {
        // Migrate session arguments resident on another device first —
        // residency is exclusive, and the writeback must complete before
        // this device's entries fix the memory layout.
        for a in &spec.args {
            if let ReqArg::Session(sb) = a {
                let Ok((buf, len, resident)) = self.sbuf_info(t, *sb) else { continue };
                if let Some(d2) = resident {
                    if d2 != dev {
                        self.evict(d2, buf, len)?;
                        self.metrics.evictions -= 1; // counted as a migration instead
                        self.metrics.migrations += 1;
                        if let Some(r) = self.residents.get_mut(d2) {
                            r.retain(|x| x != sb);
                        }
                        if let Some(b) = self
                            .sessions
                            .get_mut(t.0 as usize)
                            .and_then(|s| s.bufs.get_mut(sb.idx as usize))
                        {
                            b.resident = None;
                        }
                    }
                }
            }
        }

        // Enter maps in kernel-argument order — device memory layout is
        // part of the replay contract, exactly like `enqueue_region`.
        let mut kargs: Vec<KArg> = Vec::with_capacity(spec.args.len());
        let mut exits: Vec<MapSpec> = Vec::new();
        let mut outs: Vec<(usize, BufId)> = Vec::new();
        for (i, a) in spec.args.iter().enumerate() {
            match a {
                ReqArg::In(bytes) => {
                    let len = bytes.len() as u64;
                    let b = self.host.register_bytes((**bytes).clone());
                    self.host.data_enter(self.stream, dev, &[MapSpec::whole(b, len, MapKind::To)])?;
                    exits.push(MapSpec::whole(b, len, MapKind::Release));
                    kargs.push(KArg::Buf(b));
                }
                ReqArg::Out(len) => {
                    let b = self.host.register_zeros(*len);
                    self.host.data_enter(self.stream, dev, &[MapSpec::whole(b, *len, MapKind::From)])?;
                    exits.push(MapSpec::whole(b, *len, MapKind::From));
                    outs.push((i, b));
                    kargs.push(KArg::Buf(b));
                }
                ReqArg::Scratch(len) => {
                    let b = self.host.register_zeros(*len);
                    self.host.data_enter(self.stream, dev, &[MapSpec::whole(b, *len, MapKind::Alloc)])?;
                    exits.push(MapSpec::whole(b, *len, MapKind::Release));
                    kargs.push(KArg::Buf(b));
                }
                ReqArg::Scalar(v) => kargs.push(KArg::Val(*v)),
                ReqArg::Session(sb) => {
                    let Ok((buf, len, resident)) = self.sbuf_info(t, *sb) else {
                        kargs.push(KArg::Val(RtVal::I(0)));
                        continue;
                    };
                    if resident != Some(dev) {
                        self.host
                            .data_enter(self.stream, dev, &[MapSpec::whole(buf, len, MapKind::ToFrom)])?;
                        if let Some(r) = self.residents.get_mut(dev) {
                            r.push(*sb);
                        }
                        if let Some(b) = self
                            .sessions
                            .get_mut(t.0 as usize)
                            .and_then(|s| s.bufs.get_mut(sb.idx as usize))
                        {
                            b.resident = Some(dev);
                        }
                    }
                    kargs.push(KArg::Buf(buf));
                }
            }
        }

        // The device addresses behind each argument, captured while the
        // maps are live — the isolation evidence in the outcome.
        let arg_ptrs: Vec<Option<u64>> = kargs
            .iter()
            .map(|k| match k {
                KArg::Buf(b) | KArg::BufAt(b, _) => self.host.dev_addr(dev, *b, 0).ok().map(|p| p.0),
                KArg::Val(_) => None,
            })
            .collect();

        let ticket = self.host.enqueue_launch(self.stream, dev, &spec.kernel, spec.launch, &kargs)?;
        self.host.data_exit(self.stream, dev, &exits)?;

        // Drain to completion. A trap aborts the drain with the rest of
        // the request's ops still queued; keep draining so device memory
        // is released and the streams are empty for the next dispatch —
        // the first error is the request's fault.
        let mut first_err: Option<String> = None;
        let mut fuel = 0u32;
        loop {
            match self.host.sync() {
                Ok(()) => break,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e.to_string());
                    }
                    fuel += 1;
                    if fuel > 100_000 {
                        break;
                    }
                }
            }
        }

        let started = now.max(self.dev_free.get(dev).copied().unwrap_or(0));
        let (submitted_at, bytes) = self
            .specs
            .get(req.0 as usize)
            .and_then(|s| s.as_ref())
            .map_or((now, 0), |(_, _, at, b)| (*at, *b));
        let outcome = match (self.host.take_metrics(ticket), first_err) {
            (Ok(m), None) => {
                let finished = started + m.cycles;
                let outputs = outs
                    .iter()
                    .map(|(i, b)| (*i, self.host.buf_bytes(*b).map(|x| x.to_vec()).unwrap_or_default()))
                    .collect();
                Outcome::Completed {
                    device: dev,
                    started,
                    finished,
                    cycles: m.cycles,
                    outputs,
                    arg_ptrs,
                }
            }
            (Ok(_), Some(e)) => {
                Outcome::Faulted { device: Some(dev), started, finished: started, error: e }
            }
            (Err(e), first) => Outcome::Faulted {
                device: Some(dev),
                started,
                finished: started,
                error: first.unwrap_or_else(|| e.to_string()),
            },
        };
        let finished = match &outcome {
            Outcome::Completed { finished, .. } | Outcome::Faulted { finished, .. } => *finished,
            Outcome::Rejected { at, .. } => *at,
        };
        if let Some(f) = self.dev_free.get_mut(dev) {
            *f = finished;
        }
        let seq = self.seq;
        self.seq += 1;
        self.active.insert((finished, seq), Active { req, tenant: t, bytes, submitted_at, outcome });
        Ok(())
    }

    // ---- draining and observability -------------------------------------

    /// Run the engine until every admitted request has an outcome,
    /// recording the makespan. Always terminates: every dispatch — clean,
    /// trapped, or fleet-lost — retires through the active set.
    pub fn drain(&mut self) {
        loop {
            if let Some((&(fin, _), _)) = self.active.first_key_value() {
                self.advance(fin);
                continue;
            }
            if self.sessions.iter().any(|s| !s.queued.is_empty()) {
                let now = self.clock;
                self.pump(now);
                continue;
            }
            break;
        }
        self.metrics.makespan_cycles = self.clock;
    }

    /// The serve clock, in modeled cycles.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The outcome of a request — `None` while still queued or in flight.
    pub fn outcome(&self, r: ReqId) -> Option<&Outcome> {
        self.outcomes.get(r.0 as usize).and_then(|o| o.as_ref())
    }

    /// Every outcome slot, by request id.
    pub fn outcomes(&self) -> &[Option<Outcome>] {
        &self.outcomes
    }

    /// The host runtime's consolidated counters (compile cache,
    /// recovery, per-device load) — the single-flight evidence.
    pub fn host_stats(&self) -> HostStats {
        self.host.stats()
    }

    /// `(hits, misses)` of the shared compile cache.
    pub fn compile_stats(&self) -> (u64, u64) {
        self.host.compile_stats()
    }

    /// Per-tenant report rows (sorted-latency percentiles, peak quota
    /// footprint) for [`nzomp::report::serve_table`].
    pub fn tenant_rows(&self) -> Vec<ServeRow> {
        self.sessions
            .iter()
            .map(|s| {
                let mut lat = s.latencies.clone();
                lat.sort_unstable();
                ServeRow {
                    tenant: s.name.clone(),
                    submitted: s.submitted,
                    completed: s.completed,
                    faulted: s.faulted,
                    rejected_quota: s.rejected_quota,
                    rejected_backlog: s.rejected_backlog,
                    rejected_saturated: s.rejected_saturated,
                    p50_cycles: percentile(&lat, 50.0).unwrap_or(0),
                    p99_cycles: percentile(&lat, 99.0).unwrap_or(0),
                    peak_bytes: s.peak_bytes,
                }
            })
            .collect()
    }

    /// Tenant names in registration order.
    pub fn tenant_names(&self) -> Vec<String> {
        self.sessions.iter().map(|s| s.name.clone()).collect()
    }

    /// Final bytes of every live session buffer of `t` — the per-tenant
    /// device memory image the replay contract compares.
    pub fn session_image(&mut self, t: TenantId) -> Result<Vec<(u32, Vec<u8>)>, ServeError> {
        let live: Vec<u32> = self
            .session(t)?
            .bufs
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.unmapped)
            .map(|(i, _)| i as u32)
            .collect();
        let mut out = Vec::with_capacity(live.len());
        for idx in live {
            let bytes = self.session_read(t, SBuf { tenant: t, idx })?;
            out.push((idx, bytes));
        }
        Ok(out)
    }
}
