//! Per-tenant session state: the namespaced present-table view, the
//! byte-granular quota ledger, and the tenant's slice of every service
//! counter.

use std::collections::VecDeque;

use nzomp_host::BufId;

use crate::ReqId;

/// Per-tenant limits fixed at registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantConfig {
    /// Device bytes the tenant may hold at once: session maps plus the
    /// buffer footprint of every in-flight request.
    pub mem_quota: u64,
    /// Queued + dispatched requests the tenant may have at once.
    pub max_in_flight: usize,
}

impl TenantConfig {
    pub fn new(mem_quota: u64, max_in_flight: usize) -> TenantConfig {
        TenantConfig { mem_quota, max_in_flight }
    }
}

impl Default for TenantConfig {
    /// Effectively unlimited — tests and benches tighten what they probe.
    fn default() -> TenantConfig {
        TenantConfig { mem_quota: u64::MAX, max_in_flight: usize::MAX }
    }
}

/// One session-mapped buffer: host storage registered with the host
/// runtime plus where (if anywhere) it currently lives on a device.
pub(crate) struct SessionBuf {
    pub buf: BufId,
    pub len: u64,
    /// Device index the buffer is currently mapped on. Residency is
    /// lazy — established by the first dispatched request that names the
    /// buffer — and exclusive: migrating writes back and unmaps first.
    pub resident: Option<usize>,
    pub unmapped: bool,
}

/// One tenant: quota ledger, session buffers, admission queue, and
/// outcome counters. The namespace boundary is structural — a tenant's
/// requests can only name `SBuf` handles this session issued, and the
/// engine validates ownership before any host call.
pub(crate) struct Session {
    pub name: String,
    pub cfg: TenantConfig,
    /// Bytes currently charged: live session maps + in-flight request
    /// reservations.
    pub used_bytes: u64,
    pub peak_bytes: u64,
    pub bufs: Vec<SessionBuf>,
    /// Admitted requests not yet dispatched, oldest first.
    pub queued: VecDeque<ReqId>,
    /// Dispatched requests whose modeled completion has not arrived.
    pub active: usize,
    pub submitted: u64,
    pub completed: u64,
    pub faulted: u64,
    pub rejected_saturated: u64,
    pub rejected_backlog: u64,
    pub rejected_quota: u64,
    /// Modeled submit→finish latency of every completed request, in
    /// admission order (sorted only at report time).
    pub latencies: Vec<u64>,
}

impl Session {
    pub fn new(name: String, cfg: TenantConfig) -> Session {
        Session {
            name,
            cfg,
            used_bytes: 0,
            peak_bytes: 0,
            bufs: Vec::new(),
            queued: VecDeque::new(),
            active: 0,
            submitted: 0,
            completed: 0,
            faulted: 0,
            rejected_saturated: 0,
            rejected_backlog: 0,
            rejected_quota: 0,
            latencies: Vec::new(),
        }
    }

    /// Queued + dispatched — what the per-tenant backlog check limits.
    pub fn in_flight(&self) -> usize {
        self.queued.len() + self.active
    }

    /// Charge `bytes` against the quota, tracking the high-water mark.
    pub fn charge(&mut self, bytes: u64) {
        self.used_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.used_bytes);
    }

    /// Release a prior charge (never underflows — a release without a
    /// matching charge is an engine bug we refuse to turn into a wrap).
    pub fn release(&mut self, bytes: u64) {
        self.used_bytes = self.used_bytes.saturating_sub(bytes);
    }
}
