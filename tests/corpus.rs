//! Corpus conventions and the differential execution harness shared by the
//! `corpus_suite` / `ir_fuzz` tests and the `ir_fuzz` bench binary.
//!
//! A corpus file (`tests/corpus/*.nzir`) is the strict versioned text
//! format: a `; nzomp-ir vN` header, then (for generated kernels) a
//! `; launch ...` metadata comment the runner uses to re-launch the kernel.
//! Two families:
//! * `gen-<seed>.nzir` — exactly `generate(seed)` printed; reproducible
//!   from the file name alone.
//! * `proxy-<name>.nzir` — the linked, unoptimized module of a real proxy
//!   (replayed through the proxy's own `prepare()`).
//!
//! Bless flow (like the goldens): `NZOMP_BLESS=1 cargo test -q --test
//! corpus_suite` rewrites every file; the suite fails if a file drifts
//! from its generator.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;

use crate::gen::{generate, GenModule, LaunchMeta};
use nzomp_ir::printer::print_module;
use nzomp_ir::Module;
use nzomp_opt::{optimize_module, Ablation, PassOptions};
use nzomp_proxies::quick_device;
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{DevPtr, Device, ExecError, ExecTier, KernelMetrics, RtVal};

/// The pinned seeds behind `gen-<seed>.nzir`. Twenty edge-case kernels;
/// together with the five proxy exports the corpus holds 25 entries.
pub const GEN_SEEDS: [u64; 20] = [
    1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007, 1008, 1009, 1010, 1011, 1012, 1013, 1014,
    1015, 1016, 1017, 1018, 1019,
];

/// Worker-thread axes every corpus kernel is replayed on.
pub const WORKER_AXES: [usize; 2] = [1, 8];

/// Execution-tier axes: every corpus kernel is replayed on the reference
/// interpreter and on the bytecode tier, and the outcomes must be
/// bit-identical — output bits, the whole global image, traps, metrics
/// (including fuel-equivalent dispatch counts), and sanitizer verdicts.
pub const EXEC_TIERS: [ExecTier; 2] = [ExecTier::Interp, ExecTier::Bytecode];

pub fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// The on-disk text of a generated corpus entry: printed module with the
/// launch metadata comment spliced in right after the version header.
pub fn gen_corpus_text(g: &GenModule) -> String {
    let printed = print_module(&g.module);
    match printed.split_once('\n') {
        Some((header, rest)) => format!("{header}\n{}\n{rest}", g.launch_comment()),
        None => printed,
    }
}

/// `(slug, options)` for all nine pipeline variants (none, baseline, full,
/// and each Fig. 13 ablation) — the same matrix the goldens pin.
pub fn all_variants() -> Vec<(String, PassOptions)> {
    let mut v = vec![
        ("none".to_string(), PassOptions::none()),
        ("baseline".to_string(), PassOptions::baseline()),
        ("full".to_string(), PassOptions::full()),
    ];
    for ab in Ablation::ALL {
        let slug = match ab {
            Ablation::Fsaa => "no-fsaa",
            Ablation::ReachDom => "no-reach-dom",
            Ablation::AssumedContent => "no-assumed-content",
            Ablation::InvariantProp => "no-invariant-prop",
            Ablation::AlignedExec => "no-aligned-exec",
            Ablation::BarrierElim => "no-barrier-elim",
        };
        v.push((slug.to_string(), PassOptions::full_without(ab)));
    }
    v
}

/// The cheap two-variant matrix the checked-in corpus is replayed under.
pub fn corpus_variants() -> Vec<(String, PassOptions)> {
    vec![
        ("none".to_string(), PassOptions::none()),
        ("full".to_string(), PassOptions::full()),
    ]
}

/// Everything observable about one generated-kernel launch.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    pub result: Result<KernelMetrics, ExecError>,
    /// Raw bits of the output region (`out_slots` 8-byte words).
    pub out_bits: Vec<u64>,
    /// Full device global-memory image.
    pub global: Vec<u8>,
    /// Sanitizer verdict `(races, divergences)` — must be `(0, 0)`.
    pub san_counts: (u64, u64),
}

/// Launch a generated kernel once with the sanitizer armed and capture the
/// outcome. Returns `Err` on harness-level failures (bad meta, read OOB).
pub fn run_generated(
    m: &Module,
    meta: LaunchMeta,
    workers: usize,
    tier: ExecTier,
) -> Result<RunOutcome, String> {
    let mut dev = Device::load(m.clone(), quick_device());
    dev.set_sanitize(true);
    dev.set_worker_threads(workers);
    dev.set_exec_tier(tier);
    let buf = dev.alloc(meta.buf_bytes);
    let result = dev.launch(
        "k",
        Launch::new(meta.teams, meta.threads),
        &[RtVal::P(buf)],
    );
    let out_bits = if result.is_ok() {
        dev.read_f64(DevPtr(buf.0 + meta.out_off), meta.out_slots)
            .map_err(|e| format!("reading out region: {e}"))?
            .iter()
            .map(|v| v.to_bits())
            .collect()
    } else {
        Vec::new()
    };
    Ok(RunOutcome {
        result,
        out_bits,
        global: dev.global_bytes().to_vec(),
        san_counts: dev.sanitizer_counts(),
    })
}

/// The full differential contract for one generated module:
///
/// 1. it verifies;
/// 2. `parse(print(m)) == m` exactly (strict mode);
/// 3. under every optimization variant it still verifies, never traps, and
///    the sanitizer stays clean;
/// 4. within a variant, every worker count *and every execution tier*
///    produces the *identical* outcome — output bits, metrics (including
///    the per-step dispatch count, i.e. fuel), and the entire global
///    image;
/// 5. across variants, the output bits agree (metrics and non-output
///    memory may legitimately differ — optimization removes work).
///
/// Returns a description of the first divergence, or `Ok(())`.
pub fn differential_check(
    g: &GenModule,
    variants: &[(String, PassOptions)],
    workers: &[usize],
) -> Result<(), String> {
    let name = &g.module.name;
    nzomp_ir::verify_module(&g.module).map_err(|e| format!("{name}: verify: {e}"))?;
    let text = print_module(&g.module);
    let back =
        nzomp_ir::parse_module_strict(&text).map_err(|e| format!("{name}: reparse: {e}"))?;
    if back != g.module {
        return Err(format!("{name}: parse(print(m)) != m"));
    }
    let meta = LaunchMeta {
        teams: g.teams,
        threads: g.threads,
        buf_bytes: g.buf_bytes,
        out_off: g.out_off,
        out_slots: g.out_slots,
    };
    let mut baseline_bits: Option<(String, Vec<u64>)> = None;
    for (slug, opts) in variants {
        let mut vm = g.module.clone();
        let _remarks = optimize_module(&mut vm, opts);
        nzomp_ir::verify_module(&vm)
            .map_err(|e| format!("{name} [{slug}]: verify after opt: {e}"))?;
        let mut first: Option<(String, RunOutcome)> = None;
        for &tier in &EXEC_TIERS {
            for &w in workers {
                let axis = format!("{tier:?}/{w}w");
                let o = run_generated(&vm, meta, w, tier)?;
                if o.san_counts != (0, 0) {
                    return Err(format!(
                        "{name} [{slug}] @{axis}: sanitizer reported {:?}",
                        o.san_counts
                    ));
                }
                if let Err(e) = &o.result {
                    return Err(format!("{name} [{slug}] @{axis}: trapped: {e}"));
                }
                match &first {
                    None => first = Some((axis, o)),
                    Some((a0, o0)) => {
                        if o0 != &o {
                            return Err(format!(
                                "{name} [{slug}]: outcome diverges between {a0} and {axis}"
                            ));
                        }
                    }
                }
            }
        }
        if let Some((_, o)) = first {
            match &baseline_bits {
                None => baseline_bits = Some((slug.clone(), o.out_bits)),
                Some((s0, bits)) => {
                    if bits != &o.out_bits {
                        return Err(format!(
                            "{name}: output bits diverge between [{s0}] and [{slug}]"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Convenience used by the fuzz bench bin and smoke tests: run the whole
/// contract for a seed on the default axes.
pub fn fuzz_one(seed: u64, variants: &[(String, PassOptions)]) -> Result<(), String> {
    let g = generate(seed);
    differential_check(&g, variants, &WORKER_AXES)
}
