//! Remarks-order golden: the full `-Rpass=openmp-opt` stream for every
//! proxy under the full §IV pipeline, pinned against a committed snapshot.
//!
//! [`Remarks::normalize`] sorts and dedups the stream after the pipeline
//! finishes, so the emission order of individual passes (including
//! hash-map iteration inside fold) can never leak into diagnostics. This
//! test is the pin: if remark order ever becomes nondeterministic again,
//! two consecutive runs of the suite disagree with the snapshot.
//!
//! Re-bless (only for an intentional remark change) with:
//!
//! ```sh
//! NZOMP_BLESS=1 cargo test -q --test remarks_snapshot
//! ```

use std::fs;
use std::path::PathBuf;

use nzomp::pipeline::compile_with;
use nzomp::BuildConfig;
use nzomp_proxies::{all_proxies, build_for_config};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens/remarks-full.txt")
}

/// Render the remark stream of every proxy compiled with the full §IV
/// pipeline, in proxy order, with a `== name ==` header per proxy.
fn render_all() -> String {
    let cfg = BuildConfig::NewRtNoAssumptions;
    let mut out = String::new();
    for p in all_proxies() {
        let compiled =
            compile_with(build_for_config(p.as_ref(), cfg), cfg, cfg.rt_config(), cfg.pass_options())
                .unwrap_or_else(|e| panic!("{}: compile failed: {e}", p.name()));
        out.push_str(&format!("== {} ==\n{}", p.name(), compiled.remarks));
    }
    out
}

#[test]
fn remark_stream_is_deterministic_and_matches_snapshot() {
    // Two independent compiles must agree exactly — catches any residual
    // hash-order nondeterminism regardless of the snapshot's freshness.
    let first = render_all();
    let second = render_all();
    assert_eq!(first, second, "remark stream differs between two identical runs");

    let path = golden_path();
    if std::env::var("NZOMP_BLESS").is_ok_and(|v| v == "1") {
        fs::write(&path, &first).unwrap();
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing snapshot {} ({e}); run with NZOMP_BLESS=1 to capture", path.display())
    });
    assert_eq!(
        first, want,
        "remark stream diverged from the committed snapshot; only bless if intentional"
    );
}

#[test]
fn remark_stream_is_sorted_and_deduplicated() {
    let cfg = BuildConfig::NewRtNoAssumptions;
    for p in all_proxies() {
        let compiled =
            compile_with(build_for_config(p.as_ref(), cfg), cfg, cfg.rt_config(), cfg.pass_options())
                .unwrap_or_else(|e| panic!("{}: compile failed: {e}", p.name()));
        let entries = &compiled.remarks.entries;
        for w in entries.windows(2) {
            let key = |r: &nzomp_opt::Remark| {
                (r.func.clone(), r.pass, r.kind as u8, r.message.clone())
            };
            assert!(
                key(&w[0]) <= key(&w[1]),
                "{}: remarks out of order: {} then {}",
                p.name(),
                w[0],
                w[1]
            );
            assert!(
                key(&w[0]) != key(&w[1]),
                "{}: duplicate remark survived normalize: {}",
                p.name(),
                w[0]
            );
        }
    }
}
