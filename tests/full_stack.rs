//! Full-stack integration: every proxy app under every build
//! configuration, verified against host references, plus the qualitative
//! orderings the paper's evaluation establishes.

use nzomp::BuildConfig;
use nzomp_proxies::{all_proxies, quick_device, run_config, RunError};

#[test]
fn every_proxy_verifies_under_every_config() {
    for proxy in all_proxies() {
        for cfg in BuildConfig::ALL {
            match run_config(proxy.as_ref(), cfg, &quick_device()) {
                Ok(_) | Err(RunError::NotApplicable) => {}
                Err(e) => panic!("{} under {cfg:?}: {e}", proxy.name()),
            }
        }
    }
}

/// The optimized modern runtime retains no shared state on any proxy
/// (the "SMem 0" rows of Fig. 11).
#[test]
fn optimized_new_rt_has_zero_smem_everywhere() {
    for proxy in all_proxies() {
        let r = run_config(proxy.as_ref(), BuildConfig::NewRtNoAssumptions, &quick_device())
            .unwrap_or_else(|e| panic!("{}: {e}", proxy.name()));
        assert_eq!(r.metrics.smem_bytes, 0, "{}", proxy.name());
        assert_eq!(r.metrics.runtime_calls, 0, "{}", proxy.name());
    }
}

/// The nightly (baseline-pipeline) modern runtime keeps its full state —
/// the regression the paper observed in LLVM nightly.
#[test]
fn nightly_new_rt_keeps_full_state() {
    for proxy in all_proxies() {
        let r = run_config(proxy.as_ref(), BuildConfig::NewRtNightly, &quick_device())
            .unwrap_or_else(|e| panic!("{}: {e}", proxy.name()));
        assert_eq!(r.metrics.smem_bytes, 11304, "{}", proxy.name());
    }
}

/// Optimized OpenMP lands within 15% of CUDA on every proxy (the paper:
/// "oftentimes we can closely match the CUDA implementation").
#[test]
fn optimized_openmp_close_to_cuda() {
    for proxy in all_proxies() {
        let omp = run_config(proxy.as_ref(), BuildConfig::NewRtNoAssumptions, &quick_device())
            .unwrap()
            .metrics;
        let cuda = run_config(proxy.as_ref(), BuildConfig::Cuda, &quick_device())
            .unwrap()
            .metrics;
        let ratio = omp.cycles as f64 / cuda.cycles as f64;
        assert!(
            ratio < 1.15,
            "{}: OpenMP {} vs CUDA {} cycles ({ratio:.3}x)",
            proxy.name(),
            omp.cycles,
            cuda.cycles
        );
    }
}

/// The optimized configurations beat both nightly configurations on every
/// proxy (Fig. 10's overall shape).
#[test]
fn full_pipeline_beats_nightly_everywhere() {
    for proxy in all_proxies() {
        let old = run_config(proxy.as_ref(), BuildConfig::OldRtNightly, &quick_device())
            .unwrap()
            .metrics
            .time_ms;
        let nightly = run_config(proxy.as_ref(), BuildConfig::NewRtNightly, &quick_device())
            .unwrap()
            .metrics
            .time_ms;
        let new = run_config(proxy.as_ref(), BuildConfig::NewRtNoAssumptions, &quick_device())
            .unwrap()
            .metrics
            .time_ms;
        assert!(new < old, "{}: new {new} !< old {old}", proxy.name());
        assert!(new < nightly, "{}: new {new} !< nightly {nightly}", proxy.name());
    }
}

/// Identical results across configurations (same FP association, same
/// iteration-to-thread mapping): the lowering is semantics-preserving.
#[test]
fn all_configs_agree_bitwise_on_xsbench() {
    use nzomp_proxies::xsbench::XSBench;
    use nzomp_proxies::{build_for_config, Proxy};
    use nzomp_vgpu::Device;

    let p = XSBench::small();
    let mut outputs: Vec<Vec<f64>> = Vec::new();
    for cfg in BuildConfig::ALL {
        let out = nzomp::compile(build_for_config(&p, cfg), cfg).unwrap();
        let mut dev = Device::load(out.module, quick_device());
        let prep = p.prepare(&mut dev);
        dev.launch(p.kernel_name(), prep.launch, &prep.args).unwrap();
        outputs.push(dev.read_f64(prep.out_ptr, prep.expected.len()).unwrap());
    }
    for w in outputs.windows(2) {
        assert_eq!(w[0], w[1], "configs disagree bitwise");
    }
}
