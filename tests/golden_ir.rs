//! Refactor-equivalence goldens: the printed optimized IR of every proxy
//! under every pipeline variant (none, baseline, full, and each Fig. 13
//! ablation) is pinned bit-for-bit against committed `.ll` files.
//!
//! The goldens were captured from the pre-pass-manager optimizer, so this
//! suite is the proof that the pass-manager refactor preserves behavior
//! exactly — not "equivalent output", *identical* output.
//!
//! Re-bless (only for an intentional optimizer change) with:
//!
//! ```sh
//! NZOMP_BLESS=1 cargo test -q --test golden_ir
//! ```

use std::fs;
use std::path::PathBuf;

use nzomp::pipeline::compile_with;
use nzomp::BuildConfig;
use nzomp_opt::{Ablation, PassOptions};
use nzomp_proxies::{all_proxies, build_for_config};

/// `(file-slug, options)` for all nine pipeline variants.
fn variants() -> Vec<(String, PassOptions)> {
    let mut v = vec![
        ("none".to_string(), PassOptions::none()),
        ("baseline".to_string(), PassOptions::baseline()),
        ("full".to_string(), PassOptions::full()),
    ];
    for ab in Ablation::ALL {
        let slug = match ab {
            Ablation::Fsaa => "no-fsaa",
            Ablation::ReachDom => "no-reach-dom",
            Ablation::AssumedContent => "no-assumed-content",
            Ablation::InvariantProp => "no-invariant-prop",
            Ablation::AlignedExec => "no-aligned-exec",
            Ablation::BarrierElim => "no-barrier-elim",
        };
        v.push((slug.to_string(), PassOptions::full_without(ab)));
    }
    v
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens/opt_ir")
}

#[test]
fn optimized_ir_matches_goldens_for_every_proxy_and_variant() {
    let bless = std::env::var("NZOMP_BLESS").is_ok_and(|v| v == "1");
    let dir = golden_dir();
    if bless {
        fs::create_dir_all(&dir).unwrap();
    }
    let cfg = BuildConfig::NewRtNoAssumptions;
    let mut failures = Vec::new();
    for p in all_proxies() {
        for (slug, opts) in variants() {
            let out = compile_with(build_for_config(p.as_ref(), cfg), cfg, cfg.rt_config(), opts)
                .unwrap_or_else(|e| panic!("{} [{slug}]: compile failed: {e}", p.name()));
            let printed = nzomp_ir::printer::print_module(&out.module);
            let path = dir.join(format!("{}-{slug}.ll", p.name().to_lowercase()));
            if bless {
                fs::write(&path, &printed).unwrap();
                continue;
            }
            let want = fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!("missing golden {} ({e}); run with NZOMP_BLESS=1 to capture", path.display())
            });
            if printed != want {
                failures.push(format!("{} [{slug}]", p.name()));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "optimized IR diverged from pre-refactor goldens for: {failures:?}\n\
         (diff the golden against fresh output; only bless if the change is intentional)"
    );
}
