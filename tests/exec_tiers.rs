//! Execution-tier equivalence pins (see `docs/exec-tiers.md`).
//!
//! The bytecode tier's contract is *bit-identity* with the reference
//! interpreter: same output bits, same global image, same metrics (cycles,
//! instructions, per-step dispatch counts — i.e. fuel), same typed traps
//! at the same (team, thread), and same sanitizer verdicts. The corpus
//! suite replays clean kernels across tiers; this file pins the *unclean*
//! half of the contract:
//!
//! * 50 seeded fault campaigns per tier — `FaultPlan` launch-entry polls
//!   must fire at identical op counts, so the injected trap, the partial
//!   memory image, and every counter agree across tiers;
//! * the host watchdog fuel check — both tiers charge exactly one fuel
//!   unit per dispatched op, so a budget of N dispatches N ops and then
//!   traps identically;
//! * the trap taxonomy — malformed IR embedded as lowered trap ops must
//!   surface the interpreter's exact message.

use nzomp_ir::{ExecMode, FuncBuilder, Module, Operand, Ty};
use nzomp_integration::gen::generate;
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{
    Device, DeviceConfig, ExecError, ExecTier, FaultPlan, KernelMetrics, RtVal, TrapKind,
};

const TIERS: [ExecTier; 2] = [ExecTier::Interp, ExecTier::Bytecode];

/// Everything observable about one faulted launch.
#[derive(Debug, PartialEq)]
struct Observed {
    result: Result<KernelMetrics, ExecError>,
    global: Vec<u8>,
    san_counts: (u64, u64),
}

/// Run a generated corpus kernel (one pointer arg into a fresh buffer)
/// under an armed fault plan with the sanitizer on, and capture everything.
fn observe(
    m: &Module,
    launch: Launch,
    buf_bytes: u64,
    plan: &FaultPlan,
    workers: usize,
    tier: ExecTier,
) -> Observed {
    let mut dev = Device::load(m.clone(), DeviceConfig::default());
    dev.set_exec_tier(tier);
    dev.set_worker_threads(workers);
    dev.set_sanitize(true);
    dev.set_fault_plan(plan.clone());
    let buf = dev.alloc(buf_bytes);
    let result = dev.launch("k", launch, &[RtVal::P(buf)]);
    Observed {
        result,
        global: dev.global_bytes().to_vec(),
        san_counts: dev.sanitizer_counts(),
    }
}

/// 50 seeded fault campaigns, replayed on both tiers at 1 and 8 workers:
/// the typed trap (or clean metrics), the whole memory image, and the
/// sanitizer verdict must be identical. Fault sites trigger on the
/// per-thread step clock — both tiers tick it once per dispatched op, so
/// a campaign that corrupts the 57th load or drops the 3rd barrier
/// arrival does so at the same point in both executions.
#[test]
fn seeded_fault_campaigns_replay_identically_across_tiers() {
    let mut trapped = 0usize;
    for campaign in 0..50u64 {
        // Rotate through the pinned generator seeds so campaigns land in
        // structurally different kernels (loops, calls, barriers, malloc).
        let g = generate(1000 + campaign % 20);
        let launch = Launch::new(g.teams, g.threads);
        let plan = FaultPlan::from_seed(campaign, g.teams, g.threads);
        for workers in [1usize, 8] {
            let base = observe(&g.module, launch, g.buf_bytes, &plan, workers, ExecTier::Interp);
            let bc = observe(&g.module, launch, g.buf_bytes, &plan, workers, ExecTier::Bytecode);
            assert_eq!(
                base, bc,
                "campaign {campaign} @{workers} workers diverged across tiers"
            );
            if workers == 1 && base.result.is_err() {
                trapped += 1;
            }
        }
    }
    // The matrix must actually exercise the trap paths, not just clean runs.
    assert!(trapped >= 10, "campaigns barely fire ({trapped}/50)");
}

/// The watchdog pin: a spin kernel under watchdog fuel `n` dispatches
/// exactly `n` ops on *both* tiers before trapping `FuelExhausted` — the
/// fuel check sits at the identical point in both dispatch loops.
#[test]
fn watchdog_fuel_fires_at_identical_op_counts() {
    let mut m = Module::new("spin");
    let mut b = FuncBuilder::new("spin", vec![], None);
    let lo = b.new_block();
    b.br(lo);
    b.switch_to(lo);
    b.br(lo);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    nzomp_ir::verify_module(&m).unwrap();

    for fuel in [1u64, 2, 3, 17, 100] {
        let mut per_tier = Vec::new();
        for tier in TIERS {
            let mut dev = Device::load(m.clone(), DeviceConfig::default());
            dev.set_exec_tier(tier);
            dev.set_watchdog_fuel(Some(fuel));
            let err = dev.launch("spin", Launch::new(1, 1), &[]).unwrap_err();
            assert_eq!(
                err.kind,
                TrapKind::FuelExhausted,
                "watchdog {fuel} on {tier:?}"
            );
            per_tier.push(err);
        }
        assert_eq!(per_tier[0], per_tier[1], "watchdog {fuel} diverged");
    }

    // Clean termination consumes the identical fuel: dispatch counts (one
    // per fuel unit) and instruction counts agree across tiers.
    let g = generate(1004);
    let launch = Launch::new(g.teams, g.threads);
    let mut seen = Vec::new();
    for tier in TIERS {
        let mut dev = Device::load(g.module.clone(), DeviceConfig::default());
        dev.set_exec_tier(tier);
        let buf = dev.alloc(g.buf_bytes);
        let m = dev.launch("k", launch, &[RtVal::P(buf)]).unwrap();
        assert!(m.dispatched > 0, "{tier:?}: no dispatch accounting");
        seen.push((m.dispatched, m.instructions, m.cycles));
    }
    assert_eq!(seen[0], seen[1], "fuel accounting diverged across tiers");
}

/// The host runtime pins the tier across recovery: a device-loss campaign
/// whose journal replays on a replacement device must produce the same
/// outcome on both tiers — and the two tiers must agree with each other.
#[test]
fn host_recovery_replays_on_the_pinned_tier() {
    use nzomp::BuildConfig;
    use nzomp_host::{Host, RecoveryPolicy, StreamId};
    use nzomp_proxies::{all_proxies, build_for_config, quick_device};

    let cfg = BuildConfig::NewRtNoAssumptions;
    let proxies = all_proxies();
    let p = proxies.first().expect("at least one proxy");
    let mut failovers = 0u64;
    for seed in [11u64, 23, 47, 91] {
        let mut outcomes = Vec::new();
        for tier in TIERS {
            let mut host = Host::new(quick_device(), 2);
            host.set_worker_threads(1);
            host.set_exec_tier(tier);
            host.set_recovery(Some(RecoveryPolicy {
                max_failovers: 16,
                ..RecoveryPolicy::default()
            }));
            let img = host.load_image(build_for_config(p.as_ref(), cfg), cfg).unwrap();
            let hp = p.host_prepare();
            for dev in 0..2 {
                host.bind_image(dev, img).unwrap();
                host.set_device_faults(dev, FaultPlan::device_campaign(seed ^ dev as u64))
                    .unwrap();
            }
            let streams: Vec<StreamId> = vec![host.stream()];
            let region = host
                .enqueue_region(&streams, img, p.kernel_name(), hp.launch, hp.args)
                .unwrap();
            host.sync()
                .unwrap_or_else(|e| panic!("{tier:?} seed {seed}: recovery failed: {e}"));
            let result = host
                .ticket_result(region.ticket)
                .unwrap()
                .expect("launch op never executed")
                .clone();
            let dev = host.device(region.device).expect("region device is loaded");
            failovers += host.recovery_metrics().failovers;
            outcomes.push((result, dev.global_bytes().to_vec()));
        }
        assert_eq!(
            outcomes[0], outcomes[1],
            "seed {seed}: recovered outcome diverged across tiers"
        );
    }
    assert!(failovers > 0, "no campaign forced a failover");
}

/// Malformed IR the verifier rejects still degrades to the *same* typed
/// trap message on both tiers: lowering embeds the interpreter's exact
/// `MalformedIr` strings as trap ops at the same execution points.
#[test]
fn malformed_ir_message_is_tier_invariant() {
    // A phi with no incoming for the taken edge (the trap-matrix shape).
    let mut m = Module::new("mal");
    let mut b = FuncBuilder::new("mal", vec![], None);
    let tid = b.thread_id();
    let never = b.icmp_eq(tid, Operand::i64(-1));
    let t = b.new_block();
    let join = b.new_block();
    b.cond_br(never, t, join);
    b.switch_to(t);
    b.br(join);
    b.switch_to(join);
    let _ = b.phi(Ty::I64, vec![(t, Operand::i64(1))]);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    assert!(nzomp_ir::verify_module(&m).is_err());

    let mut errs = Vec::new();
    for tier in TIERS {
        let mut dev = Device::load(m.clone(), DeviceConfig::default());
        dev.set_exec_tier(tier);
        let err = dev.launch("mal", Launch::new(1, 1), &[]).unwrap_err();
        assert_eq!(
            err.kind,
            TrapKind::MalformedIr("phi %2 in @mal bb2 missing incoming for bb0".into()),
            "{tier:?}"
        );
        errs.push(err);
    }
    assert_eq!(errs[0], errs[1]);
}
