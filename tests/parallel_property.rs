//! Property tests for the parallel team engine and the IR text format.
//!
//! 1. **Sequential/parallel agreement**: random small kernels —
//!    straight-line arithmetic, global atomics (add/min/max, i64 and
//!    f64), aligned barriers — produce bit-identical global memory and
//!    identical metrics at any worker-thread count.
//! 2. **Printer/parser round-trip**: `parse(print(m)) == m` structurally,
//!    for random kernels and for every compiled proxy module.

use nzomp_ir::inst::AtomicOp;
use nzomp_ir::parser::parse_module;
use nzomp_ir::printer::print_module;
use nzomp_ir::{ExecMode, FuncBuilder, Module, Operand, Ty};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, RtVal};
use proptest::prelude::*;

/// One statement of a random straight-line kernel. The running value `r`
/// starts as `gid as f64`; every statement is total and deterministic.
#[derive(Clone, Debug)]
enum Stmt {
    /// `r = r + c`
    FAdd(f64),
    /// `r = r * c`
    FMul(f64),
    /// `cells_i[k] +=atomic gid + c`
    AtomicAddI(u8, i64),
    /// `cells_i[k] =atomic min(cells_i[k], gid * 13 % 29 - gid)`
    AtomicMinI(u8),
    /// `cells_i[k] =atomic max(...)` (same mixed value)
    AtomicMaxI(u8),
    /// `cells_f[k] +=atomic r` — f64, order-sensitive bits
    AtomicAddF(u8),
    /// `aligned_barrier()` — all threads, straight-line, so always legal
    Barrier,
}

const NCELLS: u8 = 4;
/// Buffer layout: 4 i64 cells, 4 f64 cells, then `out[gid]`.
const OUT_BASE: i64 = (NCELLS as i64) * 8 * 2;

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (-4.0f64..4.0).prop_map(Stmt::FAdd),
        (-2.0f64..2.0).prop_map(Stmt::FMul),
        (0..NCELLS, -5i64..5).prop_map(|(k, c)| Stmt::AtomicAddI(k, c)),
        (0..NCELLS).prop_map(Stmt::AtomicMinI),
        (0..NCELLS).prop_map(Stmt::AtomicMaxI),
        (0..NCELLS).prop_map(Stmt::AtomicAddF),
        Just(Stmt::Barrier),
    ]
}

fn build_random_kernel(stmts: &[Stmt]) -> Module {
    let mut m = Module::new("par_prop");
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let buf = b.param(0);
    let tid = b.thread_id();
    let team = b.block_id();
    let dim = b.block_dim();
    let base = b.mul(team, dim);
    let gid = b.add(base, tid);
    let g13 = b.mul(gid, Operand::i64(13));
    let md = b.srem(g13, Operand::i64(29));
    let mixed = b.sub(md, gid);
    let mut r = b.si_to_fp(gid);
    for s in stmts {
        match *s {
            Stmt::FAdd(c) => r = b.fadd(r, Operand::f64(c)),
            Stmt::FMul(c) => r = b.fmul(r, Operand::f64(c)),
            Stmt::AtomicAddI(k, c) => {
                let v = b.add(gid, Operand::i64(c));
                let p = b.ptr_add(buf, Operand::i64(k as i64 * 8));
                b.atomic_add(Ty::I64, p, v);
            }
            Stmt::AtomicMinI(k) => {
                let p = b.ptr_add(buf, Operand::i64(k as i64 * 8));
                b.atomic(AtomicOp::Min, Ty::I64, p, mixed);
            }
            Stmt::AtomicMaxI(k) => {
                let p = b.ptr_add(buf, Operand::i64(k as i64 * 8));
                b.atomic(AtomicOp::Max, Ty::I64, p, mixed);
            }
            Stmt::AtomicAddF(k) => {
                let p = b.ptr_add(buf, Operand::i64((NCELLS as i64 + k as i64) * 8));
                b.atomic(AtomicOp::Add, Ty::F64, p, r);
            }
            Stmt::Barrier => b.aligned_barrier(),
        }
    }
    let goff = b.mul(gid, Operand::i64(8));
    let out_base = b.ptr_add(buf, Operand::i64(OUT_BASE));
    let po = b.ptr_add(out_base, goff);
    b.store(Ty::F64, po, r);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    m
}

/// Run the kernel and capture (metrics-or-trap, full global image).
fn run(
    m: Module,
    teams: u32,
    threads: u32,
    workers: usize,
) -> (Result<nzomp_vgpu::KernelMetrics, nzomp_vgpu::ExecError>, Vec<u8>) {
    let cfg = DeviceConfig {
        check_assumes: false,
        ..DeviceConfig::default()
    };
    let mut dev = Device::load(m, cfg);
    dev.set_worker_threads(workers);
    let buf = dev.alloc(OUT_BASE as u64 + 8 * (teams * threads) as u64);
    let mut init = vec![0i64; NCELLS as usize];
    // Seed the min/max cells away from 0 so the atomics do real work.
    init[1] = i64::MAX;
    init[2] = i64::MIN;
    dev.write_i64(buf, &init).unwrap();
    let result = dev.launch("k", Launch::new(teams, threads), &[RtVal::P(buf)]);
    let global = dev.global_bytes().to_vec();
    (result, global)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random kernels agree bit for bit between sequential execution and
    /// every parallel worker count — full global image and all metrics.
    #[test]
    fn random_kernels_sequential_parallel_agree(
        stmts in prop::collection::vec(arb_stmt(), 1..16),
        teams in 2u32..10,
        threads in 1u32..8,
    ) {
        let (base_res, base_mem) = run(build_random_kernel(&stmts), teams, threads, 1);
        for workers in [2usize, 4, 8] {
            let (res, mem) = run(build_random_kernel(&stmts), teams, threads, workers);
            prop_assert_eq!(&base_res, &res, "metrics diverge @{} workers", workers);
            prop_assert_eq!(&base_mem, &mem, "global memory diverges @{} workers", workers);
        }
    }

    /// The IR text format round-trips structurally: `parse(print(m)) == m`.
    #[test]
    fn printer_parser_roundtrip_random_kernels(
        stmts in prop::collection::vec(arb_stmt(), 1..16),
    ) {
        let m = build_random_kernel(&stmts);
        let text = print_module(&m);
        let back = parse_module(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- text ---\n{text}"));
        prop_assert_eq!(&back, &m, "structural round-trip mismatch");
    }
}

/// Round-trip over every fully compiled proxy module — the kitchen-sink
/// case: linked runtime, control flow, globals, intrinsics. Optimization
/// leaves holes in the instruction arena and the parser renumbers ids, so
/// equality here is *semantic*: the printed text is a fixed point, and
/// the reparsed module executes bit-identically to the original.
#[test]
fn printer_parser_roundtrip_compiled_proxies() {
    use nzomp::BuildConfig;
    use nzomp_proxies::{all_proxies, compile_for_config, quick_device};
    for p in all_proxies() {
        let m = compile_for_config(p.as_ref(), BuildConfig::NewRtNoAssumptions)
            .unwrap()
            .module;
        let text = print_module(&m);
        let back = parse_module(&text)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", p.name()));
        // `back` has dense, parser-assigned ids; one more round must be a
        // structural fixed point: parse(print(back)) == back.
        let text2 = print_module(&back);
        let back2 = parse_module(&text2)
            .unwrap_or_else(|e| panic!("{}: re-reparse failed: {e}", p.name()));
        assert_eq!(
            back2,
            back,
            "{}: normalized module is not a parse/print fixed point",
            p.name()
        );

        let run = |m: Module| {
            let mut dev = Device::load(m, quick_device());
            let prep = p.prepare(&mut dev);
            dev.launch(p.kernel_name(), prep.launch, &prep.args).unwrap();
            dev.read_f64(prep.out_ptr, prep.expected.len())
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u64>>()
        };
        assert_eq!(
            run(back),
            run(m),
            "{}: reparsed module executes differently",
            p.name()
        );
    }
}
