//! Property-based tests over the whole stack: randomized programs and
//! launch geometries, checking the invariants the system promises.

use nzomp_front::{cuda, spmd_kernel_for, RuntimeFlavor};
use nzomp_ir::{BinOp, Module, Operand, Ty, UnOp};
use nzomp_opt::{optimize_module, PassOptions};
use nzomp_rt::{build_runtime, RtConfig};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, RtVal};
use proptest::prelude::*;

fn quick() -> DeviceConfig {
    DeviceConfig {
        check_assumes: false,
        ..DeviceConfig::default()
    }
}

/// A tiny expression language for random kernel bodies: `out[i] =
/// eval(expr, a[i], i)` with deterministic, total operations.
#[derive(Clone, Debug)]
enum Expr {
    Input,          // a[i]
    Index,          // i as f64
    Const(f64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Sqrt(Box<Expr>),
    Min(Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::Input),
        Just(Expr::Index),
        (-4.0f64..4.0).prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            inner.clone().prop_map(|a| Expr::Sqrt(a.into())),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Min(a.into(), b.into())),
        ]
    })
}

fn eval_host(e: &Expr, x: f64, i: f64) -> f64 {
    match e {
        Expr::Input => x,
        Expr::Index => i,
        Expr::Const(c) => *c,
        Expr::Add(a, b) => eval_host(a, x, i) + eval_host(b, x, i),
        Expr::Sub(a, b) => eval_host(a, x, i) - eval_host(b, x, i),
        Expr::Mul(a, b) => eval_host(a, x, i) * eval_host(b, x, i),
        Expr::Sqrt(a) => eval_host(a, x, i).sqrt(),
        Expr::Min(a, b) => {
            let (a, b) = (eval_host(a, x, i), eval_host(b, x, i));
            a.min(b)
        }
    }
}

fn emit_expr(b: &mut nzomp_ir::FuncBuilder, e: &Expr, x: Operand, i_f: Operand) -> Operand {
    match e {
        Expr::Input => x,
        Expr::Index => i_f,
        Expr::Const(c) => Operand::f64(*c),
        Expr::Add(a, c) => {
            let (va, vb) = (emit_expr(b, a, x, i_f), emit_expr(b, c, x, i_f));
            b.fadd(va, vb)
        }
        Expr::Sub(a, c) => {
            let (va, vb) = (emit_expr(b, a, x, i_f), emit_expr(b, c, x, i_f));
            b.fsub(va, vb)
        }
        Expr::Mul(a, c) => {
            let (va, vb) = (emit_expr(b, a, x, i_f), emit_expr(b, c, x, i_f));
            b.fmul(va, vb)
        }
        Expr::Sqrt(a) => {
            let v = emit_expr(b, a, x, i_f);
            b.un(UnOp::Sqrt, Ty::F64, v)
        }
        Expr::Min(a, c) => {
            let (va, vb) = (emit_expr(b, a, x, i_f), emit_expr(b, c, x, i_f));
            b.bin(BinOp::FMin, Ty::F64, va, vb)
        }
    }
}

fn build_kernel(e: &Expr, omp: bool) -> Module {
    let mut m = Module::new("prop");
    let body = |_m: &mut Module, b: &mut nzomp_ir::FuncBuilder, iv: Operand, p: &[Operand]| {
        let pa = b.gep(p[0], iv, 8);
        let x = b.load(Ty::F64, pa);
        let i_f = b.si_to_fp(iv);
        let v = emit_expr(b, e, x, i_f);
        let po = b.gep(p[1], iv, 8);
        b.store(Ty::F64, po, v);
    };
    if omp {
        spmd_kernel_for(
            &mut m,
            RuntimeFlavor::Modern,
            "k",
            &[Ty::Ptr, Ty::Ptr, Ty::I64],
            |_b, p| p[2],
            body,
        );
        let rt = build_runtime(RuntimeFlavor::Modern, &RtConfig::default(), false);
        nzomp_ir::link::link(&mut m, rt).unwrap();
    } else {
        cuda::grid_stride_kernel(&mut m, "k", &[Ty::Ptr, Ty::Ptr, Ty::I64], |_b, p| p[2], body);
    }
    m
}

fn run_kernel(mut m: Module, opts: Option<&PassOptions>, input: &[f64], launch: Launch) -> Vec<f64> {
    if let Some(o) = opts {
        optimize_module(&mut m, o);
    }
    nzomp_ir::verify_module(&m).unwrap();
    let mut dev = Device::load(m, quick());
    let pa = dev.alloc_f64(input);
    let po = dev.alloc(8 * input.len() as u64);
    dev.launch(
        "k",
        launch,
        &[RtVal::P(pa), RtVal::P(po), RtVal::I(input.len() as i64)],
    )
    .unwrap();
    dev.read_f64(po, input.len()).unwrap()
}

/// NaN-tolerant comparison (sqrt of negatives is allowed in the random
/// expressions; NaN != NaN under ==).
fn same(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The device computes exactly what the host reference computes, for
    /// any expression, input, and launch geometry.
    #[test]
    fn device_matches_host_reference(
        e in arb_expr(),
        input in prop::collection::vec(-8.0f64..8.0, 1..48),
        teams in 1u32..4,
        threads in 1u32..16,
    ) {
        let expect: Vec<f64> = input
            .iter()
            .enumerate()
            .map(|(i, &x)| eval_host(&e, x, i as f64))
            .collect();
        let got = run_kernel(build_kernel(&e, false), None, &input, Launch::new(teams, threads));
        prop_assert!(same(&got, &expect), "got {got:?} expected {expect:?}");
    }

    /// Full optimization never changes results (OpenMP lowering, any
    /// geometry, any expression).
    #[test]
    fn optimization_preserves_semantics(
        e in arb_expr(),
        input in prop::collection::vec(-8.0f64..8.0, 1..48),
        teams in 1u32..4,
        threads in 1u32..16,
    ) {
        let launch = Launch::new(teams, threads);
        let unopt = run_kernel(build_kernel(&e, true), Some(&PassOptions::none()), &input, launch);
        let full = run_kernel(build_kernel(&e, true), Some(&PassOptions::full()), &input, launch);
        prop_assert!(same(&unopt, &full), "unopt {unopt:?} full {full:?}");
    }

    /// OpenMP and CUDA lowerings agree bitwise.
    #[test]
    fn omp_and_cuda_agree(
        e in arb_expr(),
        input in prop::collection::vec(-8.0f64..8.0, 1..48),
    ) {
        let launch = Launch::new(2, 8);
        let omp = run_kernel(build_kernel(&e, true), Some(&PassOptions::full()), &input, launch);
        let cu = run_kernel(build_kernel(&e, false), None, &input, launch);
        prop_assert!(same(&omp, &cu));
    }

    /// The optimized module never costs more than the unoptimized one.
    #[test]
    fn optimization_never_regresses_cycles(
        e in arb_expr(),
        input in prop::collection::vec(-8.0f64..8.0, 8..32),
    ) {
        let launch = Launch::new(2, 8);
        let run_cycles = |opts: PassOptions| {
            let mut m = build_kernel(&e, true);
            optimize_module(&mut m, &opts);
            let mut dev = Device::load(m, quick());
            let pa = dev.alloc_f64(&input);
            let po = dev.alloc(8 * input.len() as u64);
            dev.launch("k", launch, &[RtVal::P(pa), RtVal::P(po), RtVal::I(input.len() as i64)])
                .unwrap()
                .cycles
        };
        let unopt = run_cycles(PassOptions::none());
        let full = run_cycles(PassOptions::full());
        prop_assert!(full <= unopt, "full {full} > unopt {unopt}");
    }
}
