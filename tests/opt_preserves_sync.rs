//! Optimizer synchronization-preservation differential suite.
//!
//! The §IV pipeline — and barrier elimination (§IV-D) in particular — may
//! only remove synchronization that is provably redundant. This suite
//! machine-checks that contract with the vGPU sanitizer:
//!
//! 1. Every proxy is sanitizer-clean (zero races, zero divergences) when
//!    compiled unoptimized, through the full pipeline, and under each
//!    single-pass Fig.-13 ablation — at 1 and at 8 worker threads — with
//!    outputs still verifying against the host reference.
//! 2. A hand-built kernel whose single aligned barrier orders a
//!    cross-thread shared-memory exchange keeps that barrier through the
//!    full pipeline (pinned via `nzomp_opt::barrier::count_aligned_barriers`)
//!    while a redundant back-to-back barrier in the same kernel is
//!    removed — and deleting the load-bearing barrier by hand makes the
//!    sanitizer report, proving the pin is not vacuous.

use nzomp::pipeline::compile_with;
use nzomp::BuildConfig;
use nzomp_ir::{ExecMode, FuncBuilder, Global, Init, Module, Operand, Space, Ty};
use nzomp_opt::barrier::count_aligned_barriers;
use nzomp_opt::{optimize_module, Ablation, PassOptions};
use nzomp_proxies::{all_proxies, build_for_config, quick_device, verify_output};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, RtVal};

/// `(label, options)` for every pipeline variant the contract covers:
/// unoptimized, the full §IV pipeline, and each single-pass ablation.
fn variants() -> Vec<(String, PassOptions)> {
    let mut v = vec![
        ("none".to_string(), PassOptions::none()),
        ("full".to_string(), PassOptions::full()),
    ];
    for ab in Ablation::ALL {
        v.push((format!("full \\ {}", ab.label()), PassOptions::full_without(ab)));
    }
    v
}

#[test]
fn proxies_stay_sanitizer_clean_under_every_pipeline_variant() {
    let cfg = BuildConfig::NewRtNoAssumptions;
    for p in all_proxies() {
        for (label, opts) in variants() {
            let out = compile_with(build_for_config(p.as_ref(), cfg), cfg, cfg.rt_config(), opts)
                .unwrap_or_else(|e| panic!("{} [{label}]: compile failed: {e}", p.name()));
            for workers in [1usize, 8] {
                let mut dev = Device::load(out.module.clone(), quick_device());
                dev.set_sanitize_strict(false);
                dev.set_sanitize(true);
                dev.set_worker_threads(workers);
                let prep = p.prepare(&mut dev);
                dev.launch(p.kernel_name(), prep.launch, &prep.args)
                    .unwrap_or_else(|e| {
                        panic!("{} [{label}] @{workers} workers: launch failed: {e}", p.name())
                    });
                let counts = dev.sanitizer_counts();
                assert_eq!(
                    counts,
                    (0, 0),
                    "{} [{label}] @{workers} workers is not sanitizer-clean: {:?}",
                    p.name(),
                    dev.sanitizer_reports()
                        .iter()
                        .map(|r| r.to_string())
                        .collect::<Vec<_>>()
                );
                verify_output(&dev, &prep).unwrap_or_else(|e| {
                    panic!("{} [{label}] @{workers} workers: output mismatch: {e}", p.name())
                });
            }
        }
    }
}

/// Neighbor-exchange kernel: each thread publishes to its own shared slot,
/// synchronizes, reads its neighbor's slot, and stores the value to its
/// global output slot. The barrier orders the cross-thread write→read, so
/// it is load-bearing. `extra_barrier` adds a provably redundant
/// back-to-back barrier; `with_barrier: false` omits the load-bearing one.
fn exchange_kernel(with_barrier: bool, extra_barrier: bool) -> Module {
    let mut m = Module::new("exchange");
    m.add_global(Global::new("slots", Space::Shared, 8 * 8, Init::Zero));
    let slots = m.find_global("slots").unwrap();
    let mut b = FuncBuilder::new("xchg", vec![Ty::Ptr], None);
    let out = b.param(0);
    let tid = b.thread_id();
    let dim = b.block_dim();
    let own_off = b.mul(tid, Operand::i64(8));
    let own = b.ptr_add(Operand::Global(slots), own_off);
    let v = b.mul(tid, Operand::i64(3));
    b.store(Ty::I64, own, v);
    if with_barrier {
        b.aligned_barrier();
    }
    if extra_barrier {
        b.aligned_barrier();
    }
    let next = b.add(tid, Operand::i64(1));
    let peer = b.srem(next, dim);
    let peer_off = b.mul(peer, Operand::i64(8));
    let pp = b.ptr_add(Operand::Global(slots), peer_off);
    let got = b.load(Ty::I64, pp);
    let po = b.gep(out, tid, 8);
    b.store(Ty::I64, po, got);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    nzomp_ir::verify_module(&m).unwrap();
    m
}

/// Run the exchange kernel sanitized at 8 threads; return
/// `(races, output correct)`.
fn run_exchange(m: Module) -> (u64, bool) {
    let threads = 8u32;
    let mut dev = Device::load(m, DeviceConfig::default());
    dev.set_sanitize_strict(false);
    dev.set_sanitize(true);
    let out = dev.alloc(8 * threads as u64);
    dev.launch("xchg", Launch::new(1, threads), &[RtVal::P(out)])
        .unwrap();
    let got = dev.read_i64(out, threads as usize).unwrap();
    let ok = (0..threads as i64).all(|t| got[t as usize] == ((t + 1) % threads as i64) * 3);
    (dev.sanitizer_counts().0, ok)
}

#[test]
fn barrier_elim_keeps_the_load_bearing_barrier() {
    let mut m = exchange_kernel(true, true);
    let f = m.kernels[0].func.index();
    assert_eq!(count_aligned_barriers(&m.funcs[f]), 2, "before optimization");

    let _remarks = optimize_module(&mut m, &PassOptions::full());
    assert_eq!(
        count_aligned_barriers(&m.funcs[f]),
        1,
        "the redundant back-to-back barrier must go, the load-bearing one must stay"
    );

    let (races, ok) = run_exchange(m);
    assert_eq!(races, 0, "optimized exchange kernel must stay race-free");
    assert!(ok, "optimized exchange kernel must stay correct");
}

#[test]
fn removing_the_barrier_by_hand_is_reported() {
    // The pin above is meaningful only if the barrier really orders the
    // exchange: without it the sanitizer must see the write→read race.
    let (races, _) = run_exchange(exchange_kernel(false, false));
    assert!(races >= 1, "barrier-less exchange must race");
}
