; nzomp-ir v1
; module rsbench
; kernel @rs_lookup_kernel mode=Spmd
declare internal void @rs_lookup_kernel.omp_outlined.body.0(i64 %arg0, ptr %arg1)
declare internal i64 @__kmpc_target_init(i64 %arg0)
declare internal void @__kmpc_target_deinit(i64 %arg0)
declare internal void @__kmpc_distribute_parallel_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
define void @rs_lookup_kernel(ptr %arg0, ptr %arg1, ptr %arg2, i64 %arg3, i64 %arg4, i64 %arg5, i64 %arg6) {
bb0:
  %174 = alloca 8
  call void @__kmpc_syncthreads_aligned()
  %117 = thread.id()
  %144 = block.dim()
  %151 = block.id()
  %152 = grid.dim()
  %95 = Mul.i64 %151, %144
  %96 = Add.i64 %95, %117
  %97 = Mul.i64 %152, %144
  %98 = cmp.Slt.i64 %96, %arg3
  br %98, bb17, bb20
bb1:
  unreachable
bb2:
  unreachable
bb3:
  unreachable
bb4:
  unreachable
bb5:
  unreachable
bb6:
  unreachable
bb7:
  unreachable
bb8:
  unreachable
bb9:
  unreachable
bb10:
  unreachable
bb11:
  unreachable
bb12:
  unreachable
bb13:
  unreachable
bb14:
  unreachable
bb15:
  unreachable
bb16:
  unreachable
bb17:
  %99 = phi i64 [bb0: %96], [bb55: %101]
  %166 = Mul.i64 %99, i64 8
  %167 = ptradd %arg1, %166
  %168 = load f64, %167
  %169 = SiToFp %arg5 to f64
  %170 = FMul.f64 %168, %169
  %171 = FpToSi %170 to i64
  %172 = SRem.i64 %171, %arg5
  %173 = Sqrt.f64 %168
  store f64 f64 0.0, %174
  %176 = Mul.i64 %arg6, i64 4
  br bb53
bb18:
  unreachable
bb19:
  unreachable
bb20:
  ret void
bb21:
  unreachable
bb22:
  unreachable
bb23:
  unreachable
bb24:
  unreachable
bb25:
  unreachable
bb26:
  unreachable
bb27:
  unreachable
bb28:
  unreachable
bb29:
  unreachable
bb30:
  unreachable
bb31:
  unreachable
bb32:
  unreachable
bb33:
  unreachable
bb34:
  unreachable
bb35:
  unreachable
bb36:
  unreachable
bb37:
  unreachable
bb38:
  unreachable
bb39:
  unreachable
bb40:
  unreachable
bb41:
  unreachable
bb42:
  unreachable
bb43:
  unreachable
bb44:
  unreachable
bb45:
  unreachable
bb46:
  unreachable
bb47:
  unreachable
bb48:
  unreachable
bb49:
  unreachable
bb50:
  unreachable
bb51:
  unreachable
bb52:
  unreachable
bb53:
  %177 = phi i64 [bb17: i64 0], [bb58: %212]
  %178 = cmp.Slt.i64 %177, %arg4
  br %178, bb54, bb55
bb54:
  %179 = Mul.i64 %177, %arg5
  %180 = Add.i64 %179, %172
  %181 = Mul.i64 %180, %176
  %182 = Mul.i64 %181, i64 8
  %183 = ptradd %arg0, %182
  br bb56
bb55:
  %213 = load f64, %174
  %214 = Mul.i64 %99, i64 8
  %215 = ptradd %arg2, %214
  store f64 %213, %215
  %101 = Add.i64 %99, %97
  %106 = cmp.Slt.i64 %101, %arg3
  br %106, bb17, bb20
bb56:
  %184 = phi i64 [bb54: i64 0], [bb57: %211]
  %185 = cmp.Slt.i64 %184, %arg6
  br %185, bb57, bb58
bb57:
  %186 = Mul.i64 %184, i64 32
  %187 = ptradd %183, %186
  %188 = load f64, %187
  %189 = ptradd %187, i64 8
  %190 = load f64, %189
  %191 = ptradd %187, i64 16
  %192 = load f64, %191
  %193 = ptradd %187, i64 24
  %194 = load f64, %193
  %195 = FSub.f64 %173, %188
  %196 = FMul.f64 %195, %195
  %197 = FMul.f64 %192, %192
  %198 = FAdd.f64 %196, %197
  %199 = FMul.f64 %190, %195
  %200 = FMul.f64 %192, %194
  %201 = FAdd.f64 %199, %200
  %202 = FDiv.f64 %201, %198
  %203 = Sin.f64 %195
  %204 = Cos.f64 %194
  %205 = FMul.f64 %203, %204
  %206 = FMul.f64 %202, %205
  %207 = FAdd.f64 %202, %206
  %208 = load f64, %174
  %209 = FAdd.f64 %208, %207
  store f64 %209, %174
  %211 = Add.i64 %184, i64 1
  br bb56
bb58:
  %212 = Add.i64 %177, i64 1
  br bb53
bb59:
  unreachable
bb60:
  unreachable
bb61:
  unreachable
bb62:
  unreachable
bb63:
  unreachable
bb64:
  unreachable
bb65:
  unreachable
bb66:
  unreachable
bb67:
  unreachable
}
declare internal void @__nzomp_trace() [always_inline]
declare internal void @__nzomp_assert(i1 %arg0) [always_inline]
define internal void @__kmpc_syncthreads_aligned() [aligned_barrier,no_call_asm,noinline] {
bb0:
  barrier.aligned()
  ret void
}
declare internal void @__kmpc_barrier() [always_inline]
declare internal i64 @omp_get_thread_num()
declare internal i64 @omp_get_num_threads()
declare internal i64 @omp_get_level()
declare internal i64 @omp_get_team_num() [always_inline,read_none]
declare internal i64 @omp_get_num_teams() [always_inline,read_none]
declare internal ptr @__kmpc_alloc_shared(i64 %arg0) [noinline]
declare internal void @__kmpc_free_shared(ptr %arg0, i64 %arg1) [noinline]
declare internal void @__kmpc_parallel_51(ptr %arg0, ptr %arg1)
declare internal void @__kmpc_parallel_spmd(ptr %arg0, ptr %arg1)
declare internal void @__kmpc_worker_loop()
declare internal void @__kmpc_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2, i64 %arg3)
declare internal void @__kmpc_distribute_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
