; nzomp-ir v1
; module testsnap
; kernel @snap_force_kernel mode=Spmd
declare internal void @snap_force_kernel.omp_outlined.body.0(i64 %arg0, ptr %arg1)
declare internal i64 @__kmpc_target_init(i64 %arg0)
declare internal void @__kmpc_target_deinit(i64 %arg0)
declare internal void @__kmpc_distribute_parallel_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
define void @snap_force_kernel(ptr %arg0, ptr %arg1, ptr %arg2, i64 %arg3, i64 %arg4, i64 %arg5) {
bb0:
  %162 = alloca 24
  %189 = alloca 8
  %115 = thread.id()
  %142 = block.dim()
  %149 = block.id()
  %150 = grid.dim()
  %93 = Mul.i64 %149, %142
  %94 = Add.i64 %93, %115
  %95 = Mul.i64 %150, %142
  %96 = cmp.Slt.i64 %94, %arg3
  br %96, bb17, bb20
bb1:
  unreachable
bb2:
  unreachable
bb3:
  unreachable
bb4:
  unreachable
bb5:
  unreachable
bb6:
  unreachable
bb7:
  unreachable
bb8:
  unreachable
bb9:
  unreachable
bb10:
  unreachable
bb11:
  unreachable
bb12:
  unreachable
bb13:
  unreachable
bb14:
  unreachable
bb15:
  unreachable
bb16:
  unreachable
bb17:
  %97 = phi i64 [bb0: %94], [bb55: %99]
  store f64 f64 0.0, %162
  %165 = ptradd %162, i64 8
  store f64 f64 0.0, %165
  %167 = ptradd %162, i64 16
  store f64 f64 0.0, %167
  %169 = Mul.i64 %97, %arg4
  br bb53
bb18:
  unreachable
bb19:
  unreachable
bb20:
  ret void
bb21:
  unreachable
bb22:
  unreachable
bb23:
  unreachable
bb24:
  unreachable
bb25:
  unreachable
bb26:
  unreachable
bb27:
  unreachable
bb28:
  unreachable
bb29:
  unreachable
bb30:
  unreachable
bb31:
  unreachable
bb32:
  unreachable
bb33:
  unreachable
bb34:
  unreachable
bb35:
  unreachable
bb36:
  unreachable
bb37:
  unreachable
bb38:
  unreachable
bb39:
  unreachable
bb40:
  unreachable
bb41:
  unreachable
bb42:
  unreachable
bb43:
  unreachable
bb44:
  unreachable
bb45:
  unreachable
bb46:
  unreachable
bb47:
  unreachable
bb48:
  unreachable
bb49:
  unreachable
bb50:
  unreachable
bb51:
  unreachable
bb52:
  unreachable
bb53:
  %170 = phi i64 [bb17: i64 0], [bb58: %220]
  %171 = cmp.Slt.i64 %170, %arg4
  br %171, bb54, bb55
bb54:
  %172 = Add.i64 %169, %170
  %173 = Mul.i64 %172, i64 3
  %174 = Mul.i64 %173, i64 8
  %175 = ptradd %arg0, %174
  %176 = load f64, %175
  %177 = ptradd %175, i64 8
  %178 = load f64, %177
  %179 = ptradd %175, i64 16
  %180 = load f64, %179
  %181 = FMul.f64 %176, %176
  %182 = FMul.f64 %178, %178
  %183 = FMul.f64 %180, %180
  %184 = FAdd.f64 %181, %182
  %185 = FAdd.f64 %184, %183
  %186 = FDiv.f64 %185, f64 4.0
  %187 = FSub.f64 f64 1.0, %186
  %188 = FMul.f64 %187, %187
  store f64 f64 0.0, %189
  br bb56
bb55:
  %221 = Mul.i64 %97, i64 3
  %222 = Mul.i64 %221, i64 8
  %223 = ptradd %arg2, %222
  %225 = load f64, %162
  store f64 %225, %223
  %228 = ptradd %162, i64 8
  %229 = load f64, %228
  %230 = ptradd %223, i64 8
  store f64 %229, %230
  %232 = ptradd %162, i64 16
  %233 = load f64, %232
  %234 = ptradd %223, i64 16
  store f64 %233, %234
  %99 = Add.i64 %97, %95
  %104 = cmp.Slt.i64 %99, %arg3
  br %104, bb17, bb20
bb56:
  %191 = phi i64 [bb54: i64 0], [bb57: %202]
  %192 = cmp.Slt.i64 %191, %arg5
  br %192, bb57, bb58
bb57:
  %193 = Sub.i64 %arg5, i64 1
  %194 = Sub.i64 %193, %191
  %195 = Mul.i64 %194, i64 8
  %196 = ptradd %arg1, %195
  %197 = load f64, %196
  %198 = load f64, %189
  %199 = FMul.f64 %198, %185
  %200 = FAdd.f64 %199, %197
  store f64 %200, %189
  %202 = Add.i64 %191, i64 1
  br bb56
bb58:
  %203 = load f64, %189
  %204 = FMul.f64 %188, %203
  %205 = FMul.f64 %176, %204
  %207 = load f64, %162
  %208 = FAdd.f64 %207, %205
  store f64 %208, %162
  %210 = FMul.f64 %178, %204
  %211 = ptradd %162, i64 8
  %212 = load f64, %211
  %213 = FAdd.f64 %212, %210
  store f64 %213, %211
  %215 = FMul.f64 %180, %204
  %216 = ptradd %162, i64 16
  %217 = load f64, %216
  %218 = FAdd.f64 %217, %215
  store f64 %218, %216
  %220 = Add.i64 %170, i64 1
  br bb53
bb59:
  unreachable
bb60:
  unreachable
bb61:
  unreachable
bb62:
  unreachable
bb63:
  unreachable
bb64:
  unreachable
bb65:
  unreachable
bb66:
  unreachable
bb67:
  unreachable
}
declare internal void @__nzomp_trace() [always_inline]
declare internal void @__nzomp_assert(i1 %arg0) [always_inline]
declare internal void @__kmpc_syncthreads_aligned() [aligned_barrier,no_call_asm,noinline]
declare internal void @__kmpc_barrier() [always_inline]
declare internal i64 @omp_get_thread_num()
declare internal i64 @omp_get_num_threads()
declare internal i64 @omp_get_level()
declare internal i64 @omp_get_team_num() [always_inline,read_none]
declare internal i64 @omp_get_num_teams() [always_inline,read_none]
declare internal ptr @__kmpc_alloc_shared(i64 %arg0) [noinline]
declare internal void @__kmpc_free_shared(ptr %arg0, i64 %arg1) [noinline]
declare internal void @__kmpc_parallel_51(ptr %arg0, ptr %arg1)
declare internal void @__kmpc_parallel_spmd(ptr %arg0, ptr %arg1)
declare internal void @__kmpc_worker_loop()
declare internal void @__kmpc_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2, i64 %arg3)
declare internal void @__kmpc_distribute_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
