; nzomp-ir v1
; module xsbench
; kernel @xs_lookup_kernel mode=Spmd
declare internal ptr @__kmpc_alloc_shared(i64 %arg0) [noinline]
declare internal void @__kmpc_free_shared(ptr %arg0, i64 %arg1) [noinline]
declare internal void @xs_lookup_kernel.omp_outlined.body.0(i64 %arg0, ptr %arg1)
declare internal i64 @__kmpc_target_init(i64 %arg0)
declare internal void @__kmpc_target_deinit(i64 %arg0)
declare internal void @__kmpc_distribute_parallel_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
define void @xs_lookup_kernel(ptr %arg0, ptr %arg1, ptr %arg2, ptr %arg3, ptr %arg4, ptr %arg5, i64 %arg6, i64 %arg7, i64 %arg8, i64 %arg9) {
bb0:
  call void @__kmpc_syncthreads_aligned()
  %123 = thread.id()
  %150 = block.dim()
  %157 = block.id()
  %158 = grid.dim()
  %101 = Mul.i64 %157, %150
  %102 = Add.i64 %101, %123
  %103 = Mul.i64 %158, %150
  %104 = cmp.Slt.i64 %102, %arg6
  br %104, bb17, bb20
bb1:
  unreachable
bb2:
  unreachable
bb3:
  unreachable
bb4:
  unreachable
bb5:
  unreachable
bb6:
  unreachable
bb7:
  unreachable
bb8:
  unreachable
bb9:
  unreachable
bb10:
  unreachable
bb11:
  unreachable
bb12:
  unreachable
bb13:
  unreachable
bb14:
  unreachable
bb15:
  unreachable
bb16:
  unreachable
bb17:
  %105 = phi i64 [bb0: %102], [bb58: %107]
  %178 = Mul.i64 %105, i64 8
  %179 = ptradd %arg3, %178
  %180 = load f64, %179
  %181 = Sub.i64 %arg7, i64 1
  br bb53
bb18:
  unreachable
bb19:
  unreachable
bb20:
  ret void
bb21:
  unreachable
bb22:
  unreachable
bb23:
  unreachable
bb24:
  unreachable
bb25:
  unreachable
bb26:
  unreachable
bb27:
  unreachable
bb28:
  unreachable
bb29:
  unreachable
bb30:
  unreachable
bb31:
  unreachable
bb32:
  unreachable
bb33:
  unreachable
bb34:
  unreachable
bb35:
  unreachable
bb36:
  unreachable
bb37:
  unreachable
bb38:
  unreachable
bb39:
  unreachable
bb40:
  unreachable
bb41:
  unreachable
bb42:
  unreachable
bb43:
  unreachable
bb44:
  unreachable
bb45:
  unreachable
bb46:
  unreachable
bb47:
  unreachable
bb48:
  unreachable
bb49:
  unreachable
bb50:
  unreachable
bb51:
  unreachable
bb52:
  unreachable
bb53:
  %182 = phi i64 [bb17: i64 0], [bb54: %192]
  %183 = phi i64 [bb17: %181], [bb54: %193]
  %184 = Sub.i64 %183, %182
  %185 = cmp.Sgt.i64 %184, i64 1
  br %185, bb54, bb55
bb54:
  %186 = Add.i64 %182, %183
  %187 = SDiv.i64 %186, i64 2
  %188 = Mul.i64 %187, i64 8
  %189 = ptradd %arg0, %188
  %190 = load f64, %189
  %191 = cmp.Sle.f64 %190, %180
  %192 = select.i64 %191, %187, %182
  %193 = select.i64 %191, %183, %187
  br bb53
bb55:
  %194 = alloca 40
  store f64 f64 0.0, %194
  %197 = ptradd %194, i64 8
  store f64 f64 0.0, %197
  %199 = ptradd %194, i64 16
  store f64 f64 0.0, %199
  %201 = ptradd %194, i64 24
  store f64 f64 0.0, %201
  %203 = ptradd %194, i64 32
  store f64 f64 0.0, %203
  %205 = Mul.i64 %182, %arg8
  br bb56
bb56:
  %206 = phi i64 [bb55: i64 0], [bb57: %287]
  %207 = cmp.Slt.i64 %206, %arg8
  br %207, bb57, bb58
bb57:
  %208 = Add.i64 %205, %206
  %209 = Mul.i64 %208, i64 8
  %210 = ptradd %arg1, %209
  %211 = load i64, %210
  %212 = Mul.i64 %206, %arg9
  %213 = Add.i64 %212, %211
  %214 = Mul.i64 %213, i64 6
  %215 = Mul.i64 %214, i64 8
  %216 = ptradd %arg2, %215
  %217 = load f64, %216
  %218 = ptradd %216, i64 48
  %219 = load f64, %218
  %220 = FSub.f64 %219, %217
  %221 = FSub.f64 %180, %217
  %222 = FDiv.f64 %221, %220
  %223 = FSub.f64 f64 1.0, %222
  %224 = Mul.i64 %206, i64 8
  %225 = ptradd %arg4, %224
  %226 = load f64, %225
  %227 = ptradd %216, i64 8
  %228 = load f64, %227
  %229 = ptradd %216, i64 56
  %230 = load f64, %229
  %231 = FMul.f64 %228, %223
  %232 = FMul.f64 %230, %222
  %233 = FAdd.f64 %231, %232
  %234 = FMul.f64 %226, %233
  %236 = load f64, %194
  %237 = FAdd.f64 %236, %234
  store f64 %237, %194
  %239 = ptradd %216, i64 16
  %240 = load f64, %239
  %241 = ptradd %216, i64 64
  %242 = load f64, %241
  %243 = FMul.f64 %240, %223
  %244 = FMul.f64 %242, %222
  %245 = FAdd.f64 %243, %244
  %246 = FMul.f64 %226, %245
  %247 = ptradd %194, i64 8
  %248 = load f64, %247
  %249 = FAdd.f64 %248, %246
  store f64 %249, %247
  %251 = ptradd %216, i64 24
  %252 = load f64, %251
  %253 = ptradd %216, i64 72
  %254 = load f64, %253
  %255 = FMul.f64 %252, %223
  %256 = FMul.f64 %254, %222
  %257 = FAdd.f64 %255, %256
  %258 = FMul.f64 %226, %257
  %259 = ptradd %194, i64 16
  %260 = load f64, %259
  %261 = FAdd.f64 %260, %258
  store f64 %261, %259
  %263 = ptradd %216, i64 32
  %264 = load f64, %263
  %265 = ptradd %216, i64 80
  %266 = load f64, %265
  %267 = FMul.f64 %264, %223
  %268 = FMul.f64 %266, %222
  %269 = FAdd.f64 %267, %268
  %270 = FMul.f64 %226, %269
  %271 = ptradd %194, i64 24
  %272 = load f64, %271
  %273 = FAdd.f64 %272, %270
  store f64 %273, %271
  %275 = ptradd %216, i64 40
  %276 = load f64, %275
  %277 = ptradd %216, i64 88
  %278 = load f64, %277
  %279 = FMul.f64 %276, %223
  %280 = FMul.f64 %278, %222
  %281 = FAdd.f64 %279, %280
  %282 = FMul.f64 %226, %281
  %283 = ptradd %194, i64 32
  %284 = load f64, %283
  %285 = FAdd.f64 %284, %282
  store f64 %285, %283
  %287 = Add.i64 %206, i64 1
  br bb56
bb58:
  %288 = Mul.i64 %105, i64 5
  %289 = Mul.i64 %288, i64 8
  %290 = ptradd %arg5, %289
  %292 = load f64, %194
  store f64 %292, %290
  %295 = ptradd %194, i64 8
  %296 = load f64, %295
  %297 = ptradd %290, i64 8
  store f64 %296, %297
  %299 = ptradd %194, i64 16
  %300 = load f64, %299
  %301 = ptradd %290, i64 16
  store f64 %300, %301
  %303 = ptradd %194, i64 24
  %304 = load f64, %303
  %305 = ptradd %290, i64 24
  store f64 %304, %305
  %307 = ptradd %194, i64 32
  %308 = load f64, %307
  %309 = ptradd %290, i64 32
  store f64 %308, %309
  %107 = Add.i64 %105, %103
  %112 = cmp.Slt.i64 %107, %arg6
  br %112, bb17, bb20
bb59:
  unreachable
bb60:
  unreachable
bb61:
  unreachable
bb62:
  unreachable
bb63:
  unreachable
bb64:
  unreachable
bb65:
  unreachable
bb66:
  unreachable
bb67:
  unreachable
}
declare internal void @__nzomp_trace() [always_inline]
declare internal void @__nzomp_assert(i1 %arg0) [always_inline]
define internal void @__kmpc_syncthreads_aligned() [aligned_barrier,no_call_asm,noinline] {
bb0:
  barrier.aligned()
  ret void
}
declare internal void @__kmpc_barrier() [always_inline]
declare internal i64 @omp_get_thread_num()
declare internal i64 @omp_get_num_threads()
declare internal i64 @omp_get_level()
declare internal i64 @omp_get_team_num() [always_inline,read_none]
declare internal i64 @omp_get_num_teams() [always_inline,read_none]
declare internal void @__kmpc_parallel_51(ptr %arg0, ptr %arg1)
declare internal void @__kmpc_parallel_spmd(ptr %arg0, ptr %arg1)
declare internal void @__kmpc_worker_loop()
declare internal void @__kmpc_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2, i64 %arg3)
declare internal void @__kmpc_distribute_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
