; nzomp-ir v1
; module minifmm
; kernel @fmm_p2p_kernel mode=Spmd
declare internal i64 @omp_get_team_num() [always_inline,read_none]
declare internal i64 @omp_get_num_threads()
declare internal i64 @omp_get_thread_num()
define internal f64 @p2p_leaf_omp(i64 %arg0, i64 %arg1, i64 %arg2, i64 %arg3, ptr %arg4, ptr %arg5, ptr %arg6, ptr %arg7, ptr %arg8, i64 %arg9) [noinline] {
bb0:
  %35 = alloca 8
  %81 = block.id()
  %93 = block.dim()
  %101 = thread.id()
  %3 = Mul.i64 %81, %93
  %4 = Add.i64 %3, %101
  %5 = Mul.i64 %arg9, i64 32
  %6 = Mul.i64 %4, %5
  %7 = ptradd %arg8, %6
  %8 = Sub.i64 %arg3, %arg2
  br bb1
bb1:
  %9 = phi i64 [bb0: i64 0], [bb2: %34]
  %10 = cmp.Slt.i64 %9, %8
  br %10, bb2, bb3
bb2:
  %11 = Add.i64 %arg2, %9
  %12 = Mul.i64 %9, i64 32
  %13 = ptradd %7, %12
  %14 = Mul.i64 %11, i64 8
  %15 = ptradd %arg4, %14
  %16 = load f64, %15
  store f64 %16, %13
  %19 = Mul.i64 %11, i64 8
  %20 = ptradd %arg5, %19
  %21 = load f64, %20
  %22 = ptradd %13, i64 8
  store f64 %21, %22
  %24 = Mul.i64 %11, i64 8
  %25 = ptradd %arg6, %24
  %26 = load f64, %25
  %27 = ptradd %13, i64 16
  store f64 %26, %27
  %29 = Mul.i64 %11, i64 8
  %30 = ptradd %arg7, %29
  %31 = load f64, %30
  %32 = ptradd %13, i64 24
  store f64 %31, %32
  %34 = Add.i64 %9, i64 1
  br bb1
bb3:
  store f64 f64 0.0, %35
  br bb4
bb4:
  %37 = phi i64 [bb3: %arg0], [bb9: %79]
  %38 = cmp.Slt.i64 %37, %arg1
  br %38, bb5, bb6
bb5:
  %39 = Mul.i64 %37, i64 8
  %40 = ptradd %arg4, %39
  %41 = load f64, %40
  %42 = Mul.i64 %37, i64 8
  %43 = ptradd %arg5, %42
  %44 = load f64, %43
  %45 = Mul.i64 %37, i64 8
  %46 = ptradd %arg6, %45
  %47 = load f64, %46
  %48 = Mul.i64 %37, i64 8
  %49 = ptradd %arg7, %48
  %50 = load f64, %49
  br bb7
bb6:
  %80 = load f64, %35
  ret %80
bb7:
  %51 = phi i64 [bb5: i64 0], [bb8: %78]
  %52 = cmp.Slt.i64 %51, %8
  br %52, bb8, bb9
bb8:
  %53 = Mul.i64 %51, i64 32
  %54 = ptradd %7, %53
  %55 = load f64, %54
  %56 = ptradd %54, i64 8
  %57 = load f64, %56
  %58 = ptradd %54, i64 16
  %59 = load f64, %58
  %60 = ptradd %54, i64 24
  %61 = load f64, %60
  %62 = FSub.f64 %41, %55
  %63 = FSub.f64 %44, %57
  %64 = FSub.f64 %47, %59
  %65 = FMul.f64 %62, %62
  %66 = FMul.f64 %63, %63
  %67 = FMul.f64 %64, %64
  %68 = FAdd.f64 %65, %66
  %69 = FAdd.f64 %68, %67
  %70 = FAdd.f64 %69, f64 0.01
  %71 = Sqrt.f64 %70
  %72 = FDiv.f64 f64 1.0, %71
  %73 = FMul.f64 %61, %72
  %74 = FMul.f64 %50, %73
  %75 = load f64, %35
  %76 = FAdd.f64 %75, %74
  store f64 %76, %35
  %78 = Add.i64 %51, i64 1
  br bb7
bb9:
  %79 = Add.i64 %37, i64 1
  br bb4
bb10:
  unreachable
bb11:
  unreachable
bb12:
  unreachable
bb13:
  unreachable
bb14:
  unreachable
bb15:
  unreachable
bb16:
  unreachable
bb17:
  unreachable
bb18:
  unreachable
bb19:
  unreachable
bb20:
  unreachable
bb21:
  unreachable
bb22:
  unreachable
bb23:
  unreachable
bb24:
  unreachable
bb25:
  unreachable
bb26:
  unreachable
bb27:
  unreachable
}
declare internal i64 @__kmpc_target_init(i64 %arg0)
declare internal void @__kmpc_target_deinit(i64 %arg0)
declare internal i64 @omp_get_num_teams() [always_inline,read_none]
declare internal void @fmm_p2p_kernel.omp_outlined.wsloop.7(i64 %arg0, ptr %arg1)
declare internal void @__kmpc_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2, i64 %arg3)
declare internal void @fmm_p2p_kernel.omp_outlined.parallel.8(ptr %arg0)
declare internal ptr @__kmpc_alloc_shared(i64 %arg0) [noinline]
declare internal void @__kmpc_free_shared(ptr %arg0, i64 %arg1) [noinline]
declare internal void @__kmpc_parallel_51(ptr %arg0, ptr %arg1)
define void @fmm_p2p_kernel(ptr %arg0, ptr %arg1, ptr %arg2, ptr %arg3, ptr %arg4, ptr %arg5, ptr %arg6, ptr %arg7, ptr %arg8, i64 %arg9, i64 %arg10) {
bb0:
  %11 = alloca 96
  %153 = alloca 88
  %273 = alloca 8
  %111 = block.id()
  %112 = grid.dim()
  %4 = Add.i64 %112, i64 -1
  %5 = Add.i64 %arg9, %4
  %6 = SDiv.i64 %5, %112
  %7 = Mul.i64 %111, %6
  %8 = Add.i64 %7, %6
  %9 = SMin.i64 %8, %arg9
  %10 = Sub.i64 %9, %7
  store ptr %arg0, %11
  %13 = ptradd %11, i64 8
  store ptr %arg1, %13
  %15 = ptradd %11, i64 16
  store ptr %arg2, %15
  %17 = ptradd %11, i64 24
  store ptr %arg3, %17
  %19 = ptradd %11, i64 32
  store ptr %arg4, %19
  %21 = ptradd %11, i64 40
  store ptr %arg5, %21
  %23 = ptradd %11, i64 48
  store ptr %arg6, %23
  %25 = ptradd %11, i64 56
  store ptr %arg7, %25
  %27 = ptradd %11, i64 64
  store ptr %arg8, %27
  %29 = ptradd %11, i64 72
  store i64 %arg10, %29
  %31 = ptradd %11, i64 80
  store i64 %7, %31
  %33 = ptradd %11, i64 88
  store i64 %10, %33
  %149 = ptradd %11, i64 80
  %150 = load i64, %149
  %151 = ptradd %11, i64 88
  %152 = load i64, %151
  store ptr %arg0, %153
  %155 = ptradd %153, i64 8
  store ptr %arg1, %155
  %157 = ptradd %153, i64 16
  store ptr %arg2, %157
  %159 = ptradd %153, i64 24
  store ptr %arg3, %159
  %161 = ptradd %153, i64 32
  store ptr %arg4, %161
  %163 = ptradd %153, i64 40
  store ptr %arg5, %163
  %165 = ptradd %153, i64 48
  store ptr %arg6, %165
  %167 = ptradd %153, i64 56
  store ptr %arg7, %167
  %169 = ptradd %153, i64 64
  store ptr %arg8, %169
  %171 = ptradd %153, i64 72
  store i64 %arg10, %171
  %173 = ptradd %153, i64 80
  store i64 %150, %173
  %204 = thread.id()
  %231 = block.dim()
  %179 = cmp.Slt.i64 %204, %152
  br %179, bb38, bb41
bb1:
  unreachable
bb2:
  unreachable
bb3:
  unreachable
bb4:
  unreachable
bb5:
  unreachable
bb6:
  unreachable
bb7:
  unreachable
bb8:
  unreachable
bb9:
  unreachable
bb10:
  unreachable
bb11:
  unreachable
bb12:
  unreachable
bb13:
  unreachable
bb14:
  unreachable
bb15:
  unreachable
bb16:
  unreachable
bb17:
  unreachable
bb18:
  unreachable
bb19:
  unreachable
bb20:
  unreachable
bb21:
  unreachable
bb22:
  unreachable
bb23:
  unreachable
bb24:
  unreachable
bb25:
  unreachable
bb26:
  unreachable
bb27:
  unreachable
bb28:
  unreachable
bb29:
  unreachable
bb30:
  unreachable
bb31:
  unreachable
bb32:
  unreachable
bb33:
  unreachable
bb34:
  unreachable
bb35:
  unreachable
bb36:
  unreachable
bb37:
  unreachable
bb38:
  %180 = phi i64 [bb0: %204], [bb79: %182]
  %257 = ptradd %153, i64 80
  %258 = load i64, %257
  %259 = Add.i64 %258, %180
  %260 = Mul.i64 %259, i64 8
  %261 = ptradd %arg0, %260
  %262 = load i64, %261
  %263 = Add.i64 %259, i64 1
  %264 = Mul.i64 %263, i64 8
  %265 = ptradd %arg0, %264
  %266 = load i64, %265
  %267 = Mul.i64 %259, i64 8
  %268 = ptradd %arg1, %267
  %269 = load i64, %268
  %270 = Mul.i64 %263, i64 8
  %271 = ptradd %arg1, %270
  %272 = load i64, %271
  store f64 f64 0.0, %273
  br bb77
bb39:
  unreachable
bb40:
  unreachable
bb41:
  ret void
bb42:
  unreachable
bb43:
  unreachable
bb44:
  unreachable
bb45:
  unreachable
bb46:
  unreachable
bb47:
  unreachable
bb48:
  unreachable
bb49:
  unreachable
bb50:
  unreachable
bb51:
  unreachable
bb52:
  unreachable
bb53:
  unreachable
bb54:
  unreachable
bb55:
  unreachable
bb56:
  unreachable
bb57:
  unreachable
bb58:
  unreachable
bb59:
  unreachable
bb60:
  unreachable
bb61:
  unreachable
bb62:
  unreachable
bb63:
  unreachable
bb64:
  unreachable
bb65:
  unreachable
bb66:
  unreachable
bb67:
  unreachable
bb68:
  unreachable
bb69:
  unreachable
bb70:
  unreachable
bb71:
  unreachable
bb72:
  unreachable
bb73:
  unreachable
bb74:
  unreachable
bb75:
  unreachable
bb76:
  unreachable
bb77:
  %275 = phi i64 [bb38: %269], [bb78: %291]
  %276 = cmp.Slt.i64 %275, %272
  br %276, bb78, bb79
bb78:
  %277 = Mul.i64 %275, i64 8
  %278 = ptradd %arg2, %277
  %279 = load i64, %278
  %280 = Mul.i64 %279, i64 8
  %281 = ptradd %arg0, %280
  %282 = load i64, %281
  %283 = Add.i64 %279, i64 1
  %284 = Mul.i64 %283, i64 8
  %285 = ptradd %arg0, %284
  %286 = load i64, %285
  %287 = call f64 @p2p_leaf_omp(%262, %266, %282, %286, %arg3, %arg4, %arg5, %arg6, %arg7, %arg10)
  %288 = load f64, %273
  %289 = FAdd.f64 %288, %287
  store f64 %289, %273
  %291 = Add.i64 %275, i64 1
  br bb77
bb79:
  %292 = load f64, %273
  %293 = Mul.i64 %259, i64 8
  %294 = ptradd %arg8, %293
  store f64 %292, %294
  %182 = Add.i64 %180, %231
  %187 = cmp.Slt.i64 %182, %152
  br %187, bb38, bb41
bb80:
  unreachable
bb81:
  unreachable
}
declare internal void @__nzomp_trace() [always_inline]
declare internal void @__nzomp_assert(i1 %arg0) [always_inline]
declare internal void @__kmpc_syncthreads_aligned() [aligned_barrier,no_call_asm,noinline]
declare internal void @__kmpc_barrier() [always_inline]
declare internal i64 @omp_get_level()
declare internal void @__kmpc_parallel_spmd(ptr %arg0, ptr %arg1)
declare internal void @__kmpc_worker_loop()
declare internal void @__kmpc_distribute_parallel_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
declare internal void @__kmpc_distribute_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
