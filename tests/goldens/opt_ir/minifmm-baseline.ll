; nzomp-ir v1
; module minifmm
@__omp_rtl_is_spmd_mode = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_team_state = shared [64 x i8] init=zero linkage=internal
@__omp_rtl_thread_states = shared [2048 x i8] init=zero linkage=internal
@__omp_rtl_smem_stack = shared [9168 x i8] init=zero linkage=internal
@__omp_rtl_smem_stack_top = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_dummy = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_debug_kind = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_assume_teams_oversubscription = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_assume_threads_oversubscription = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_trace_count = global [8 x i8] init=zero linkage=internal
; kernel @fmm_p2p_kernel mode=Spmd
declare internal i64 @omp_get_team_num() [always_inline,read_none]
declare internal i64 @omp_get_num_threads()
declare internal i64 @omp_get_thread_num()
define internal f64 @p2p_leaf_omp(i64 %arg0, i64 %arg1, i64 %arg2, i64 %arg3, ptr %arg4, ptr %arg5, ptr %arg6, ptr %arg7, ptr %arg8, i64 %arg9) [noinline] {
bb0:
  %35 = alloca 8
  %81 = block.id()
  %83 = thread.id()
  %84 = Mul.i64 %83, i64 8
  %85 = ptradd @__omp_rtl_thread_states, %84
  %86 = load ptr, %85
  %87 = cmp.Ne.ptr %86, ptr 0
  br %87, bb13, bb14
bb1:
  %9 = phi i64 [bb27: i64 0], [bb2: %34]
  %10 = cmp.Slt.i64 %9, %8
  br %10, bb2, bb3
bb2:
  %11 = Add.i64 %arg2, %9
  %12 = Mul.i64 %9, i64 32
  %13 = ptradd %7, %12
  %14 = Mul.i64 %11, i64 8
  %15 = ptradd %arg4, %14
  %16 = load f64, %15
  store f64 %16, %13
  %19 = Mul.i64 %11, i64 8
  %20 = ptradd %arg5, %19
  %21 = load f64, %20
  %22 = ptradd %13, i64 8
  store f64 %21, %22
  %24 = Mul.i64 %11, i64 8
  %25 = ptradd %arg6, %24
  %26 = load f64, %25
  %27 = ptradd %13, i64 16
  store f64 %26, %27
  %29 = Mul.i64 %11, i64 8
  %30 = ptradd %arg7, %29
  %31 = load f64, %30
  %32 = ptradd %13, i64 24
  store f64 %31, %32
  %34 = Add.i64 %9, i64 1
  br bb1
bb3:
  store f64 f64 0.0, %35
  br bb4
bb4:
  %37 = phi i64 [bb3: %arg0], [bb9: %79]
  %38 = cmp.Slt.i64 %37, %arg1
  br %38, bb5, bb6
bb5:
  %39 = Mul.i64 %37, i64 8
  %40 = ptradd %arg4, %39
  %41 = load f64, %40
  %42 = Mul.i64 %37, i64 8
  %43 = ptradd %arg5, %42
  %44 = load f64, %43
  %45 = Mul.i64 %37, i64 8
  %46 = ptradd %arg6, %45
  %47 = load f64, %46
  %48 = Mul.i64 %37, i64 8
  %49 = ptradd %arg7, %48
  %50 = load f64, %49
  br bb7
bb6:
  %80 = load f64, %35
  ret %80
bb7:
  %51 = phi i64 [bb5: i64 0], [bb8: %78]
  %52 = cmp.Slt.i64 %51, %8
  br %52, bb8, bb9
bb8:
  %53 = Mul.i64 %51, i64 32
  %54 = ptradd %7, %53
  %55 = load f64, %54
  %56 = ptradd %54, i64 8
  %57 = load f64, %56
  %58 = ptradd %54, i64 16
  %59 = load f64, %58
  %60 = ptradd %54, i64 24
  %61 = load f64, %60
  %62 = FSub.f64 %41, %55
  %63 = FSub.f64 %44, %57
  %64 = FSub.f64 %47, %59
  %65 = FMul.f64 %62, %62
  %66 = FMul.f64 %63, %63
  %67 = FMul.f64 %64, %64
  %68 = FAdd.f64 %65, %66
  %69 = FAdd.f64 %68, %67
  %70 = FAdd.f64 %69, f64 0.01
  %71 = Sqrt.f64 %70
  %72 = FDiv.f64 f64 1.0, %71
  %73 = FMul.f64 %61, %72
  %74 = FMul.f64 %50, %73
  %75 = load f64, %35
  %76 = FAdd.f64 %75, %74
  store f64 %76, %35
  %78 = Add.i64 %51, i64 1
  br bb7
bb9:
  %79 = Add.i64 %37, i64 1
  br bb4
bb10:
  unreachable
bb11:
  unreachable
bb12:
  unreachable
bb13:
  %88 = ptradd %86, i64 16
  %89 = load i64, %88
  br bb19
bb14:
  %90 = ptradd @__omp_rtl_team_state, i64 8
  %91 = load i64, %90
  %92 = cmp.Eq.i64 %91, i64 1
  %93 = load i64, @__omp_rtl_team_state
  %94 = select.i64 %92, %93, i64 1
  br bb19
bb15:
  unreachable
bb16:
  unreachable
bb17:
  unreachable
bb18:
  unreachable
bb19:
  %99 = phi i64 [bb13: %89], [bb14: %94]
  %101 = thread.id()
  %102 = Mul.i64 %101, i64 8
  %103 = ptradd @__omp_rtl_thread_states, %102
  %104 = load ptr, %103
  %105 = cmp.Ne.ptr %104, ptr 0
  br %105, bb21, bb22
bb20:
  unreachable
bb21:
  %106 = ptradd %104, i64 8
  %107 = load i64, %106
  br bb27
bb22:
  %108 = ptradd @__omp_rtl_team_state, i64 8
  %109 = load i64, %108
  %110 = cmp.Sgt.i64 %109, i64 1
  %111 = select.i64 %110, i64 0, %101
  br bb27
bb23:
  unreachable
bb24:
  unreachable
bb25:
  unreachable
bb26:
  unreachable
bb27:
  %116 = phi i64 [bb21: %107], [bb22: %111]
  %3 = Mul.i64 %81, %99
  %4 = Add.i64 %3, %116
  %5 = Mul.i64 %arg9, i64 32
  %6 = Mul.i64 %4, %5
  %7 = ptradd %arg8, %6
  %8 = Sub.i64 %arg3, %arg2
  br bb1
}
declare internal i64 @__kmpc_target_init(i64 %arg0)
declare internal void @__kmpc_target_deinit(i64 %arg0)
declare internal i64 @omp_get_num_teams() [always_inline,read_none]
declare internal void @fmm_p2p_kernel.omp_outlined.wsloop.7(i64 %arg0, ptr %arg1)
declare internal void @__kmpc_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2, i64 %arg3)
declare internal void @fmm_p2p_kernel.omp_outlined.parallel.8(ptr %arg0)
declare internal ptr @__kmpc_alloc_shared(i64 %arg0) [noinline]
declare internal void @__kmpc_free_shared(ptr %arg0, i64 %arg1) [noinline]
declare internal void @__kmpc_parallel_51(ptr %arg0, ptr %arg1)
define void @fmm_p2p_kernel(ptr %arg0, ptr %arg1, ptr %arg2, ptr %arg3, ptr %arg4, ptr %arg5, ptr %arg6, ptr %arg7, ptr %arg8, i64 %arg9, i64 %arg10) {
bb0:
  %11 = alloca 96
  %153 = alloca 88
  %273 = alloca 8
  %39 = thread.id()
  %40 = cmp.Eq.i64 %39, i64 0
  %42 = block.dim()
  %43 = select.ptr %40, @__omp_rtl_is_spmd_mode, @__omp_rtl_dummy
  store i64 i64 1, %43
  %45 = select.ptr %40, @__omp_rtl_team_state, @__omp_rtl_dummy
  store i64 %42, %45
  %47 = ptradd @__omp_rtl_team_state, i64 8
  %48 = select.ptr %40, %47, @__omp_rtl_dummy
  store i64 i64 1, %48
  %50 = ptradd @__omp_rtl_team_state, i64 16
  %51 = select.ptr %40, %50, @__omp_rtl_dummy
  store i64 i64 1, %51
  %53 = ptradd @__omp_rtl_team_state, i64 40
  %54 = select.ptr %40, %53, @__omp_rtl_dummy
  store i64 i64 0, %54
  %56 = select.ptr %40, @__omp_rtl_smem_stack_top, @__omp_rtl_dummy
  store i64 i64 0, %56
  %58 = Mul.i64 %39, i64 8
  %59 = ptradd @__omp_rtl_thread_states, %58
  store ptr ptr 0, %59
  call void @__kmpc_syncthreads_aligned()
  %62 = load i64, @__omp_rtl_is_spmd_mode
  %63 = cmp.Eq.i64 %62, i64 1
  assume(%63)
  %65 = ptradd @__omp_rtl_team_state, i64 8
  %66 = load i64, %65
  %67 = cmp.Eq.i64 %66, i64 1
  assume(%67)
  %69 = block.dim()
  %70 = load i64, @__omp_rtl_team_state
  %71 = cmp.Eq.i64 %70, %69
  assume(%71)
  %73 = ptradd @__omp_rtl_team_state, i64 40
  %74 = load i64, %73
  %75 = cmp.Eq.i64 %74, i64 0
  assume(%75)
  %111 = block.id()
  %112 = grid.dim()
  %4 = Add.i64 %112, i64 -1
  %5 = Add.i64 %arg9, %4
  %6 = SDiv.i64 %5, %112
  %7 = Mul.i64 %111, %6
  %8 = Add.i64 %7, %6
  %9 = SMin.i64 %8, %arg9
  %10 = Sub.i64 %9, %7
  store ptr %arg0, %11
  %13 = ptradd %11, i64 8
  store ptr %arg1, %13
  %15 = ptradd %11, i64 16
  store ptr %arg2, %15
  %17 = ptradd %11, i64 24
  store ptr %arg3, %17
  %19 = ptradd %11, i64 32
  store ptr %arg4, %19
  %21 = ptradd %11, i64 40
  store ptr %arg5, %21
  %23 = ptradd %11, i64 48
  store ptr %arg6, %23
  %25 = ptradd %11, i64 56
  store ptr %arg7, %25
  %27 = ptradd %11, i64 64
  store ptr %arg8, %27
  %29 = ptradd %11, i64 72
  store i64 %arg10, %29
  %31 = ptradd %11, i64 80
  store i64 %7, %31
  %33 = ptradd %11, i64 88
  store i64 %10, %33
  call void @__kmpc_syncthreads_aligned()
  %130 = load ptr, %11
  %131 = ptradd %11, i64 8
  %132 = load ptr, %131
  %133 = ptradd %11, i64 16
  %134 = load ptr, %133
  %135 = ptradd %11, i64 24
  %136 = load ptr, %135
  %137 = ptradd %11, i64 32
  %138 = load ptr, %137
  %139 = ptradd %11, i64 40
  %140 = load ptr, %139
  %141 = ptradd %11, i64 48
  %142 = load ptr, %141
  %143 = ptradd %11, i64 56
  %144 = load ptr, %143
  %145 = ptradd %11, i64 64
  %146 = load ptr, %145
  %147 = ptradd %11, i64 72
  %148 = load i64, %147
  %149 = ptradd %11, i64 80
  %150 = load i64, %149
  %151 = ptradd %11, i64 88
  %152 = load i64, %151
  store ptr %130, %153
  %155 = ptradd %153, i64 8
  store ptr %132, %155
  %157 = ptradd %153, i64 16
  store ptr %134, %157
  %159 = ptradd %153, i64 24
  store ptr %136, %159
  %161 = ptradd %153, i64 32
  store ptr %138, %161
  %163 = ptradd %153, i64 40
  store ptr %140, %163
  %165 = ptradd %153, i64 48
  store ptr %142, %165
  %167 = ptradd %153, i64 56
  store ptr %144, %167
  %169 = ptradd %153, i64 64
  store ptr %146, %169
  %171 = ptradd %153, i64 72
  store i64 %148, %171
  %173 = ptradd %153, i64 80
  store i64 %150, %173
  %204 = thread.id()
  %205 = Mul.i64 %204, i64 8
  %206 = ptradd @__omp_rtl_thread_states, %205
  %207 = load ptr, %206
  %208 = cmp.Ne.ptr %207, ptr 0
  br %208, bb60, bb61
bb1:
  unreachable
bb2:
  unreachable
bb3:
  unreachable
bb4:
  unreachable
bb5:
  unreachable
bb6:
  unreachable
bb7:
  unreachable
bb8:
  unreachable
bb9:
  unreachable
bb10:
  unreachable
bb11:
  unreachable
bb12:
  unreachable
bb13:
  unreachable
bb14:
  unreachable
bb15:
  unreachable
bb16:
  unreachable
bb17:
  unreachable
bb18:
  unreachable
bb19:
  unreachable
bb20:
  unreachable
bb21:
  unreachable
bb22:
  unreachable
bb23:
  unreachable
bb24:
  unreachable
bb25:
  unreachable
bb26:
  unreachable
bb27:
  unreachable
bb28:
  unreachable
bb29:
  unreachable
bb30:
  unreachable
bb31:
  unreachable
bb32:
  unreachable
bb33:
  unreachable
bb34:
  unreachable
bb35:
  unreachable
bb36:
  unreachable
bb37:
  unreachable
bb38:
  %180 = phi i64 [bb74: %219], [bb79: %182]
  %238 = load ptr, %153
  %239 = ptradd %153, i64 8
  %240 = load ptr, %239
  %241 = ptradd %153, i64 16
  %242 = load ptr, %241
  %243 = ptradd %153, i64 24
  %244 = load ptr, %243
  %245 = ptradd %153, i64 32
  %246 = load ptr, %245
  %247 = ptradd %153, i64 40
  %248 = load ptr, %247
  %249 = ptradd %153, i64 48
  %250 = load ptr, %249
  %251 = ptradd %153, i64 56
  %252 = load ptr, %251
  %253 = ptradd %153, i64 64
  %254 = load ptr, %253
  %255 = ptradd %153, i64 72
  %256 = load i64, %255
  %257 = ptradd %153, i64 80
  %258 = load i64, %257
  %259 = Add.i64 %258, %180
  %260 = Mul.i64 %259, i64 8
  %261 = ptradd %238, %260
  %262 = load i64, %261
  %263 = Add.i64 %259, i64 1
  %264 = Mul.i64 %263, i64 8
  %265 = ptradd %238, %264
  %266 = load i64, %265
  %267 = Mul.i64 %259, i64 8
  %268 = ptradd %240, %267
  %269 = load i64, %268
  %270 = Mul.i64 %263, i64 8
  %271 = ptradd %240, %270
  %272 = load i64, %271
  store f64 f64 0.0, %273
  br bb77
bb39:
  unreachable
bb40:
  unreachable
bb41:
  %199 = load i64, @__omp_rtl_is_spmd_mode
  %200 = cmp.Ne.i64 %199, i64 0
  br %200, bb55, bb56
bb42:
  unreachable
bb43:
  unreachable
bb44:
  unreachable
bb45:
  unreachable
bb46:
  unreachable
bb47:
  unreachable
bb48:
  unreachable
bb49:
  unreachable
bb50:
  unreachable
bb51:
  unreachable
bb52:
  unreachable
bb53:
  unreachable
bb54:
  unreachable
bb55:
  call void @__kmpc_syncthreads_aligned()
  br bb57
bb56:
  barrier()
  br bb57
bb57:
  call void @__kmpc_syncthreads_aligned()
  ret void
bb58:
  unreachable
bb59:
  unreachable
bb60:
  %209 = ptradd %207, i64 8
  %210 = load i64, %209
  br bb66
bb61:
  %211 = ptradd @__omp_rtl_team_state, i64 8
  %212 = load i64, %211
  %213 = cmp.Sgt.i64 %212, i64 1
  %214 = select.i64 %213, i64 0, %204
  br bb66
bb62:
  unreachable
bb63:
  unreachable
bb64:
  unreachable
bb65:
  unreachable
bb66:
  %219 = phi i64 [bb60: %210], [bb61: %214]
  %221 = thread.id()
  %222 = Mul.i64 %221, i64 8
  %223 = ptradd @__omp_rtl_thread_states, %222
  %224 = load ptr, %223
  %225 = cmp.Ne.ptr %224, ptr 0
  br %225, bb68, bb69
bb67:
  unreachable
bb68:
  %226 = ptradd %224, i64 16
  %227 = load i64, %226
  br bb74
bb69:
  %228 = ptradd @__omp_rtl_team_state, i64 8
  %229 = load i64, %228
  %230 = cmp.Eq.i64 %229, i64 1
  %231 = load i64, @__omp_rtl_team_state
  %232 = select.i64 %230, %231, i64 1
  br bb74
bb70:
  unreachable
bb71:
  unreachable
bb72:
  unreachable
bb73:
  unreachable
bb74:
  %237 = phi i64 [bb68: %227], [bb69: %232]
  %179 = cmp.Slt.i64 %219, %152
  br %179, bb38, bb41
bb75:
  unreachable
bb76:
  unreachable
bb77:
  %275 = phi i64 [bb38: %269], [bb78: %291]
  %276 = cmp.Slt.i64 %275, %272
  br %276, bb78, bb79
bb78:
  %277 = Mul.i64 %275, i64 8
  %278 = ptradd %242, %277
  %279 = load i64, %278
  %280 = Mul.i64 %279, i64 8
  %281 = ptradd %238, %280
  %282 = load i64, %281
  %283 = Add.i64 %279, i64 1
  %284 = Mul.i64 %283, i64 8
  %285 = ptradd %238, %284
  %286 = load i64, %285
  %287 = call f64 @p2p_leaf_omp(%262, %266, %282, %286, %244, %246, %248, %250, %252, %256)
  %288 = load f64, %273
  %289 = FAdd.f64 %288, %287
  store f64 %289, %273
  %291 = Add.i64 %275, i64 1
  br bb77
bb79:
  %292 = load f64, %273
  %293 = Mul.i64 %259, i64 8
  %294 = ptradd %254, %293
  store f64 %292, %294
  %182 = Add.i64 %180, %237
  %187 = cmp.Slt.i64 %182, %152
  br %187, bb38, bb41
bb80:
  unreachable
bb81:
  unreachable
}
declare internal void @__nzomp_trace() [always_inline]
declare internal void @__nzomp_assert(i1 %arg0) [always_inline]
define internal void @__kmpc_syncthreads_aligned() [aligned_barrier,no_call_asm,noinline] {
bb0:
  barrier.aligned()
  ret void
}
declare internal void @__kmpc_barrier() [always_inline]
declare internal i64 @omp_get_level()
declare internal void @__kmpc_parallel_spmd(ptr %arg0, ptr %arg1)
declare internal void @__kmpc_worker_loop()
declare internal void @__kmpc_distribute_parallel_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
declare internal void @__kmpc_distribute_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
