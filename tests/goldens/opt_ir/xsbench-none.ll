; module xsbench
@__omp_rtl_is_spmd_mode = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_team_state = shared [64 x i8] init=zero linkage=internal
@__omp_rtl_thread_states = shared [2048 x i8] init=zero linkage=internal
@__omp_rtl_smem_stack = shared [9168 x i8] init=zero linkage=internal
@__omp_rtl_smem_stack_top = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_dummy = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_debug_kind = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_assume_teams_oversubscription = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_assume_threads_oversubscription = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_trace_count = global [8 x i8] init=zero linkage=internal
; kernel @xs_lookup_kernel mode=Spmd
define ptr @__kmpc_alloc_shared(i64 %arg0) [noinline] {
bb0:
  call void @__nzomp_trace()
  %1 = Add.i64 %arg0, i64 7
  %2 = And.i64 %1, i64 -8
  %3 = atomic.Add.i64 @__omp_rtl_smem_stack_top, %2
  %4 = Add.i64 %3, %2
  %5 = cmp.Sle.i64 %4, i64 9168
  br %5, bb1, bb2
bb1:
  %6 = ptradd @__omp_rtl_smem_stack, %3
  ret %6
bb2:
  %7 = Sub.i64 i64 0, %2
  %8 = atomic.Add.i64 @__omp_rtl_smem_stack_top, %7
  %9 = malloc(%2)
  ret %9
}
define void @__kmpc_free_shared(ptr %arg0, i64 %arg1) [noinline] {
bb0:
  call void @__nzomp_trace()
  %1 = Add.i64 %arg1, i64 7
  %2 = And.i64 %1, i64 -8
  %3 = PtrCast %arg0 to i64
  %4 = PtrCast @__omp_rtl_smem_stack to i64
  %5 = Add.i64 %4, i64 9168
  %6 = cmp.Uge.i64 %3, %4
  %7 = cmp.Ult.i64 %3, %5
  %8 = And.i64 %6, %7
  %9 = cmp.Ne.i64 %8, i64 0
  br %9, bb1, bb2
bb1:
  %10 = Sub.i64 i64 0, %2
  %11 = atomic.Add.i64 @__omp_rtl_smem_stack_top, %10
  br bb3
bb2:
  free(%arg0)
  br bb3
bb3:
  ret void
}
define internal void @xs_lookup_kernel.omp_outlined.body.0(i64 %arg0, ptr %arg1) {
bb0:
  %0 = load ptr, %arg1
  %1 = ptradd %arg1, i64 8
  %2 = load ptr, %1
  %3 = ptradd %arg1, i64 16
  %4 = load ptr, %3
  %5 = ptradd %arg1, i64 24
  %6 = load ptr, %5
  %7 = ptradd %arg1, i64 32
  %8 = load ptr, %7
  %9 = ptradd %arg1, i64 40
  %10 = load ptr, %9
  %11 = ptradd %arg1, i64 48
  %12 = load i64, %11
  %13 = ptradd %arg1, i64 56
  %14 = load i64, %13
  %15 = ptradd %arg1, i64 64
  %16 = load i64, %15
  %17 = ptradd %arg1, i64 72
  %18 = load i64, %17
  %19 = Mul.i64 %arg0, i64 8
  %20 = ptradd %6, %19
  %21 = load f64, %20
  %22 = Sub.i64 %14, i64 1
  br bb1
bb1:
  %23 = phi i64 [bb0: i64 0], [bb2: %33]
  %24 = phi i64 [bb0: %22], [bb2: %34]
  %25 = Sub.i64 %24, %23
  %26 = cmp.Sgt.i64 %25, i64 1
  br %26, bb2, bb3
bb2:
  %27 = Add.i64 %23, %24
  %28 = SDiv.i64 %27, i64 2
  %29 = Mul.i64 %28, i64 8
  %30 = ptradd %0, %29
  %31 = load f64, %30
  %32 = cmp.Sle.f64 %31, %21
  %33 = select.i64 %32, %28, %23
  %34 = select.i64 %32, %24, %28
  br bb1
bb3:
  %35 = call ptr @__kmpc_alloc_shared(i64 40)
  %36 = ptradd %35, i64 0
  store f64 f64 0.0, %36
  %38 = ptradd %35, i64 8
  store f64 f64 0.0, %38
  %40 = ptradd %35, i64 16
  store f64 f64 0.0, %40
  %42 = ptradd %35, i64 24
  store f64 f64 0.0, %42
  %44 = ptradd %35, i64 32
  store f64 f64 0.0, %44
  %46 = Mul.i64 %23, %16
  br bb4
bb4:
  %47 = phi i64 [bb3: i64 0], [bb5: %128]
  %48 = cmp.Slt.i64 %47, %16
  br %48, bb5, bb6
bb5:
  %49 = Add.i64 %46, %47
  %50 = Mul.i64 %49, i64 8
  %51 = ptradd %2, %50
  %52 = load i64, %51
  %53 = Mul.i64 %47, %18
  %54 = Add.i64 %53, %52
  %55 = Mul.i64 %54, i64 6
  %56 = Mul.i64 %55, i64 8
  %57 = ptradd %4, %56
  %58 = load f64, %57
  %59 = ptradd %57, i64 48
  %60 = load f64, %59
  %61 = FSub.f64 %60, %58
  %62 = FSub.f64 %21, %58
  %63 = FDiv.f64 %62, %61
  %64 = FSub.f64 f64 1.0, %63
  %65 = Mul.i64 %47, i64 8
  %66 = ptradd %8, %65
  %67 = load f64, %66
  %68 = ptradd %57, i64 8
  %69 = load f64, %68
  %70 = ptradd %57, i64 56
  %71 = load f64, %70
  %72 = FMul.f64 %69, %64
  %73 = FMul.f64 %71, %63
  %74 = FAdd.f64 %72, %73
  %75 = FMul.f64 %67, %74
  %76 = ptradd %35, i64 0
  %77 = load f64, %76
  %78 = FAdd.f64 %77, %75
  store f64 %78, %76
  %80 = ptradd %57, i64 16
  %81 = load f64, %80
  %82 = ptradd %57, i64 64
  %83 = load f64, %82
  %84 = FMul.f64 %81, %64
  %85 = FMul.f64 %83, %63
  %86 = FAdd.f64 %84, %85
  %87 = FMul.f64 %67, %86
  %88 = ptradd %35, i64 8
  %89 = load f64, %88
  %90 = FAdd.f64 %89, %87
  store f64 %90, %88
  %92 = ptradd %57, i64 24
  %93 = load f64, %92
  %94 = ptradd %57, i64 72
  %95 = load f64, %94
  %96 = FMul.f64 %93, %64
  %97 = FMul.f64 %95, %63
  %98 = FAdd.f64 %96, %97
  %99 = FMul.f64 %67, %98
  %100 = ptradd %35, i64 16
  %101 = load f64, %100
  %102 = FAdd.f64 %101, %99
  store f64 %102, %100
  %104 = ptradd %57, i64 32
  %105 = load f64, %104
  %106 = ptradd %57, i64 80
  %107 = load f64, %106
  %108 = FMul.f64 %105, %64
  %109 = FMul.f64 %107, %63
  %110 = FAdd.f64 %108, %109
  %111 = FMul.f64 %67, %110
  %112 = ptradd %35, i64 24
  %113 = load f64, %112
  %114 = FAdd.f64 %113, %111
  store f64 %114, %112
  %116 = ptradd %57, i64 40
  %117 = load f64, %116
  %118 = ptradd %57, i64 88
  %119 = load f64, %118
  %120 = FMul.f64 %117, %64
  %121 = FMul.f64 %119, %63
  %122 = FAdd.f64 %120, %121
  %123 = FMul.f64 %67, %122
  %124 = ptradd %35, i64 32
  %125 = load f64, %124
  %126 = FAdd.f64 %125, %123
  store f64 %126, %124
  %128 = Add.i64 %47, i64 1
  br bb4
bb6:
  %129 = Mul.i64 %arg0, i64 5
  %130 = Mul.i64 %129, i64 8
  %131 = ptradd %10, %130
  %132 = ptradd %35, i64 0
  %133 = load f64, %132
  %134 = ptradd %131, i64 0
  store f64 %133, %134
  %136 = ptradd %35, i64 8
  %137 = load f64, %136
  %138 = ptradd %131, i64 8
  store f64 %137, %138
  %140 = ptradd %35, i64 16
  %141 = load f64, %140
  %142 = ptradd %131, i64 16
  store f64 %141, %142
  %144 = ptradd %35, i64 24
  %145 = load f64, %144
  %146 = ptradd %131, i64 24
  store f64 %145, %146
  %148 = ptradd %35, i64 32
  %149 = load f64, %148
  %150 = ptradd %131, i64 32
  store f64 %149, %150
  call void @__kmpc_free_shared(%35, i64 40)
  ret void
}
define i64 @__kmpc_target_init(i64 %arg0) {
bb0:
  call void @__nzomp_trace()
  %1 = thread.id()
  %2 = cmp.Eq.i64 %1, i64 0
  %3 = cmp.Eq.i64 %arg0, i64 1
  br %3, bb1, bb2
bb1:
  %4 = block.dim()
  %5 = select.ptr %2, @__omp_rtl_is_spmd_mode, @__omp_rtl_dummy
  store i64 %arg0, %5
  %7 = select.ptr %2, @__omp_rtl_team_state, @__omp_rtl_dummy
  store i64 %4, %7
  %9 = ptradd @__omp_rtl_team_state, i64 8
  %10 = select.ptr %2, %9, @__omp_rtl_dummy
  store i64 i64 1, %10
  %12 = ptradd @__omp_rtl_team_state, i64 16
  %13 = select.ptr %2, %12, @__omp_rtl_dummy
  store i64 i64 1, %13
  %15 = ptradd @__omp_rtl_team_state, i64 40
  %16 = select.ptr %2, %15, @__omp_rtl_dummy
  store i64 i64 0, %16
  %18 = select.ptr %2, @__omp_rtl_smem_stack_top, @__omp_rtl_dummy
  store i64 i64 0, %18
  %20 = Mul.i64 %1, i64 8
  %21 = ptradd @__omp_rtl_thread_states, %20
  store ptr ptr 0, %21
  call void @__kmpc_syncthreads_aligned()
  %24 = load i64, @__omp_rtl_is_spmd_mode
  %25 = cmp.Eq.i64 %24, %arg0
  assume(%25)
  %27 = ptradd @__omp_rtl_team_state, i64 8
  %28 = load i64, %27
  %29 = cmp.Eq.i64 %28, i64 1
  assume(%29)
  %31 = block.dim()
  %32 = load i64, @__omp_rtl_team_state
  %33 = cmp.Eq.i64 %32, %31
  assume(%33)
  %35 = ptradd @__omp_rtl_team_state, i64 40
  %36 = load i64, %35
  %37 = cmp.Eq.i64 %36, i64 0
  assume(%37)
  ret i64 0
bb2:
  br %2, bb3, bb4
bb3:
  store i64 i64 0, @__omp_rtl_is_spmd_mode
  %40 = block.dim()
  store i64 %40, @__omp_rtl_team_state
  %42 = ptradd @__omp_rtl_team_state, i64 8
  store i64 i64 0, %42
  %44 = ptradd @__omp_rtl_team_state, i64 16
  store i64 i64 0, %44
  %46 = ptradd @__omp_rtl_team_state, i64 24
  store ptr ptr 0, %46
  %48 = ptradd @__omp_rtl_team_state, i64 32
  store ptr ptr 0, %48
  %50 = ptradd @__omp_rtl_team_state, i64 40
  store i64 i64 0, %50
  store i64 i64 0, @__omp_rtl_smem_stack_top
  %53 = Mul.i64 %1, i64 8
  %54 = ptradd @__omp_rtl_thread_states, %53
  store ptr ptr 0, %54
  ret i64 0
bb4:
  %56 = Mul.i64 %1, i64 8
  %57 = ptradd @__omp_rtl_thread_states, %56
  store ptr ptr 0, %57
  call void @__kmpc_worker_loop()
  ret i64 1
}
define void @__kmpc_target_deinit(i64 %arg0) {
bb0:
  call void @__nzomp_trace()
  %1 = cmp.Eq.i64 %arg0, i64 1
  br %1, bb2, bb1
bb1:
  %2 = ptradd @__omp_rtl_team_state, i64 24
  store ptr ptr 0, %2
  barrier()
  br bb2
bb2:
  ret void
}
define void @__kmpc_distribute_parallel_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2) {
bb0:
  call void @__nzomp_trace()
  %1 = call i64 @omp_get_thread_num()
  %2 = call i64 @omp_get_num_threads()
  %3 = call i64 @omp_get_team_num()
  %4 = call i64 @omp_get_num_teams()
  %5 = Mul.i64 %3, %2
  %6 = Add.i64 %5, %1
  %7 = Mul.i64 %4, %2
  %8 = cmp.Slt.i64 %6, %arg2
  br %8, bb1, bb4
bb1:
  %9 = phi i64 [bb0: %6], [bb2: %11]
  call void %arg0(%9, %arg1)
  %11 = Add.i64 %9, %7
  %12 = load i64, @__omp_rtl_assume_threads_oversubscription
  %13 = cmp.Ne.i64 %12, i64 0
  br %13, bb3, bb2
bb2:
  %16 = cmp.Slt.i64 %11, %arg2
  br %16, bb1, bb4
bb3:
  %14 = cmp.Sge.i64 %11, %arg2
  call void @__nzomp_assert(%14)
  br bb4
bb4:
  ret void
}
define void @xs_lookup_kernel(ptr %arg0, ptr %arg1, ptr %arg2, ptr %arg3, ptr %arg4, ptr %arg5, i64 %arg6, i64 %arg7, i64 %arg8, i64 %arg9) {
bb0:
  %1 = alloca 80
  %0 = call i64 @__kmpc_target_init(i64 1)
  store ptr %arg0, %1
  %3 = ptradd %1, i64 8
  store ptr %arg1, %3
  %5 = ptradd %1, i64 16
  store ptr %arg2, %5
  %7 = ptradd %1, i64 24
  store ptr %arg3, %7
  %9 = ptradd %1, i64 32
  store ptr %arg4, %9
  %11 = ptradd %1, i64 40
  store ptr %arg5, %11
  %13 = ptradd %1, i64 48
  store i64 %arg6, %13
  %15 = ptradd %1, i64 56
  store i64 %arg7, %15
  %17 = ptradd %1, i64 64
  store i64 %arg8, %17
  %19 = ptradd %1, i64 72
  store i64 %arg9, %19
  call void @__kmpc_distribute_parallel_for_static_loop(@xs_lookup_kernel.omp_outlined.body.0, %1, %arg6)
  call void @__kmpc_target_deinit(i64 1)
  ret void
}
define void @__nzomp_trace() [always_inline] {
bb0:
  %0 = load i64, @__omp_rtl_debug_kind
  %1 = And.i64 %0, i64 2
  %2 = cmp.Ne.i64 %1, i64 0
  br %2, bb1, bb2
bb1:
  %3 = atomic.Add.i64 @__omp_rtl_trace_count, i64 1
  br bb2
bb2:
  ret void
}
define void @__nzomp_assert(i1 %arg0) [always_inline] {
bb0:
  %0 = load i64, @__omp_rtl_debug_kind
  %1 = And.i64 %0, i64 1
  %2 = cmp.Ne.i64 %1, i64 0
  br %2, bb1, bb2
bb1:
  br %arg0, bb4, bb3
bb2:
  assume(%arg0)
  br bb4
bb3:
  assert.fail()
  unreachable
bb4:
  ret void
}
define void @__kmpc_syncthreads_aligned() [aligned_barrier,no_call_asm,noinline] {
bb0:
  barrier.aligned()
  ret void
}
define void @__kmpc_barrier() [always_inline] {
bb0:
  %0 = load i64, @__omp_rtl_is_spmd_mode
  %1 = cmp.Ne.i64 %0, i64 0
  br %1, bb1, bb2
bb1:
  call void @__kmpc_syncthreads_aligned()
  br bb3
bb2:
  barrier()
  br bb3
bb3:
  ret void
}
define i64 @omp_get_thread_num() {
bb0:
  call void @__nzomp_trace()
  %1 = thread.id()
  %2 = Mul.i64 %1, i64 8
  %3 = ptradd @__omp_rtl_thread_states, %2
  %4 = load ptr, %3
  %5 = cmp.Ne.ptr %4, ptr 0
  br %5, bb1, bb2
bb1:
  %6 = ptradd %4, i64 8
  %7 = load i64, %6
  ret %7
bb2:
  %8 = ptradd @__omp_rtl_team_state, i64 8
  %9 = load i64, %8
  %10 = cmp.Sgt.i64 %9, i64 1
  %11 = select.i64 %10, i64 0, %1
  ret %11
}
define i64 @omp_get_num_threads() {
bb0:
  call void @__nzomp_trace()
  %1 = thread.id()
  %2 = Mul.i64 %1, i64 8
  %3 = ptradd @__omp_rtl_thread_states, %2
  %4 = load ptr, %3
  %5 = cmp.Ne.ptr %4, ptr 0
  br %5, bb1, bb2
bb1:
  %6 = ptradd %4, i64 16
  %7 = load i64, %6
  ret %7
bb2:
  %8 = ptradd @__omp_rtl_team_state, i64 8
  %9 = load i64, %8
  %10 = cmp.Eq.i64 %9, i64 1
  %11 = load i64, @__omp_rtl_team_state
  %12 = select.i64 %10, %11, i64 1
  ret %12
}
define i64 @omp_get_level() {
bb0:
  call void @__nzomp_trace()
  %1 = thread.id()
  %2 = Mul.i64 %1, i64 8
  %3 = ptradd @__omp_rtl_thread_states, %2
  %4 = load ptr, %3
  %5 = cmp.Ne.ptr %4, ptr 0
  br %5, bb1, bb2
bb1:
  %6 = ptradd %4, i64 24
  %7 = load i64, %6
  ret %7
bb2:
  %8 = ptradd @__omp_rtl_team_state, i64 8
  %9 = load i64, %8
  ret %9
}
define i64 @omp_get_team_num() [always_inline,read_none] {
bb0:
  %0 = block.id()
  ret %0
}
define i64 @omp_get_num_teams() [always_inline,read_none] {
bb0:
  %0 = grid.dim()
  ret %0
}
define void @__kmpc_parallel_51(ptr %arg0, ptr %arg1) {
bb0:
  call void @__nzomp_trace()
  %1 = call i64 @omp_get_level()
  %2 = cmp.Eq.i64 %1, i64 0
  br %2, bb1, bb2
bb1:
  %3 = ptradd @__omp_rtl_team_state, i64 32
  store ptr %arg1, %3
  %5 = ptradd @__omp_rtl_team_state, i64 24
  store ptr %arg0, %5
  %7 = ptradd @__omp_rtl_team_state, i64 8
  store i64 i64 1, %7
  barrier()
  call void %arg0(%arg1)
  barrier()
  %12 = ptradd @__omp_rtl_team_state, i64 8
  store i64 i64 0, %12
  ret void
bb2:
  %14 = thread.id()
  %15 = call ptr @__kmpc_alloc_shared(i64 40)
  %16 = Mul.i64 %14, i64 8
  %17 = ptradd @__omp_rtl_thread_states, %16
  %18 = load ptr, %17
  %19 = ptradd %15, i64 0
  store ptr %18, %19
  %21 = ptradd %15, i64 8
  store i64 i64 0, %21
  %23 = ptradd %15, i64 16
  store i64 i64 1, %23
  %25 = Add.i64 %1, i64 1
  %26 = ptradd %15, i64 24
  store i64 %25, %26
  store ptr %15, %17
  %29 = ptradd @__omp_rtl_team_state, i64 40
  store i64 i64 1, %29
  call void %arg0(%arg1)
  store ptr %18, %17
  call void @__kmpc_free_shared(%15, i64 40)
  ret void
}
define void @__kmpc_parallel_spmd(ptr %arg0, ptr %arg1) {
bb0:
  call void @__nzomp_trace()
  call void @__kmpc_syncthreads_aligned()
  call void %arg0(%arg1)
  call void @__kmpc_syncthreads_aligned()
  ret void
}
define void @__kmpc_worker_loop() {
bb0:
  br bb1
bb1:
  barrier()
  %1 = ptradd @__omp_rtl_team_state, i64 24
  %2 = load ptr, %1
  %3 = cmp.Ne.ptr %2, ptr 0
  br %3, bb2, bb3
bb2:
  %4 = ptradd @__omp_rtl_team_state, i64 32
  %5 = load ptr, %4
  call void %2(%5)
  barrier()
  br bb1
bb3:
  ret void
}
define void @__kmpc_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2, i64 %arg3) {
bb0:
  call void @__nzomp_trace()
  %1 = call i64 @omp_get_thread_num()
  %2 = call i64 @omp_get_num_threads()
  %3 = cmp.Slt.i64 %1, %arg2
  br %3, bb1, bb4
bb1:
  %4 = phi i64 [bb0: %1], [bb2: %6]
  call void %arg0(%4, %arg1)
  %6 = Add.i64 %4, %2
  %7 = load i64, @__omp_rtl_assume_threads_oversubscription
  %8 = cmp.Ne.i64 %7, i64 0
  br %8, bb3, bb2
bb2:
  %11 = cmp.Slt.i64 %6, %arg2
  br %11, bb1, bb4
bb3:
  %9 = cmp.Sge.i64 %6, %arg2
  call void @__nzomp_assert(%9)
  br bb4
bb4:
  %12 = cmp.Ne.i64 %arg3, i64 0
  br %12, bb6, bb5
bb5:
  call void @__kmpc_barrier()
  br bb6
bb6:
  ret void
}
define void @__kmpc_distribute_static_loop(ptr %arg0, ptr %arg1, i64 %arg2) {
bb0:
  call void @__nzomp_trace()
  %1 = block.id()
  %2 = grid.dim()
  %3 = cmp.Slt.i64 %1, %arg2
  br %3, bb1, bb4
bb1:
  %4 = phi i64 [bb0: %1], [bb2: %6]
  call void %arg0(%4, %arg1)
  %6 = Add.i64 %4, %2
  %7 = load i64, @__omp_rtl_assume_teams_oversubscription
  %8 = cmp.Ne.i64 %7, i64 0
  br %8, bb3, bb2
bb2:
  %11 = cmp.Slt.i64 %6, %arg2
  br %11, bb1, bb4
bb3:
  %9 = cmp.Sge.i64 %6, %arg2
  call void @__nzomp_assert(%9)
  br bb4
bb4:
  ret void
}
