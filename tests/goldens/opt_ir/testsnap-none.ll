; module testsnap
@__omp_rtl_is_spmd_mode = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_team_state = shared [64 x i8] init=zero linkage=internal
@__omp_rtl_thread_states = shared [2048 x i8] init=zero linkage=internal
@__omp_rtl_smem_stack = shared [9168 x i8] init=zero linkage=internal
@__omp_rtl_smem_stack_top = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_dummy = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_debug_kind = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_assume_teams_oversubscription = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_assume_threads_oversubscription = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_trace_count = global [8 x i8] init=zero linkage=internal
; kernel @snap_force_kernel mode=Spmd
define internal void @snap_force_kernel.omp_outlined.body.0(i64 %arg0, ptr %arg1) {
bb0:
  %11 = alloca 24
  %38 = alloca 8
  %0 = load ptr, %arg1
  %1 = ptradd %arg1, i64 8
  %2 = load ptr, %1
  %3 = ptradd %arg1, i64 16
  %4 = load ptr, %3
  %5 = ptradd %arg1, i64 24
  %6 = load i64, %5
  %7 = ptradd %arg1, i64 32
  %8 = load i64, %7
  %9 = ptradd %arg1, i64 40
  %10 = load i64, %9
  %12 = ptradd %11, i64 0
  store f64 f64 0.0, %12
  %14 = ptradd %11, i64 8
  store f64 f64 0.0, %14
  %16 = ptradd %11, i64 16
  store f64 f64 0.0, %16
  %18 = Mul.i64 %arg0, %8
  br bb1
bb1:
  %19 = phi i64 [bb0: i64 0], [bb6: %69]
  %20 = cmp.Slt.i64 %19, %8
  br %20, bb2, bb3
bb2:
  %21 = Add.i64 %18, %19
  %22 = Mul.i64 %21, i64 3
  %23 = Mul.i64 %22, i64 8
  %24 = ptradd %0, %23
  %25 = load f64, %24
  %26 = ptradd %24, i64 8
  %27 = load f64, %26
  %28 = ptradd %24, i64 16
  %29 = load f64, %28
  %30 = FMul.f64 %25, %25
  %31 = FMul.f64 %27, %27
  %32 = FMul.f64 %29, %29
  %33 = FAdd.f64 %30, %31
  %34 = FAdd.f64 %33, %32
  %35 = FDiv.f64 %34, f64 4.0
  %36 = FSub.f64 f64 1.0, %35
  %37 = FMul.f64 %36, %36
  store f64 f64 0.0, %38
  br bb4
bb3:
  %70 = Mul.i64 %arg0, i64 3
  %71 = Mul.i64 %70, i64 8
  %72 = ptradd %4, %71
  %73 = ptradd %11, i64 0
  %74 = load f64, %73
  %75 = ptradd %72, i64 0
  store f64 %74, %75
  %77 = ptradd %11, i64 8
  %78 = load f64, %77
  %79 = ptradd %72, i64 8
  store f64 %78, %79
  %81 = ptradd %11, i64 16
  %82 = load f64, %81
  %83 = ptradd %72, i64 16
  store f64 %82, %83
  ret void
bb4:
  %40 = phi i64 [bb2: i64 0], [bb5: %51]
  %41 = cmp.Slt.i64 %40, %10
  br %41, bb5, bb6
bb5:
  %42 = Sub.i64 %10, i64 1
  %43 = Sub.i64 %42, %40
  %44 = Mul.i64 %43, i64 8
  %45 = ptradd %2, %44
  %46 = load f64, %45
  %47 = load f64, %38
  %48 = FMul.f64 %47, %34
  %49 = FAdd.f64 %48, %46
  store f64 %49, %38
  %51 = Add.i64 %40, i64 1
  br bb4
bb6:
  %52 = load f64, %38
  %53 = FMul.f64 %37, %52
  %54 = FMul.f64 %25, %53
  %55 = ptradd %11, i64 0
  %56 = load f64, %55
  %57 = FAdd.f64 %56, %54
  store f64 %57, %55
  %59 = FMul.f64 %27, %53
  %60 = ptradd %11, i64 8
  %61 = load f64, %60
  %62 = FAdd.f64 %61, %59
  store f64 %62, %60
  %64 = FMul.f64 %29, %53
  %65 = ptradd %11, i64 16
  %66 = load f64, %65
  %67 = FAdd.f64 %66, %64
  store f64 %67, %65
  %69 = Add.i64 %19, i64 1
  br bb1
}
define i64 @__kmpc_target_init(i64 %arg0) {
bb0:
  call void @__nzomp_trace()
  %1 = thread.id()
  %2 = cmp.Eq.i64 %1, i64 0
  %3 = cmp.Eq.i64 %arg0, i64 1
  br %3, bb1, bb2
bb1:
  %4 = block.dim()
  %5 = select.ptr %2, @__omp_rtl_is_spmd_mode, @__omp_rtl_dummy
  store i64 %arg0, %5
  %7 = select.ptr %2, @__omp_rtl_team_state, @__omp_rtl_dummy
  store i64 %4, %7
  %9 = ptradd @__omp_rtl_team_state, i64 8
  %10 = select.ptr %2, %9, @__omp_rtl_dummy
  store i64 i64 1, %10
  %12 = ptradd @__omp_rtl_team_state, i64 16
  %13 = select.ptr %2, %12, @__omp_rtl_dummy
  store i64 i64 1, %13
  %15 = ptradd @__omp_rtl_team_state, i64 40
  %16 = select.ptr %2, %15, @__omp_rtl_dummy
  store i64 i64 0, %16
  %18 = select.ptr %2, @__omp_rtl_smem_stack_top, @__omp_rtl_dummy
  store i64 i64 0, %18
  %20 = Mul.i64 %1, i64 8
  %21 = ptradd @__omp_rtl_thread_states, %20
  store ptr ptr 0, %21
  call void @__kmpc_syncthreads_aligned()
  %24 = load i64, @__omp_rtl_is_spmd_mode
  %25 = cmp.Eq.i64 %24, %arg0
  assume(%25)
  %27 = ptradd @__omp_rtl_team_state, i64 8
  %28 = load i64, %27
  %29 = cmp.Eq.i64 %28, i64 1
  assume(%29)
  %31 = block.dim()
  %32 = load i64, @__omp_rtl_team_state
  %33 = cmp.Eq.i64 %32, %31
  assume(%33)
  %35 = ptradd @__omp_rtl_team_state, i64 40
  %36 = load i64, %35
  %37 = cmp.Eq.i64 %36, i64 0
  assume(%37)
  ret i64 0
bb2:
  br %2, bb3, bb4
bb3:
  store i64 i64 0, @__omp_rtl_is_spmd_mode
  %40 = block.dim()
  store i64 %40, @__omp_rtl_team_state
  %42 = ptradd @__omp_rtl_team_state, i64 8
  store i64 i64 0, %42
  %44 = ptradd @__omp_rtl_team_state, i64 16
  store i64 i64 0, %44
  %46 = ptradd @__omp_rtl_team_state, i64 24
  store ptr ptr 0, %46
  %48 = ptradd @__omp_rtl_team_state, i64 32
  store ptr ptr 0, %48
  %50 = ptradd @__omp_rtl_team_state, i64 40
  store i64 i64 0, %50
  store i64 i64 0, @__omp_rtl_smem_stack_top
  %53 = Mul.i64 %1, i64 8
  %54 = ptradd @__omp_rtl_thread_states, %53
  store ptr ptr 0, %54
  ret i64 0
bb4:
  %56 = Mul.i64 %1, i64 8
  %57 = ptradd @__omp_rtl_thread_states, %56
  store ptr ptr 0, %57
  call void @__kmpc_worker_loop()
  ret i64 1
}
define void @__kmpc_target_deinit(i64 %arg0) {
bb0:
  call void @__nzomp_trace()
  %1 = cmp.Eq.i64 %arg0, i64 1
  br %1, bb2, bb1
bb1:
  %2 = ptradd @__omp_rtl_team_state, i64 24
  store ptr ptr 0, %2
  barrier()
  br bb2
bb2:
  ret void
}
define void @__kmpc_distribute_parallel_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2) {
bb0:
  call void @__nzomp_trace()
  %1 = call i64 @omp_get_thread_num()
  %2 = call i64 @omp_get_num_threads()
  %3 = call i64 @omp_get_team_num()
  %4 = call i64 @omp_get_num_teams()
  %5 = Mul.i64 %3, %2
  %6 = Add.i64 %5, %1
  %7 = Mul.i64 %4, %2
  %8 = cmp.Slt.i64 %6, %arg2
  br %8, bb1, bb4
bb1:
  %9 = phi i64 [bb0: %6], [bb2: %11]
  call void %arg0(%9, %arg1)
  %11 = Add.i64 %9, %7
  %12 = load i64, @__omp_rtl_assume_threads_oversubscription
  %13 = cmp.Ne.i64 %12, i64 0
  br %13, bb3, bb2
bb2:
  %16 = cmp.Slt.i64 %11, %arg2
  br %16, bb1, bb4
bb3:
  %14 = cmp.Sge.i64 %11, %arg2
  call void @__nzomp_assert(%14)
  br bb4
bb4:
  ret void
}
define void @snap_force_kernel(ptr %arg0, ptr %arg1, ptr %arg2, i64 %arg3, i64 %arg4, i64 %arg5) {
bb0:
  %1 = alloca 48
  %0 = call i64 @__kmpc_target_init(i64 1)
  store ptr %arg0, %1
  %3 = ptradd %1, i64 8
  store ptr %arg1, %3
  %5 = ptradd %1, i64 16
  store ptr %arg2, %5
  %7 = ptradd %1, i64 24
  store i64 %arg3, %7
  %9 = ptradd %1, i64 32
  store i64 %arg4, %9
  %11 = ptradd %1, i64 40
  store i64 %arg5, %11
  call void @__kmpc_distribute_parallel_for_static_loop(@snap_force_kernel.omp_outlined.body.0, %1, %arg3)
  call void @__kmpc_target_deinit(i64 1)
  ret void
}
define void @__nzomp_trace() [always_inline] {
bb0:
  %0 = load i64, @__omp_rtl_debug_kind
  %1 = And.i64 %0, i64 2
  %2 = cmp.Ne.i64 %1, i64 0
  br %2, bb1, bb2
bb1:
  %3 = atomic.Add.i64 @__omp_rtl_trace_count, i64 1
  br bb2
bb2:
  ret void
}
define void @__nzomp_assert(i1 %arg0) [always_inline] {
bb0:
  %0 = load i64, @__omp_rtl_debug_kind
  %1 = And.i64 %0, i64 1
  %2 = cmp.Ne.i64 %1, i64 0
  br %2, bb1, bb2
bb1:
  br %arg0, bb4, bb3
bb2:
  assume(%arg0)
  br bb4
bb3:
  assert.fail()
  unreachable
bb4:
  ret void
}
define void @__kmpc_syncthreads_aligned() [aligned_barrier,no_call_asm,noinline] {
bb0:
  barrier.aligned()
  ret void
}
define void @__kmpc_barrier() [always_inline] {
bb0:
  %0 = load i64, @__omp_rtl_is_spmd_mode
  %1 = cmp.Ne.i64 %0, i64 0
  br %1, bb1, bb2
bb1:
  call void @__kmpc_syncthreads_aligned()
  br bb3
bb2:
  barrier()
  br bb3
bb3:
  ret void
}
define i64 @omp_get_thread_num() {
bb0:
  call void @__nzomp_trace()
  %1 = thread.id()
  %2 = Mul.i64 %1, i64 8
  %3 = ptradd @__omp_rtl_thread_states, %2
  %4 = load ptr, %3
  %5 = cmp.Ne.ptr %4, ptr 0
  br %5, bb1, bb2
bb1:
  %6 = ptradd %4, i64 8
  %7 = load i64, %6
  ret %7
bb2:
  %8 = ptradd @__omp_rtl_team_state, i64 8
  %9 = load i64, %8
  %10 = cmp.Sgt.i64 %9, i64 1
  %11 = select.i64 %10, i64 0, %1
  ret %11
}
define i64 @omp_get_num_threads() {
bb0:
  call void @__nzomp_trace()
  %1 = thread.id()
  %2 = Mul.i64 %1, i64 8
  %3 = ptradd @__omp_rtl_thread_states, %2
  %4 = load ptr, %3
  %5 = cmp.Ne.ptr %4, ptr 0
  br %5, bb1, bb2
bb1:
  %6 = ptradd %4, i64 16
  %7 = load i64, %6
  ret %7
bb2:
  %8 = ptradd @__omp_rtl_team_state, i64 8
  %9 = load i64, %8
  %10 = cmp.Eq.i64 %9, i64 1
  %11 = load i64, @__omp_rtl_team_state
  %12 = select.i64 %10, %11, i64 1
  ret %12
}
define i64 @omp_get_level() {
bb0:
  call void @__nzomp_trace()
  %1 = thread.id()
  %2 = Mul.i64 %1, i64 8
  %3 = ptradd @__omp_rtl_thread_states, %2
  %4 = load ptr, %3
  %5 = cmp.Ne.ptr %4, ptr 0
  br %5, bb1, bb2
bb1:
  %6 = ptradd %4, i64 24
  %7 = load i64, %6
  ret %7
bb2:
  %8 = ptradd @__omp_rtl_team_state, i64 8
  %9 = load i64, %8
  ret %9
}
define i64 @omp_get_team_num() [always_inline,read_none] {
bb0:
  %0 = block.id()
  ret %0
}
define i64 @omp_get_num_teams() [always_inline,read_none] {
bb0:
  %0 = grid.dim()
  ret %0
}
define ptr @__kmpc_alloc_shared(i64 %arg0) [noinline] {
bb0:
  call void @__nzomp_trace()
  %1 = Add.i64 %arg0, i64 7
  %2 = And.i64 %1, i64 -8
  %3 = atomic.Add.i64 @__omp_rtl_smem_stack_top, %2
  %4 = Add.i64 %3, %2
  %5 = cmp.Sle.i64 %4, i64 9168
  br %5, bb1, bb2
bb1:
  %6 = ptradd @__omp_rtl_smem_stack, %3
  ret %6
bb2:
  %7 = Sub.i64 i64 0, %2
  %8 = atomic.Add.i64 @__omp_rtl_smem_stack_top, %7
  %9 = malloc(%2)
  ret %9
}
define void @__kmpc_free_shared(ptr %arg0, i64 %arg1) [noinline] {
bb0:
  call void @__nzomp_trace()
  %1 = Add.i64 %arg1, i64 7
  %2 = And.i64 %1, i64 -8
  %3 = PtrCast %arg0 to i64
  %4 = PtrCast @__omp_rtl_smem_stack to i64
  %5 = Add.i64 %4, i64 9168
  %6 = cmp.Uge.i64 %3, %4
  %7 = cmp.Ult.i64 %3, %5
  %8 = And.i64 %6, %7
  %9 = cmp.Ne.i64 %8, i64 0
  br %9, bb1, bb2
bb1:
  %10 = Sub.i64 i64 0, %2
  %11 = atomic.Add.i64 @__omp_rtl_smem_stack_top, %10
  br bb3
bb2:
  free(%arg0)
  br bb3
bb3:
  ret void
}
define void @__kmpc_parallel_51(ptr %arg0, ptr %arg1) {
bb0:
  call void @__nzomp_trace()
  %1 = call i64 @omp_get_level()
  %2 = cmp.Eq.i64 %1, i64 0
  br %2, bb1, bb2
bb1:
  %3 = ptradd @__omp_rtl_team_state, i64 32
  store ptr %arg1, %3
  %5 = ptradd @__omp_rtl_team_state, i64 24
  store ptr %arg0, %5
  %7 = ptradd @__omp_rtl_team_state, i64 8
  store i64 i64 1, %7
  barrier()
  call void %arg0(%arg1)
  barrier()
  %12 = ptradd @__omp_rtl_team_state, i64 8
  store i64 i64 0, %12
  ret void
bb2:
  %14 = thread.id()
  %15 = call ptr @__kmpc_alloc_shared(i64 40)
  %16 = Mul.i64 %14, i64 8
  %17 = ptradd @__omp_rtl_thread_states, %16
  %18 = load ptr, %17
  %19 = ptradd %15, i64 0
  store ptr %18, %19
  %21 = ptradd %15, i64 8
  store i64 i64 0, %21
  %23 = ptradd %15, i64 16
  store i64 i64 1, %23
  %25 = Add.i64 %1, i64 1
  %26 = ptradd %15, i64 24
  store i64 %25, %26
  store ptr %15, %17
  %29 = ptradd @__omp_rtl_team_state, i64 40
  store i64 i64 1, %29
  call void %arg0(%arg1)
  store ptr %18, %17
  call void @__kmpc_free_shared(%15, i64 40)
  ret void
}
define void @__kmpc_parallel_spmd(ptr %arg0, ptr %arg1) {
bb0:
  call void @__nzomp_trace()
  call void @__kmpc_syncthreads_aligned()
  call void %arg0(%arg1)
  call void @__kmpc_syncthreads_aligned()
  ret void
}
define void @__kmpc_worker_loop() {
bb0:
  br bb1
bb1:
  barrier()
  %1 = ptradd @__omp_rtl_team_state, i64 24
  %2 = load ptr, %1
  %3 = cmp.Ne.ptr %2, ptr 0
  br %3, bb2, bb3
bb2:
  %4 = ptradd @__omp_rtl_team_state, i64 32
  %5 = load ptr, %4
  call void %2(%5)
  barrier()
  br bb1
bb3:
  ret void
}
define void @__kmpc_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2, i64 %arg3) {
bb0:
  call void @__nzomp_trace()
  %1 = call i64 @omp_get_thread_num()
  %2 = call i64 @omp_get_num_threads()
  %3 = cmp.Slt.i64 %1, %arg2
  br %3, bb1, bb4
bb1:
  %4 = phi i64 [bb0: %1], [bb2: %6]
  call void %arg0(%4, %arg1)
  %6 = Add.i64 %4, %2
  %7 = load i64, @__omp_rtl_assume_threads_oversubscription
  %8 = cmp.Ne.i64 %7, i64 0
  br %8, bb3, bb2
bb2:
  %11 = cmp.Slt.i64 %6, %arg2
  br %11, bb1, bb4
bb3:
  %9 = cmp.Sge.i64 %6, %arg2
  call void @__nzomp_assert(%9)
  br bb4
bb4:
  %12 = cmp.Ne.i64 %arg3, i64 0
  br %12, bb6, bb5
bb5:
  call void @__kmpc_barrier()
  br bb6
bb6:
  ret void
}
define void @__kmpc_distribute_static_loop(ptr %arg0, ptr %arg1, i64 %arg2) {
bb0:
  call void @__nzomp_trace()
  %1 = block.id()
  %2 = grid.dim()
  %3 = cmp.Slt.i64 %1, %arg2
  br %3, bb1, bb4
bb1:
  %4 = phi i64 [bb0: %1], [bb2: %6]
  call void %arg0(%4, %arg1)
  %6 = Add.i64 %4, %2
  %7 = load i64, @__omp_rtl_assume_teams_oversubscription
  %8 = cmp.Ne.i64 %7, i64 0
  br %8, bb3, bb2
bb2:
  %11 = cmp.Slt.i64 %6, %arg2
  br %11, bb1, bb4
bb3:
  %9 = cmp.Sge.i64 %6, %arg2
  call void @__nzomp_assert(%9)
  br bb4
bb4:
  ret void
}
