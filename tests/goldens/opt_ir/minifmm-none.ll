; module minifmm
@__omp_rtl_is_spmd_mode = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_team_state = shared [64 x i8] init=zero linkage=internal
@__omp_rtl_thread_states = shared [2048 x i8] init=zero linkage=internal
@__omp_rtl_smem_stack = shared [9168 x i8] init=zero linkage=internal
@__omp_rtl_smem_stack_top = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_dummy = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_debug_kind = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_assume_teams_oversubscription = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_assume_threads_oversubscription = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_trace_count = global [8 x i8] init=zero linkage=internal
; kernel @fmm_p2p_kernel mode=Generic
define i64 @omp_get_team_num() [always_inline,read_none] {
bb0:
  %0 = block.id()
  ret %0
}
define i64 @omp_get_num_threads() {
bb0:
  call void @__nzomp_trace()
  %1 = thread.id()
  %2 = Mul.i64 %1, i64 8
  %3 = ptradd @__omp_rtl_thread_states, %2
  %4 = load ptr, %3
  %5 = cmp.Ne.ptr %4, ptr 0
  br %5, bb1, bb2
bb1:
  %6 = ptradd %4, i64 16
  %7 = load i64, %6
  ret %7
bb2:
  %8 = ptradd @__omp_rtl_team_state, i64 8
  %9 = load i64, %8
  %10 = cmp.Eq.i64 %9, i64 1
  %11 = load i64, @__omp_rtl_team_state
  %12 = select.i64 %10, %11, i64 1
  ret %12
}
define i64 @omp_get_thread_num() {
bb0:
  call void @__nzomp_trace()
  %1 = thread.id()
  %2 = Mul.i64 %1, i64 8
  %3 = ptradd @__omp_rtl_thread_states, %2
  %4 = load ptr, %3
  %5 = cmp.Ne.ptr %4, ptr 0
  br %5, bb1, bb2
bb1:
  %6 = ptradd %4, i64 8
  %7 = load i64, %6
  ret %7
bb2:
  %8 = ptradd @__omp_rtl_team_state, i64 8
  %9 = load i64, %8
  %10 = cmp.Sgt.i64 %9, i64 1
  %11 = select.i64 %10, i64 0, %1
  ret %11
}
define internal f64 @p2p_leaf_omp(i64 %arg0, i64 %arg1, i64 %arg2, i64 %arg3, ptr %arg4, ptr %arg5, ptr %arg6, ptr %arg7, ptr %arg8, i64 %arg9) [noinline] {
bb0:
  %35 = alloca 8
  %0 = call i64 @omp_get_team_num()
  %1 = call i64 @omp_get_num_threads()
  %2 = call i64 @omp_get_thread_num()
  %3 = Mul.i64 %0, %1
  %4 = Add.i64 %3, %2
  %5 = Mul.i64 %arg9, i64 32
  %6 = Mul.i64 %4, %5
  %7 = ptradd %arg8, %6
  %8 = Sub.i64 %arg3, %arg2
  br bb1
bb1:
  %9 = phi i64 [bb0: i64 0], [bb2: %34]
  %10 = cmp.Slt.i64 %9, %8
  br %10, bb2, bb3
bb2:
  %11 = Add.i64 %arg2, %9
  %12 = Mul.i64 %9, i64 32
  %13 = ptradd %7, %12
  %14 = Mul.i64 %11, i64 8
  %15 = ptradd %arg4, %14
  %16 = load f64, %15
  %17 = ptradd %13, i64 0
  store f64 %16, %17
  %19 = Mul.i64 %11, i64 8
  %20 = ptradd %arg5, %19
  %21 = load f64, %20
  %22 = ptradd %13, i64 8
  store f64 %21, %22
  %24 = Mul.i64 %11, i64 8
  %25 = ptradd %arg6, %24
  %26 = load f64, %25
  %27 = ptradd %13, i64 16
  store f64 %26, %27
  %29 = Mul.i64 %11, i64 8
  %30 = ptradd %arg7, %29
  %31 = load f64, %30
  %32 = ptradd %13, i64 24
  store f64 %31, %32
  %34 = Add.i64 %9, i64 1
  br bb1
bb3:
  store f64 f64 0.0, %35
  br bb4
bb4:
  %37 = phi i64 [bb3: %arg0], [bb9: %79]
  %38 = cmp.Slt.i64 %37, %arg1
  br %38, bb5, bb6
bb5:
  %39 = Mul.i64 %37, i64 8
  %40 = ptradd %arg4, %39
  %41 = load f64, %40
  %42 = Mul.i64 %37, i64 8
  %43 = ptradd %arg5, %42
  %44 = load f64, %43
  %45 = Mul.i64 %37, i64 8
  %46 = ptradd %arg6, %45
  %47 = load f64, %46
  %48 = Mul.i64 %37, i64 8
  %49 = ptradd %arg7, %48
  %50 = load f64, %49
  br bb7
bb6:
  %80 = load f64, %35
  ret %80
bb7:
  %51 = phi i64 [bb5: i64 0], [bb8: %78]
  %52 = cmp.Slt.i64 %51, %8
  br %52, bb8, bb9
bb8:
  %53 = Mul.i64 %51, i64 32
  %54 = ptradd %7, %53
  %55 = load f64, %54
  %56 = ptradd %54, i64 8
  %57 = load f64, %56
  %58 = ptradd %54, i64 16
  %59 = load f64, %58
  %60 = ptradd %54, i64 24
  %61 = load f64, %60
  %62 = FSub.f64 %41, %55
  %63 = FSub.f64 %44, %57
  %64 = FSub.f64 %47, %59
  %65 = FMul.f64 %62, %62
  %66 = FMul.f64 %63, %63
  %67 = FMul.f64 %64, %64
  %68 = FAdd.f64 %65, %66
  %69 = FAdd.f64 %68, %67
  %70 = FAdd.f64 %69, f64 0.01
  %71 = Sqrt.f64 %70
  %72 = FDiv.f64 f64 1.0, %71
  %73 = FMul.f64 %61, %72
  %74 = FMul.f64 %50, %73
  %75 = load f64, %35
  %76 = FAdd.f64 %75, %74
  store f64 %76, %35
  %78 = Add.i64 %51, i64 1
  br bb7
bb9:
  %79 = Add.i64 %37, i64 1
  br bb4
}
define i64 @__kmpc_target_init(i64 %arg0) {
bb0:
  call void @__nzomp_trace()
  %1 = thread.id()
  %2 = cmp.Eq.i64 %1, i64 0
  %3 = cmp.Eq.i64 %arg0, i64 1
  br %3, bb1, bb2
bb1:
  %4 = block.dim()
  %5 = select.ptr %2, @__omp_rtl_is_spmd_mode, @__omp_rtl_dummy
  store i64 %arg0, %5
  %7 = select.ptr %2, @__omp_rtl_team_state, @__omp_rtl_dummy
  store i64 %4, %7
  %9 = ptradd @__omp_rtl_team_state, i64 8
  %10 = select.ptr %2, %9, @__omp_rtl_dummy
  store i64 i64 1, %10
  %12 = ptradd @__omp_rtl_team_state, i64 16
  %13 = select.ptr %2, %12, @__omp_rtl_dummy
  store i64 i64 1, %13
  %15 = ptradd @__omp_rtl_team_state, i64 40
  %16 = select.ptr %2, %15, @__omp_rtl_dummy
  store i64 i64 0, %16
  %18 = select.ptr %2, @__omp_rtl_smem_stack_top, @__omp_rtl_dummy
  store i64 i64 0, %18
  %20 = Mul.i64 %1, i64 8
  %21 = ptradd @__omp_rtl_thread_states, %20
  store ptr ptr 0, %21
  call void @__kmpc_syncthreads_aligned()
  %24 = load i64, @__omp_rtl_is_spmd_mode
  %25 = cmp.Eq.i64 %24, %arg0
  assume(%25)
  %27 = ptradd @__omp_rtl_team_state, i64 8
  %28 = load i64, %27
  %29 = cmp.Eq.i64 %28, i64 1
  assume(%29)
  %31 = block.dim()
  %32 = load i64, @__omp_rtl_team_state
  %33 = cmp.Eq.i64 %32, %31
  assume(%33)
  %35 = ptradd @__omp_rtl_team_state, i64 40
  %36 = load i64, %35
  %37 = cmp.Eq.i64 %36, i64 0
  assume(%37)
  ret i64 0
bb2:
  br %2, bb3, bb4
bb3:
  store i64 i64 0, @__omp_rtl_is_spmd_mode
  %40 = block.dim()
  store i64 %40, @__omp_rtl_team_state
  %42 = ptradd @__omp_rtl_team_state, i64 8
  store i64 i64 0, %42
  %44 = ptradd @__omp_rtl_team_state, i64 16
  store i64 i64 0, %44
  %46 = ptradd @__omp_rtl_team_state, i64 24
  store ptr ptr 0, %46
  %48 = ptradd @__omp_rtl_team_state, i64 32
  store ptr ptr 0, %48
  %50 = ptradd @__omp_rtl_team_state, i64 40
  store i64 i64 0, %50
  store i64 i64 0, @__omp_rtl_smem_stack_top
  %53 = Mul.i64 %1, i64 8
  %54 = ptradd @__omp_rtl_thread_states, %53
  store ptr ptr 0, %54
  ret i64 0
bb4:
  %56 = Mul.i64 %1, i64 8
  %57 = ptradd @__omp_rtl_thread_states, %56
  store ptr ptr 0, %57
  call void @__kmpc_worker_loop()
  ret i64 1
}
define void @__kmpc_target_deinit(i64 %arg0) {
bb0:
  call void @__nzomp_trace()
  %1 = cmp.Eq.i64 %arg0, i64 1
  br %1, bb2, bb1
bb1:
  %2 = ptradd @__omp_rtl_team_state, i64 24
  store ptr ptr 0, %2
  barrier()
  br bb2
bb2:
  ret void
}
define i64 @omp_get_num_teams() [always_inline,read_none] {
bb0:
  %0 = grid.dim()
  ret %0
}
define internal void @fmm_p2p_kernel.omp_outlined.wsloop.7(i64 %arg0, ptr %arg1) {
bb0:
  %35 = alloca 8
  %0 = load ptr, %arg1
  %1 = ptradd %arg1, i64 8
  %2 = load ptr, %1
  %3 = ptradd %arg1, i64 16
  %4 = load ptr, %3
  %5 = ptradd %arg1, i64 24
  %6 = load ptr, %5
  %7 = ptradd %arg1, i64 32
  %8 = load ptr, %7
  %9 = ptradd %arg1, i64 40
  %10 = load ptr, %9
  %11 = ptradd %arg1, i64 48
  %12 = load ptr, %11
  %13 = ptradd %arg1, i64 56
  %14 = load ptr, %13
  %15 = ptradd %arg1, i64 64
  %16 = load ptr, %15
  %17 = ptradd %arg1, i64 72
  %18 = load i64, %17
  %19 = ptradd %arg1, i64 80
  %20 = load i64, %19
  %21 = Add.i64 %20, %arg0
  %22 = Mul.i64 %21, i64 8
  %23 = ptradd %0, %22
  %24 = load i64, %23
  %25 = Add.i64 %21, i64 1
  %26 = Mul.i64 %25, i64 8
  %27 = ptradd %0, %26
  %28 = load i64, %27
  %29 = Mul.i64 %21, i64 8
  %30 = ptradd %2, %29
  %31 = load i64, %30
  %32 = Mul.i64 %25, i64 8
  %33 = ptradd %2, %32
  %34 = load i64, %33
  store f64 f64 0.0, %35
  br bb1
bb1:
  %37 = phi i64 [bb0: %31], [bb2: %53]
  %38 = cmp.Slt.i64 %37, %34
  br %38, bb2, bb3
bb2:
  %39 = Mul.i64 %37, i64 8
  %40 = ptradd %4, %39
  %41 = load i64, %40
  %42 = Mul.i64 %41, i64 8
  %43 = ptradd %0, %42
  %44 = load i64, %43
  %45 = Add.i64 %41, i64 1
  %46 = Mul.i64 %45, i64 8
  %47 = ptradd %0, %46
  %48 = load i64, %47
  %49 = call f64 @p2p_leaf_omp(%24, %28, %44, %48, %6, %8, %10, %12, %14, %18)
  %50 = load f64, %35
  %51 = FAdd.f64 %50, %49
  store f64 %51, %35
  %53 = Add.i64 %37, i64 1
  br bb1
bb3:
  %54 = load f64, %35
  %55 = Mul.i64 %21, i64 8
  %56 = ptradd %16, %55
  store f64 %54, %56
  ret void
}
define void @__kmpc_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2, i64 %arg3) {
bb0:
  call void @__nzomp_trace()
  %1 = call i64 @omp_get_thread_num()
  %2 = call i64 @omp_get_num_threads()
  %3 = cmp.Slt.i64 %1, %arg2
  br %3, bb1, bb4
bb1:
  %4 = phi i64 [bb0: %1], [bb2: %6]
  call void %arg0(%4, %arg1)
  %6 = Add.i64 %4, %2
  %7 = load i64, @__omp_rtl_assume_threads_oversubscription
  %8 = cmp.Ne.i64 %7, i64 0
  br %8, bb3, bb2
bb2:
  %11 = cmp.Slt.i64 %6, %arg2
  br %11, bb1, bb4
bb3:
  %9 = cmp.Sge.i64 %6, %arg2
  call void @__nzomp_assert(%9)
  br bb4
bb4:
  %12 = cmp.Ne.i64 %arg3, i64 0
  br %12, bb6, bb5
bb5:
  call void @__kmpc_barrier()
  br bb6
bb6:
  ret void
}
define internal void @fmm_p2p_kernel.omp_outlined.parallel.8(ptr %arg0) {
bb0:
  %23 = alloca 88
  %0 = load ptr, %arg0
  %1 = ptradd %arg0, i64 8
  %2 = load ptr, %1
  %3 = ptradd %arg0, i64 16
  %4 = load ptr, %3
  %5 = ptradd %arg0, i64 24
  %6 = load ptr, %5
  %7 = ptradd %arg0, i64 32
  %8 = load ptr, %7
  %9 = ptradd %arg0, i64 40
  %10 = load ptr, %9
  %11 = ptradd %arg0, i64 48
  %12 = load ptr, %11
  %13 = ptradd %arg0, i64 56
  %14 = load ptr, %13
  %15 = ptradd %arg0, i64 64
  %16 = load ptr, %15
  %17 = ptradd %arg0, i64 72
  %18 = load i64, %17
  %19 = ptradd %arg0, i64 80
  %20 = load i64, %19
  %21 = ptradd %arg0, i64 88
  %22 = load i64, %21
  store ptr %0, %23
  %25 = ptradd %23, i64 8
  store ptr %2, %25
  %27 = ptradd %23, i64 16
  store ptr %4, %27
  %29 = ptradd %23, i64 24
  store ptr %6, %29
  %31 = ptradd %23, i64 32
  store ptr %8, %31
  %33 = ptradd %23, i64 40
  store ptr %10, %33
  %35 = ptradd %23, i64 48
  store ptr %12, %35
  %37 = ptradd %23, i64 56
  store ptr %14, %37
  %39 = ptradd %23, i64 64
  store ptr %16, %39
  %41 = ptradd %23, i64 72
  store i64 %18, %41
  %43 = ptradd %23, i64 80
  store i64 %20, %43
  call void @__kmpc_for_static_loop(@fmm_p2p_kernel.omp_outlined.wsloop.7, %23, %22, i64 0)
  ret void
}
define ptr @__kmpc_alloc_shared(i64 %arg0) [noinline] {
bb0:
  call void @__nzomp_trace()
  %1 = Add.i64 %arg0, i64 7
  %2 = And.i64 %1, i64 -8
  %3 = atomic.Add.i64 @__omp_rtl_smem_stack_top, %2
  %4 = Add.i64 %3, %2
  %5 = cmp.Sle.i64 %4, i64 9168
  br %5, bb1, bb2
bb1:
  %6 = ptradd @__omp_rtl_smem_stack, %3
  ret %6
bb2:
  %7 = Sub.i64 i64 0, %2
  %8 = atomic.Add.i64 @__omp_rtl_smem_stack_top, %7
  %9 = malloc(%2)
  ret %9
}
define void @__kmpc_free_shared(ptr %arg0, i64 %arg1) [noinline] {
bb0:
  call void @__nzomp_trace()
  %1 = Add.i64 %arg1, i64 7
  %2 = And.i64 %1, i64 -8
  %3 = PtrCast %arg0 to i64
  %4 = PtrCast @__omp_rtl_smem_stack to i64
  %5 = Add.i64 %4, i64 9168
  %6 = cmp.Uge.i64 %3, %4
  %7 = cmp.Ult.i64 %3, %5
  %8 = And.i64 %6, %7
  %9 = cmp.Ne.i64 %8, i64 0
  br %9, bb1, bb2
bb1:
  %10 = Sub.i64 i64 0, %2
  %11 = atomic.Add.i64 @__omp_rtl_smem_stack_top, %10
  br bb3
bb2:
  free(%arg0)
  br bb3
bb3:
  ret void
}
define void @__kmpc_parallel_51(ptr %arg0, ptr %arg1) {
bb0:
  call void @__nzomp_trace()
  %1 = call i64 @omp_get_level()
  %2 = cmp.Eq.i64 %1, i64 0
  br %2, bb1, bb2
bb1:
  %3 = ptradd @__omp_rtl_team_state, i64 32
  store ptr %arg1, %3
  %5 = ptradd @__omp_rtl_team_state, i64 24
  store ptr %arg0, %5
  %7 = ptradd @__omp_rtl_team_state, i64 8
  store i64 i64 1, %7
  barrier()
  call void %arg0(%arg1)
  barrier()
  %12 = ptradd @__omp_rtl_team_state, i64 8
  store i64 i64 0, %12
  ret void
bb2:
  %14 = thread.id()
  %15 = call ptr @__kmpc_alloc_shared(i64 40)
  %16 = Mul.i64 %14, i64 8
  %17 = ptradd @__omp_rtl_thread_states, %16
  %18 = load ptr, %17
  %19 = ptradd %15, i64 0
  store ptr %18, %19
  %21 = ptradd %15, i64 8
  store i64 i64 0, %21
  %23 = ptradd %15, i64 16
  store i64 i64 1, %23
  %25 = Add.i64 %1, i64 1
  %26 = ptradd %15, i64 24
  store i64 %25, %26
  store ptr %15, %17
  %29 = ptradd @__omp_rtl_team_state, i64 40
  store i64 i64 1, %29
  call void %arg0(%arg1)
  store ptr %18, %17
  call void @__kmpc_free_shared(%15, i64 40)
  ret void
}
define void @fmm_p2p_kernel(ptr %arg0, ptr %arg1, ptr %arg2, ptr %arg3, ptr %arg4, ptr %arg5, ptr %arg6, ptr %arg7, ptr %arg8, i64 %arg9, i64 %arg10) {
bb0:
  %0 = call i64 @__kmpc_target_init(i64 0)
  %1 = cmp.Ne.i64 %0, i64 0
  br %1, bb2, bb1
bb1:
  %2 = call i64 @omp_get_team_num()
  %3 = call i64 @omp_get_num_teams()
  %4 = Add.i64 %3, i64 -1
  %5 = Add.i64 %arg9, %4
  %6 = SDiv.i64 %5, %3
  %7 = Mul.i64 %2, %6
  %8 = Add.i64 %7, %6
  %9 = SMin.i64 %8, %arg9
  %10 = Sub.i64 %9, %7
  %11 = call ptr @__kmpc_alloc_shared(i64 96)
  store ptr %arg0, %11
  %13 = ptradd %11, i64 8
  store ptr %arg1, %13
  %15 = ptradd %11, i64 16
  store ptr %arg2, %15
  %17 = ptradd %11, i64 24
  store ptr %arg3, %17
  %19 = ptradd %11, i64 32
  store ptr %arg4, %19
  %21 = ptradd %11, i64 40
  store ptr %arg5, %21
  %23 = ptradd %11, i64 48
  store ptr %arg6, %23
  %25 = ptradd %11, i64 56
  store ptr %arg7, %25
  %27 = ptradd %11, i64 64
  store ptr %arg8, %27
  %29 = ptradd %11, i64 72
  store i64 %arg10, %29
  %31 = ptradd %11, i64 80
  store i64 %7, %31
  %33 = ptradd %11, i64 88
  store i64 %10, %33
  call void @__kmpc_parallel_51(@fmm_p2p_kernel.omp_outlined.parallel.8, %11)
  call void @__kmpc_free_shared(%11, i64 96)
  call void @__kmpc_target_deinit(i64 0)
  br bb2
bb2:
  ret void
}
define void @__nzomp_trace() [always_inline] {
bb0:
  %0 = load i64, @__omp_rtl_debug_kind
  %1 = And.i64 %0, i64 2
  %2 = cmp.Ne.i64 %1, i64 0
  br %2, bb1, bb2
bb1:
  %3 = atomic.Add.i64 @__omp_rtl_trace_count, i64 1
  br bb2
bb2:
  ret void
}
define void @__nzomp_assert(i1 %arg0) [always_inline] {
bb0:
  %0 = load i64, @__omp_rtl_debug_kind
  %1 = And.i64 %0, i64 1
  %2 = cmp.Ne.i64 %1, i64 0
  br %2, bb1, bb2
bb1:
  br %arg0, bb4, bb3
bb2:
  assume(%arg0)
  br bb4
bb3:
  assert.fail()
  unreachable
bb4:
  ret void
}
define void @__kmpc_syncthreads_aligned() [aligned_barrier,no_call_asm,noinline] {
bb0:
  barrier.aligned()
  ret void
}
define void @__kmpc_barrier() [always_inline] {
bb0:
  %0 = load i64, @__omp_rtl_is_spmd_mode
  %1 = cmp.Ne.i64 %0, i64 0
  br %1, bb1, bb2
bb1:
  call void @__kmpc_syncthreads_aligned()
  br bb3
bb2:
  barrier()
  br bb3
bb3:
  ret void
}
define i64 @omp_get_level() {
bb0:
  call void @__nzomp_trace()
  %1 = thread.id()
  %2 = Mul.i64 %1, i64 8
  %3 = ptradd @__omp_rtl_thread_states, %2
  %4 = load ptr, %3
  %5 = cmp.Ne.ptr %4, ptr 0
  br %5, bb1, bb2
bb1:
  %6 = ptradd %4, i64 24
  %7 = load i64, %6
  ret %7
bb2:
  %8 = ptradd @__omp_rtl_team_state, i64 8
  %9 = load i64, %8
  ret %9
}
define void @__kmpc_parallel_spmd(ptr %arg0, ptr %arg1) {
bb0:
  call void @__nzomp_trace()
  call void @__kmpc_syncthreads_aligned()
  call void %arg0(%arg1)
  call void @__kmpc_syncthreads_aligned()
  ret void
}
define void @__kmpc_worker_loop() {
bb0:
  br bb1
bb1:
  barrier()
  %1 = ptradd @__omp_rtl_team_state, i64 24
  %2 = load ptr, %1
  %3 = cmp.Ne.ptr %2, ptr 0
  br %3, bb2, bb3
bb2:
  %4 = ptradd @__omp_rtl_team_state, i64 32
  %5 = load ptr, %4
  call void %2(%5)
  barrier()
  br bb1
bb3:
  ret void
}
define void @__kmpc_distribute_parallel_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2) {
bb0:
  call void @__nzomp_trace()
  %1 = call i64 @omp_get_thread_num()
  %2 = call i64 @omp_get_num_threads()
  %3 = call i64 @omp_get_team_num()
  %4 = call i64 @omp_get_num_teams()
  %5 = Mul.i64 %3, %2
  %6 = Add.i64 %5, %1
  %7 = Mul.i64 %4, %2
  %8 = cmp.Slt.i64 %6, %arg2
  br %8, bb1, bb4
bb1:
  %9 = phi i64 [bb0: %6], [bb2: %11]
  call void %arg0(%9, %arg1)
  %11 = Add.i64 %9, %7
  %12 = load i64, @__omp_rtl_assume_threads_oversubscription
  %13 = cmp.Ne.i64 %12, i64 0
  br %13, bb3, bb2
bb2:
  %16 = cmp.Slt.i64 %11, %arg2
  br %16, bb1, bb4
bb3:
  %14 = cmp.Sge.i64 %11, %arg2
  call void @__nzomp_assert(%14)
  br bb4
bb4:
  ret void
}
define void @__kmpc_distribute_static_loop(ptr %arg0, ptr %arg1, i64 %arg2) {
bb0:
  call void @__nzomp_trace()
  %1 = block.id()
  %2 = grid.dim()
  %3 = cmp.Slt.i64 %1, %arg2
  br %3, bb1, bb4
bb1:
  %4 = phi i64 [bb0: %1], [bb2: %6]
  call void %arg0(%4, %arg1)
  %6 = Add.i64 %4, %2
  %7 = load i64, @__omp_rtl_assume_teams_oversubscription
  %8 = cmp.Ne.i64 %7, i64 0
  br %8, bb3, bb2
bb2:
  %11 = cmp.Slt.i64 %6, %arg2
  br %11, bb1, bb4
bb3:
  %9 = cmp.Sge.i64 %6, %arg2
  call void @__nzomp_assert(%9)
  br bb4
bb4:
  ret void
}
