; nzomp-ir v1
; module testsnap
@__omp_rtl_is_spmd_mode = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_team_state = shared [64 x i8] init=zero linkage=internal
@__omp_rtl_thread_states = shared [2048 x i8] init=zero linkage=internal
@__omp_rtl_smem_stack = shared [9168 x i8] init=zero linkage=internal
@__omp_rtl_smem_stack_top = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_dummy = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_debug_kind = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_assume_teams_oversubscription = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_assume_threads_oversubscription = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_trace_count = global [8 x i8] init=zero linkage=internal
; kernel @snap_force_kernel mode=Spmd
declare internal void @snap_force_kernel.omp_outlined.body.0(i64 %arg0, ptr %arg1)
declare internal i64 @__kmpc_target_init(i64 %arg0)
declare internal void @__kmpc_target_deinit(i64 %arg0)
declare internal void @__kmpc_distribute_parallel_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
define void @snap_force_kernel(ptr %arg0, ptr %arg1, ptr %arg2, i64 %arg3, i64 %arg4, i64 %arg5) {
bb0:
  %1 = alloca 48
  %162 = alloca 24
  %189 = alloca 8
  %16 = thread.id()
  %17 = cmp.Eq.i64 %16, i64 0
  %19 = block.dim()
  %20 = select.ptr %17, @__omp_rtl_is_spmd_mode, @__omp_rtl_dummy
  store i64 i64 1, %20
  %22 = select.ptr %17, @__omp_rtl_team_state, @__omp_rtl_dummy
  store i64 %19, %22
  %24 = ptradd @__omp_rtl_team_state, i64 8
  %25 = select.ptr %17, %24, @__omp_rtl_dummy
  store i64 i64 1, %25
  %27 = ptradd @__omp_rtl_team_state, i64 16
  %28 = select.ptr %17, %27, @__omp_rtl_dummy
  store i64 i64 1, %28
  %30 = ptradd @__omp_rtl_team_state, i64 40
  %31 = select.ptr %17, %30, @__omp_rtl_dummy
  store i64 i64 0, %31
  %33 = select.ptr %17, @__omp_rtl_smem_stack_top, @__omp_rtl_dummy
  store i64 i64 0, %33
  %35 = Mul.i64 %16, i64 8
  %36 = ptradd @__omp_rtl_thread_states, %35
  store ptr ptr 0, %36
  call void @__kmpc_syncthreads_aligned()
  store ptr %arg0, %1
  %3 = ptradd %1, i64 8
  store ptr %arg1, %3
  %5 = ptradd %1, i64 16
  store ptr %arg2, %5
  %7 = ptradd %1, i64 24
  store i64 %arg3, %7
  %9 = ptradd %1, i64 32
  store i64 %arg4, %9
  %11 = ptradd %1, i64 40
  store i64 %arg5, %11
  %115 = thread.id()
  %116 = Mul.i64 %115, i64 8
  %117 = ptradd @__omp_rtl_thread_states, %116
  %118 = load ptr, %117
  %119 = cmp.Ne.ptr %118, ptr 0
  br %119, bb32, bb33
bb1:
  unreachable
bb2:
  unreachable
bb3:
  unreachable
bb4:
  unreachable
bb5:
  unreachable
bb6:
  unreachable
bb7:
  unreachable
bb8:
  unreachable
bb9:
  unreachable
bb10:
  unreachable
bb11:
  unreachable
bb12:
  unreachable
bb13:
  unreachable
bb14:
  unreachable
bb15:
  unreachable
bb16:
  unreachable
bb17:
  %97 = phi i64 [bb42: %94], [bb55: %99]
  %151 = load ptr, %1
  %152 = ptradd %1, i64 8
  %153 = load ptr, %152
  %154 = ptradd %1, i64 16
  %155 = load ptr, %154
  %158 = ptradd %1, i64 32
  %159 = load i64, %158
  %160 = ptradd %1, i64 40
  %161 = load i64, %160
  store f64 f64 0.0, %162
  %165 = ptradd %162, i64 8
  store f64 f64 0.0, %165
  %167 = ptradd %162, i64 16
  store f64 f64 0.0, %167
  %169 = Mul.i64 %97, %159
  br bb53
bb18:
  unreachable
bb19:
  unreachable
bb20:
  ret void
bb21:
  unreachable
bb22:
  unreachable
bb23:
  unreachable
bb24:
  unreachable
bb25:
  unreachable
bb26:
  unreachable
bb27:
  unreachable
bb28:
  unreachable
bb29:
  unreachable
bb30:
  unreachable
bb31:
  unreachable
bb32:
  %120 = ptradd %118, i64 8
  %121 = load i64, %120
  br bb34
bb33:
  %122 = ptradd @__omp_rtl_team_state, i64 8
  %123 = load i64, %122
  %124 = cmp.Sgt.i64 %123, i64 1
  %125 = select.i64 %124, i64 0, %115
  br bb34
bb34:
  %126 = phi i64 [bb32: %121], [bb33: %125]
  %132 = thread.id()
  %133 = Mul.i64 %132, i64 8
  %134 = ptradd @__omp_rtl_thread_states, %133
  %135 = load ptr, %134
  %136 = cmp.Ne.ptr %135, ptr 0
  br %136, bb40, bb41
bb35:
  unreachable
bb36:
  unreachable
bb37:
  unreachable
bb38:
  unreachable
bb39:
  unreachable
bb40:
  %137 = ptradd %135, i64 16
  %138 = load i64, %137
  br bb42
bb41:
  %139 = ptradd @__omp_rtl_team_state, i64 8
  %140 = load i64, %139
  %141 = cmp.Eq.i64 %140, i64 1
  %142 = load i64, @__omp_rtl_team_state
  %143 = select.i64 %141, %142, i64 1
  br bb42
bb42:
  %144 = phi i64 [bb40: %138], [bb41: %143]
  %149 = block.id()
  %150 = grid.dim()
  %93 = Mul.i64 %149, %144
  %94 = Add.i64 %93, %126
  %95 = Mul.i64 %150, %144
  %96 = cmp.Slt.i64 %94, %arg3
  br %96, bb17, bb20
bb43:
  unreachable
bb44:
  unreachable
bb45:
  unreachable
bb46:
  unreachable
bb47:
  unreachable
bb48:
  unreachable
bb49:
  unreachable
bb50:
  unreachable
bb51:
  unreachable
bb52:
  unreachable
bb53:
  %170 = phi i64 [bb17: i64 0], [bb58: %220]
  %171 = cmp.Slt.i64 %170, %159
  br %171, bb54, bb55
bb54:
  %172 = Add.i64 %169, %170
  %173 = Mul.i64 %172, i64 3
  %174 = Mul.i64 %173, i64 8
  %175 = ptradd %151, %174
  %176 = load f64, %175
  %177 = ptradd %175, i64 8
  %178 = load f64, %177
  %179 = ptradd %175, i64 16
  %180 = load f64, %179
  %181 = FMul.f64 %176, %176
  %182 = FMul.f64 %178, %178
  %183 = FMul.f64 %180, %180
  %184 = FAdd.f64 %181, %182
  %185 = FAdd.f64 %184, %183
  %186 = FDiv.f64 %185, f64 4.0
  %187 = FSub.f64 f64 1.0, %186
  %188 = FMul.f64 %187, %187
  store f64 f64 0.0, %189
  br bb56
bb55:
  %221 = Mul.i64 %97, i64 3
  %222 = Mul.i64 %221, i64 8
  %223 = ptradd %155, %222
  %225 = load f64, %162
  store f64 %225, %223
  %228 = ptradd %162, i64 8
  %229 = load f64, %228
  %230 = ptradd %223, i64 8
  store f64 %229, %230
  %232 = ptradd %162, i64 16
  %233 = load f64, %232
  %234 = ptradd %223, i64 16
  store f64 %233, %234
  %99 = Add.i64 %97, %95
  %104 = cmp.Slt.i64 %99, %arg3
  br %104, bb17, bb20
bb56:
  %191 = phi i64 [bb54: i64 0], [bb57: %202]
  %192 = cmp.Slt.i64 %191, %161
  br %192, bb57, bb58
bb57:
  %193 = Sub.i64 %161, i64 1
  %194 = Sub.i64 %193, %191
  %195 = Mul.i64 %194, i64 8
  %196 = ptradd %153, %195
  %197 = load f64, %196
  %198 = load f64, %189
  %199 = FMul.f64 %198, %185
  %200 = FAdd.f64 %199, %197
  store f64 %200, %189
  %202 = Add.i64 %191, i64 1
  br bb56
bb58:
  %203 = load f64, %189
  %204 = FMul.f64 %188, %203
  %205 = FMul.f64 %176, %204
  %207 = load f64, %162
  %208 = FAdd.f64 %207, %205
  store f64 %208, %162
  %210 = FMul.f64 %178, %204
  %211 = ptradd %162, i64 8
  %212 = load f64, %211
  %213 = FAdd.f64 %212, %210
  store f64 %213, %211
  %215 = FMul.f64 %180, %204
  %216 = ptradd %162, i64 16
  %217 = load f64, %216
  %218 = FAdd.f64 %217, %215
  store f64 %218, %216
  %220 = Add.i64 %170, i64 1
  br bb53
bb59:
  unreachable
bb60:
  unreachable
bb61:
  unreachable
bb62:
  unreachable
bb63:
  unreachable
bb64:
  unreachable
bb65:
  unreachable
bb66:
  unreachable
bb67:
  unreachable
}
declare internal void @__nzomp_trace() [always_inline]
declare internal void @__nzomp_assert(i1 %arg0) [always_inline]
define internal void @__kmpc_syncthreads_aligned() [aligned_barrier,no_call_asm,noinline] {
bb0:
  barrier.aligned()
  ret void
}
declare internal void @__kmpc_barrier() [always_inline]
declare internal i64 @omp_get_thread_num()
declare internal i64 @omp_get_num_threads()
declare internal i64 @omp_get_level()
declare internal i64 @omp_get_team_num() [always_inline,read_none]
declare internal i64 @omp_get_num_teams() [always_inline,read_none]
declare internal ptr @__kmpc_alloc_shared(i64 %arg0) [noinline]
declare internal void @__kmpc_free_shared(ptr %arg0, i64 %arg1) [noinline]
declare internal void @__kmpc_parallel_51(ptr %arg0, ptr %arg1)
declare internal void @__kmpc_parallel_spmd(ptr %arg0, ptr %arg1)
declare internal void @__kmpc_worker_loop()
declare internal void @__kmpc_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2, i64 %arg3)
declare internal void @__kmpc_distribute_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
