; nzomp-ir v1
; module rsbench
@__omp_rtl_is_spmd_mode = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_team_state = shared [64 x i8] init=zero linkage=internal
@__omp_rtl_thread_states = shared [2048 x i8] init=zero linkage=internal
@__omp_rtl_smem_stack = shared [9168 x i8] init=zero linkage=internal
@__omp_rtl_smem_stack_top = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_dummy = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_debug_kind = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_assume_teams_oversubscription = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_assume_threads_oversubscription = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_trace_count = global [8 x i8] init=zero linkage=internal
; kernel @rs_lookup_kernel mode=Spmd
declare internal void @rs_lookup_kernel.omp_outlined.body.0(i64 %arg0, ptr %arg1)
declare internal i64 @__kmpc_target_init(i64 %arg0)
declare internal void @__kmpc_target_deinit(i64 %arg0)
declare internal void @__kmpc_distribute_parallel_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
define void @rs_lookup_kernel(ptr %arg0, ptr %arg1, ptr %arg2, i64 %arg3, i64 %arg4, i64 %arg5, i64 %arg6) {
bb0:
  %1 = alloca 56
  %174 = alloca 8
  %18 = thread.id()
  %19 = cmp.Eq.i64 %18, i64 0
  %21 = block.dim()
  %22 = select.ptr %19, @__omp_rtl_is_spmd_mode, @__omp_rtl_dummy
  store i64 i64 1, %22
  %24 = select.ptr %19, @__omp_rtl_team_state, @__omp_rtl_dummy
  store i64 %21, %24
  %26 = ptradd @__omp_rtl_team_state, i64 8
  %27 = select.ptr %19, %26, @__omp_rtl_dummy
  store i64 i64 1, %27
  %29 = ptradd @__omp_rtl_team_state, i64 16
  %30 = select.ptr %19, %29, @__omp_rtl_dummy
  store i64 i64 1, %30
  %32 = ptradd @__omp_rtl_team_state, i64 40
  %33 = select.ptr %19, %32, @__omp_rtl_dummy
  store i64 i64 0, %33
  %35 = select.ptr %19, @__omp_rtl_smem_stack_top, @__omp_rtl_dummy
  store i64 i64 0, %35
  %37 = Mul.i64 %18, i64 8
  %38 = ptradd @__omp_rtl_thread_states, %37
  store ptr ptr 0, %38
  call void @__kmpc_syncthreads_aligned()
  store ptr %arg0, %1
  %3 = ptradd %1, i64 8
  store ptr %arg1, %3
  %5 = ptradd %1, i64 16
  store ptr %arg2, %5
  %7 = ptradd %1, i64 24
  store i64 %arg3, %7
  %9 = ptradd %1, i64 32
  store i64 %arg4, %9
  %11 = ptradd %1, i64 40
  store i64 %arg5, %11
  %13 = ptradd %1, i64 48
  store i64 %arg6, %13
  %117 = thread.id()
  %118 = Mul.i64 %117, i64 8
  %119 = ptradd @__omp_rtl_thread_states, %118
  %120 = load ptr, %119
  %121 = cmp.Ne.ptr %120, ptr 0
  br %121, bb32, bb33
bb1:
  unreachable
bb2:
  unreachable
bb3:
  unreachable
bb4:
  unreachable
bb5:
  unreachable
bb6:
  unreachable
bb7:
  unreachable
bb8:
  unreachable
bb9:
  unreachable
bb10:
  unreachable
bb11:
  unreachable
bb12:
  unreachable
bb13:
  unreachable
bb14:
  unreachable
bb15:
  unreachable
bb16:
  unreachable
bb17:
  %99 = phi i64 [bb42: %96], [bb55: %101]
  %153 = load ptr, %1
  %154 = ptradd %1, i64 8
  %155 = load ptr, %154
  %156 = ptradd %1, i64 16
  %157 = load ptr, %156
  %160 = ptradd %1, i64 32
  %161 = load i64, %160
  %162 = ptradd %1, i64 40
  %163 = load i64, %162
  %164 = ptradd %1, i64 48
  %165 = load i64, %164
  %166 = Mul.i64 %99, i64 8
  %167 = ptradd %155, %166
  %168 = load f64, %167
  %169 = SiToFp %163 to f64
  %170 = FMul.f64 %168, %169
  %171 = FpToSi %170 to i64
  %172 = SRem.i64 %171, %163
  %173 = Sqrt.f64 %168
  store f64 f64 0.0, %174
  %176 = Mul.i64 %165, i64 4
  br bb53
bb18:
  unreachable
bb19:
  unreachable
bb20:
  ret void
bb21:
  unreachable
bb22:
  unreachable
bb23:
  unreachable
bb24:
  unreachable
bb25:
  unreachable
bb26:
  unreachable
bb27:
  unreachable
bb28:
  unreachable
bb29:
  unreachable
bb30:
  unreachable
bb31:
  unreachable
bb32:
  %122 = ptradd %120, i64 8
  %123 = load i64, %122
  br bb34
bb33:
  %124 = ptradd @__omp_rtl_team_state, i64 8
  %125 = load i64, %124
  %126 = cmp.Sgt.i64 %125, i64 1
  %127 = select.i64 %126, i64 0, %117
  br bb34
bb34:
  %128 = phi i64 [bb32: %123], [bb33: %127]
  %134 = thread.id()
  %135 = Mul.i64 %134, i64 8
  %136 = ptradd @__omp_rtl_thread_states, %135
  %137 = load ptr, %136
  %138 = cmp.Ne.ptr %137, ptr 0
  br %138, bb40, bb41
bb35:
  unreachable
bb36:
  unreachable
bb37:
  unreachable
bb38:
  unreachable
bb39:
  unreachable
bb40:
  %139 = ptradd %137, i64 16
  %140 = load i64, %139
  br bb42
bb41:
  %141 = ptradd @__omp_rtl_team_state, i64 8
  %142 = load i64, %141
  %143 = cmp.Eq.i64 %142, i64 1
  %144 = load i64, @__omp_rtl_team_state
  %145 = select.i64 %143, %144, i64 1
  br bb42
bb42:
  %146 = phi i64 [bb40: %140], [bb41: %145]
  %151 = block.id()
  %152 = grid.dim()
  %95 = Mul.i64 %151, %146
  %96 = Add.i64 %95, %128
  %97 = Mul.i64 %152, %146
  %98 = cmp.Slt.i64 %96, %arg3
  br %98, bb17, bb20
bb43:
  unreachable
bb44:
  unreachable
bb45:
  unreachable
bb46:
  unreachable
bb47:
  unreachable
bb48:
  unreachable
bb49:
  unreachable
bb50:
  unreachable
bb51:
  unreachable
bb52:
  unreachable
bb53:
  %177 = phi i64 [bb17: i64 0], [bb58: %212]
  %178 = cmp.Slt.i64 %177, %161
  br %178, bb54, bb55
bb54:
  %179 = Mul.i64 %177, %163
  %180 = Add.i64 %179, %172
  %181 = Mul.i64 %180, %176
  %182 = Mul.i64 %181, i64 8
  %183 = ptradd %153, %182
  br bb56
bb55:
  %213 = load f64, %174
  %214 = Mul.i64 %99, i64 8
  %215 = ptradd %157, %214
  store f64 %213, %215
  %101 = Add.i64 %99, %97
  %106 = cmp.Slt.i64 %101, %arg3
  br %106, bb17, bb20
bb56:
  %184 = phi i64 [bb54: i64 0], [bb57: %211]
  %185 = cmp.Slt.i64 %184, %165
  br %185, bb57, bb58
bb57:
  %186 = Mul.i64 %184, i64 32
  %187 = ptradd %183, %186
  %188 = load f64, %187
  %189 = ptradd %187, i64 8
  %190 = load f64, %189
  %191 = ptradd %187, i64 16
  %192 = load f64, %191
  %193 = ptradd %187, i64 24
  %194 = load f64, %193
  %195 = FSub.f64 %173, %188
  %196 = FMul.f64 %195, %195
  %197 = FMul.f64 %192, %192
  %198 = FAdd.f64 %196, %197
  %199 = FMul.f64 %190, %195
  %200 = FMul.f64 %192, %194
  %201 = FAdd.f64 %199, %200
  %202 = FDiv.f64 %201, %198
  %203 = Sin.f64 %195
  %204 = Cos.f64 %194
  %205 = FMul.f64 %203, %204
  %206 = FMul.f64 %202, %205
  %207 = FAdd.f64 %202, %206
  %208 = load f64, %174
  %209 = FAdd.f64 %208, %207
  store f64 %209, %174
  %211 = Add.i64 %184, i64 1
  br bb56
bb58:
  %212 = Add.i64 %177, i64 1
  br bb53
bb59:
  unreachable
bb60:
  unreachable
bb61:
  unreachable
bb62:
  unreachable
bb63:
  unreachable
bb64:
  unreachable
bb65:
  unreachable
bb66:
  unreachable
bb67:
  unreachable
}
declare internal void @__nzomp_trace() [always_inline]
declare internal void @__nzomp_assert(i1 %arg0) [always_inline]
define internal void @__kmpc_syncthreads_aligned() [aligned_barrier,no_call_asm,noinline] {
bb0:
  barrier.aligned()
  ret void
}
declare internal void @__kmpc_barrier() [always_inline]
declare internal i64 @omp_get_thread_num()
declare internal i64 @omp_get_num_threads()
declare internal i64 @omp_get_level()
declare internal i64 @omp_get_team_num() [always_inline,read_none]
declare internal i64 @omp_get_num_teams() [always_inline,read_none]
declare internal ptr @__kmpc_alloc_shared(i64 %arg0) [noinline]
declare internal void @__kmpc_free_shared(ptr %arg0, i64 %arg1) [noinline]
declare internal void @__kmpc_parallel_51(ptr %arg0, ptr %arg1)
declare internal void @__kmpc_parallel_spmd(ptr %arg0, ptr %arg1)
declare internal void @__kmpc_worker_loop()
declare internal void @__kmpc_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2, i64 %arg3)
declare internal void @__kmpc_distribute_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
