; nzomp-ir v1
; module gridmini
@__omp_rtl_is_spmd_mode = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_team_state = shared [64 x i8] init=zero linkage=internal
@__omp_rtl_thread_states = shared [2048 x i8] init=zero linkage=internal
@__omp_rtl_smem_stack = shared [9168 x i8] init=zero linkage=internal
@__omp_rtl_smem_stack_top = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_dummy = shared [8 x i8] init=zero linkage=internal
@__omp_rtl_debug_kind = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_assume_teams_oversubscription = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_assume_threads_oversubscription = constant [8 x i8] const init=i64:0 linkage=internal
@__omp_rtl_trace_count = global [8 x i8] init=zero linkage=internal
; kernel @su3_mult_kernel mode=Spmd
define internal void @su3_mult_kernel.omp_outlined.body.0(i64 %arg0, ptr %arg1) {
bb0:
  %0 = load ptr, %arg1
  %1 = ptradd %arg1, i64 8
  %2 = load ptr, %1
  %3 = ptradd %arg1, i64 16
  %4 = load ptr, %3
  %7 = Mul.i64 %arg0, i64 144
  %8 = ptradd %0, %7
  %9 = ptradd %2, %7
  %10 = ptradd %4, %7
  %12 = load f64, %8
  %14 = load f64, %9
  %15 = ptradd %8, i64 8
  %16 = load f64, %15
  %17 = ptradd %9, i64 8
  %18 = load f64, %17
  %19 = ptradd %8, i64 16
  %20 = load f64, %19
  %21 = ptradd %9, i64 16
  %22 = load f64, %21
  %23 = ptradd %8, i64 24
  %24 = load f64, %23
  %25 = ptradd %9, i64 24
  %26 = load f64, %25
  %27 = ptradd %8, i64 32
  %28 = load f64, %27
  %29 = ptradd %9, i64 32
  %30 = load f64, %29
  %31 = ptradd %8, i64 40
  %32 = load f64, %31
  %33 = ptradd %9, i64 40
  %34 = load f64, %33
  %35 = ptradd %8, i64 48
  %36 = load f64, %35
  %37 = ptradd %9, i64 48
  %38 = load f64, %37
  %39 = ptradd %8, i64 56
  %40 = load f64, %39
  %41 = ptradd %9, i64 56
  %42 = load f64, %41
  %43 = ptradd %8, i64 64
  %44 = load f64, %43
  %45 = ptradd %9, i64 64
  %46 = load f64, %45
  %47 = ptradd %8, i64 72
  %48 = load f64, %47
  %49 = ptradd %9, i64 72
  %50 = load f64, %49
  %51 = ptradd %8, i64 80
  %52 = load f64, %51
  %53 = ptradd %9, i64 80
  %54 = load f64, %53
  %55 = ptradd %8, i64 88
  %56 = load f64, %55
  %57 = ptradd %9, i64 88
  %58 = load f64, %57
  %59 = ptradd %8, i64 96
  %60 = load f64, %59
  %61 = ptradd %9, i64 96
  %62 = load f64, %61
  %63 = ptradd %8, i64 104
  %64 = load f64, %63
  %65 = ptradd %9, i64 104
  %66 = load f64, %65
  %67 = ptradd %8, i64 112
  %68 = load f64, %67
  %69 = ptradd %9, i64 112
  %70 = load f64, %69
  %71 = ptradd %8, i64 120
  %72 = load f64, %71
  %73 = ptradd %9, i64 120
  %74 = load f64, %73
  %75 = ptradd %8, i64 128
  %76 = load f64, %75
  %77 = ptradd %9, i64 128
  %78 = load f64, %77
  %79 = ptradd %8, i64 136
  %80 = load f64, %79
  %81 = ptradd %9, i64 136
  %82 = load f64, %81
  %83 = FMul.f64 %12, %14
  %84 = FMul.f64 %16, %18
  %85 = FSub.f64 %83, %84
  %86 = FMul.f64 %12, %18
  %87 = FMul.f64 %16, %14
  %88 = FAdd.f64 %86, %87
  %89 = FMul.f64 %20, %38
  %90 = FMul.f64 %24, %42
  %91 = FSub.f64 %89, %90
  %92 = FMul.f64 %20, %42
  %93 = FMul.f64 %24, %38
  %94 = FAdd.f64 %92, %93
  %95 = FAdd.f64 %85, %91
  %96 = FAdd.f64 %88, %94
  %97 = FMul.f64 %28, %62
  %98 = FMul.f64 %32, %66
  %99 = FSub.f64 %97, %98
  %100 = FMul.f64 %28, %66
  %101 = FMul.f64 %32, %62
  %102 = FAdd.f64 %100, %101
  %103 = FAdd.f64 %95, %99
  %104 = FAdd.f64 %96, %102
  store f64 %103, %10
  %107 = ptradd %10, i64 8
  store f64 %104, %107
  %109 = FMul.f64 %12, %22
  %110 = FMul.f64 %16, %26
  %111 = FSub.f64 %109, %110
  %112 = FMul.f64 %12, %26
  %113 = FMul.f64 %16, %22
  %114 = FAdd.f64 %112, %113
  %115 = FMul.f64 %20, %46
  %116 = FMul.f64 %24, %50
  %117 = FSub.f64 %115, %116
  %118 = FMul.f64 %20, %50
  %119 = FMul.f64 %24, %46
  %120 = FAdd.f64 %118, %119
  %121 = FAdd.f64 %111, %117
  %122 = FAdd.f64 %114, %120
  %123 = FMul.f64 %28, %70
  %124 = FMul.f64 %32, %74
  %125 = FSub.f64 %123, %124
  %126 = FMul.f64 %28, %74
  %127 = FMul.f64 %32, %70
  %128 = FAdd.f64 %126, %127
  %129 = FAdd.f64 %121, %125
  %130 = FAdd.f64 %122, %128
  %131 = ptradd %10, i64 16
  store f64 %129, %131
  %133 = ptradd %10, i64 24
  store f64 %130, %133
  %135 = FMul.f64 %12, %30
  %136 = FMul.f64 %16, %34
  %137 = FSub.f64 %135, %136
  %138 = FMul.f64 %12, %34
  %139 = FMul.f64 %16, %30
  %140 = FAdd.f64 %138, %139
  %141 = FMul.f64 %20, %54
  %142 = FMul.f64 %24, %58
  %143 = FSub.f64 %141, %142
  %144 = FMul.f64 %20, %58
  %145 = FMul.f64 %24, %54
  %146 = FAdd.f64 %144, %145
  %147 = FAdd.f64 %137, %143
  %148 = FAdd.f64 %140, %146
  %149 = FMul.f64 %28, %78
  %150 = FMul.f64 %32, %82
  %151 = FSub.f64 %149, %150
  %152 = FMul.f64 %28, %82
  %153 = FMul.f64 %32, %78
  %154 = FAdd.f64 %152, %153
  %155 = FAdd.f64 %147, %151
  %156 = FAdd.f64 %148, %154
  %157 = ptradd %10, i64 32
  store f64 %155, %157
  %159 = ptradd %10, i64 40
  store f64 %156, %159
  %161 = FMul.f64 %36, %14
  %162 = FMul.f64 %40, %18
  %163 = FSub.f64 %161, %162
  %164 = FMul.f64 %36, %18
  %165 = FMul.f64 %40, %14
  %166 = FAdd.f64 %164, %165
  %167 = FMul.f64 %44, %38
  %168 = FMul.f64 %48, %42
  %169 = FSub.f64 %167, %168
  %170 = FMul.f64 %44, %42
  %171 = FMul.f64 %48, %38
  %172 = FAdd.f64 %170, %171
  %173 = FAdd.f64 %163, %169
  %174 = FAdd.f64 %166, %172
  %175 = FMul.f64 %52, %62
  %176 = FMul.f64 %56, %66
  %177 = FSub.f64 %175, %176
  %178 = FMul.f64 %52, %66
  %179 = FMul.f64 %56, %62
  %180 = FAdd.f64 %178, %179
  %181 = FAdd.f64 %173, %177
  %182 = FAdd.f64 %174, %180
  %183 = ptradd %10, i64 48
  store f64 %181, %183
  %185 = ptradd %10, i64 56
  store f64 %182, %185
  %187 = FMul.f64 %36, %22
  %188 = FMul.f64 %40, %26
  %189 = FSub.f64 %187, %188
  %190 = FMul.f64 %36, %26
  %191 = FMul.f64 %40, %22
  %192 = FAdd.f64 %190, %191
  %193 = FMul.f64 %44, %46
  %194 = FMul.f64 %48, %50
  %195 = FSub.f64 %193, %194
  %196 = FMul.f64 %44, %50
  %197 = FMul.f64 %48, %46
  %198 = FAdd.f64 %196, %197
  %199 = FAdd.f64 %189, %195
  %200 = FAdd.f64 %192, %198
  %201 = FMul.f64 %52, %70
  %202 = FMul.f64 %56, %74
  %203 = FSub.f64 %201, %202
  %204 = FMul.f64 %52, %74
  %205 = FMul.f64 %56, %70
  %206 = FAdd.f64 %204, %205
  %207 = FAdd.f64 %199, %203
  %208 = FAdd.f64 %200, %206
  %209 = ptradd %10, i64 64
  store f64 %207, %209
  %211 = ptradd %10, i64 72
  store f64 %208, %211
  %213 = FMul.f64 %36, %30
  %214 = FMul.f64 %40, %34
  %215 = FSub.f64 %213, %214
  %216 = FMul.f64 %36, %34
  %217 = FMul.f64 %40, %30
  %218 = FAdd.f64 %216, %217
  %219 = FMul.f64 %44, %54
  %220 = FMul.f64 %48, %58
  %221 = FSub.f64 %219, %220
  %222 = FMul.f64 %44, %58
  %223 = FMul.f64 %48, %54
  %224 = FAdd.f64 %222, %223
  %225 = FAdd.f64 %215, %221
  %226 = FAdd.f64 %218, %224
  %227 = FMul.f64 %52, %78
  %228 = FMul.f64 %56, %82
  %229 = FSub.f64 %227, %228
  %230 = FMul.f64 %52, %82
  %231 = FMul.f64 %56, %78
  %232 = FAdd.f64 %230, %231
  %233 = FAdd.f64 %225, %229
  %234 = FAdd.f64 %226, %232
  %235 = ptradd %10, i64 80
  store f64 %233, %235
  %237 = ptradd %10, i64 88
  store f64 %234, %237
  %239 = FMul.f64 %60, %14
  %240 = FMul.f64 %64, %18
  %241 = FSub.f64 %239, %240
  %242 = FMul.f64 %60, %18
  %243 = FMul.f64 %64, %14
  %244 = FAdd.f64 %242, %243
  %245 = FMul.f64 %68, %38
  %246 = FMul.f64 %72, %42
  %247 = FSub.f64 %245, %246
  %248 = FMul.f64 %68, %42
  %249 = FMul.f64 %72, %38
  %250 = FAdd.f64 %248, %249
  %251 = FAdd.f64 %241, %247
  %252 = FAdd.f64 %244, %250
  %253 = FMul.f64 %76, %62
  %254 = FMul.f64 %80, %66
  %255 = FSub.f64 %253, %254
  %256 = FMul.f64 %76, %66
  %257 = FMul.f64 %80, %62
  %258 = FAdd.f64 %256, %257
  %259 = FAdd.f64 %251, %255
  %260 = FAdd.f64 %252, %258
  %261 = ptradd %10, i64 96
  store f64 %259, %261
  %263 = ptradd %10, i64 104
  store f64 %260, %263
  %265 = FMul.f64 %60, %22
  %266 = FMul.f64 %64, %26
  %267 = FSub.f64 %265, %266
  %268 = FMul.f64 %60, %26
  %269 = FMul.f64 %64, %22
  %270 = FAdd.f64 %268, %269
  %271 = FMul.f64 %68, %46
  %272 = FMul.f64 %72, %50
  %273 = FSub.f64 %271, %272
  %274 = FMul.f64 %68, %50
  %275 = FMul.f64 %72, %46
  %276 = FAdd.f64 %274, %275
  %277 = FAdd.f64 %267, %273
  %278 = FAdd.f64 %270, %276
  %279 = FMul.f64 %76, %70
  %280 = FMul.f64 %80, %74
  %281 = FSub.f64 %279, %280
  %282 = FMul.f64 %76, %74
  %283 = FMul.f64 %80, %70
  %284 = FAdd.f64 %282, %283
  %285 = FAdd.f64 %277, %281
  %286 = FAdd.f64 %278, %284
  %287 = ptradd %10, i64 112
  store f64 %285, %287
  %289 = ptradd %10, i64 120
  store f64 %286, %289
  %291 = FMul.f64 %60, %30
  %292 = FMul.f64 %64, %34
  %293 = FSub.f64 %291, %292
  %294 = FMul.f64 %60, %34
  %295 = FMul.f64 %64, %30
  %296 = FAdd.f64 %294, %295
  %297 = FMul.f64 %68, %54
  %298 = FMul.f64 %72, %58
  %299 = FSub.f64 %297, %298
  %300 = FMul.f64 %68, %58
  %301 = FMul.f64 %72, %54
  %302 = FAdd.f64 %300, %301
  %303 = FAdd.f64 %293, %299
  %304 = FAdd.f64 %296, %302
  %305 = FMul.f64 %76, %78
  %306 = FMul.f64 %80, %82
  %307 = FSub.f64 %305, %306
  %308 = FMul.f64 %76, %82
  %309 = FMul.f64 %80, %78
  %310 = FAdd.f64 %308, %309
  %311 = FAdd.f64 %303, %307
  %312 = FAdd.f64 %304, %310
  %313 = ptradd %10, i64 128
  store f64 %311, %313
  %315 = ptradd %10, i64 136
  store f64 %312, %315
  ret void
}
declare internal i64 @__kmpc_target_init(i64 %arg0)
declare internal void @__kmpc_target_deinit(i64 %arg0)
declare internal void @__kmpc_distribute_parallel_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
define void @su3_mult_kernel(ptr %arg0, ptr %arg1, ptr %arg2, i64 %arg3) {
bb0:
  %1 = alloca 32
  %12 = thread.id()
  %13 = cmp.Eq.i64 %12, i64 0
  %15 = block.dim()
  %16 = select.ptr %13, @__omp_rtl_is_spmd_mode, @__omp_rtl_dummy
  store i64 i64 1, %16
  %18 = select.ptr %13, @__omp_rtl_team_state, @__omp_rtl_dummy
  store i64 %15, %18
  %20 = ptradd @__omp_rtl_team_state, i64 8
  %21 = select.ptr %13, %20, @__omp_rtl_dummy
  store i64 i64 1, %21
  %23 = ptradd @__omp_rtl_team_state, i64 16
  %24 = select.ptr %13, %23, @__omp_rtl_dummy
  store i64 i64 1, %24
  %26 = ptradd @__omp_rtl_team_state, i64 40
  %27 = select.ptr %13, %26, @__omp_rtl_dummy
  store i64 i64 0, %27
  %29 = select.ptr %13, @__omp_rtl_smem_stack_top, @__omp_rtl_dummy
  store i64 i64 0, %29
  %31 = Mul.i64 %12, i64 8
  %32 = ptradd @__omp_rtl_thread_states, %31
  store ptr ptr 0, %32
  call void @__kmpc_syncthreads_aligned()
  store ptr %arg0, %1
  %3 = ptradd %1, i64 8
  store ptr %arg1, %3
  %5 = ptradd %1, i64 16
  store ptr %arg2, %5
  %7 = ptradd %1, i64 24
  store i64 %arg3, %7
  %111 = thread.id()
  %112 = Mul.i64 %111, i64 8
  %113 = ptradd @__omp_rtl_thread_states, %112
  %114 = load ptr, %113
  %115 = cmp.Ne.ptr %114, ptr 0
  br %115, bb32, bb33
bb1:
  unreachable
bb2:
  unreachable
bb3:
  unreachable
bb4:
  unreachable
bb5:
  unreachable
bb6:
  unreachable
bb7:
  unreachable
bb8:
  unreachable
bb9:
  unreachable
bb10:
  unreachable
bb11:
  unreachable
bb12:
  unreachable
bb13:
  unreachable
bb14:
  unreachable
bb15:
  unreachable
bb16:
  unreachable
bb17:
  %93 = phi i64 [bb42: %90], [bb17: %95]
  call void @su3_mult_kernel.omp_outlined.body.0(%93, %1)
  %95 = Add.i64 %93, %91
  %100 = cmp.Slt.i64 %95, %arg3
  br %100, bb17, bb20
bb18:
  unreachable
bb19:
  unreachable
bb20:
  ret void
bb21:
  unreachable
bb22:
  unreachable
bb23:
  unreachable
bb24:
  unreachable
bb25:
  unreachable
bb26:
  unreachable
bb27:
  unreachable
bb28:
  unreachable
bb29:
  unreachable
bb30:
  unreachable
bb31:
  unreachable
bb32:
  %116 = ptradd %114, i64 8
  %117 = load i64, %116
  br bb34
bb33:
  %118 = ptradd @__omp_rtl_team_state, i64 8
  %119 = load i64, %118
  %120 = cmp.Sgt.i64 %119, i64 1
  %121 = select.i64 %120, i64 0, %111
  br bb34
bb34:
  %122 = phi i64 [bb32: %117], [bb33: %121]
  %128 = thread.id()
  %129 = Mul.i64 %128, i64 8
  %130 = ptradd @__omp_rtl_thread_states, %129
  %131 = load ptr, %130
  %132 = cmp.Ne.ptr %131, ptr 0
  br %132, bb40, bb41
bb35:
  unreachable
bb36:
  unreachable
bb37:
  unreachable
bb38:
  unreachable
bb39:
  unreachable
bb40:
  %133 = ptradd %131, i64 16
  %134 = load i64, %133
  br bb42
bb41:
  %135 = ptradd @__omp_rtl_team_state, i64 8
  %136 = load i64, %135
  %137 = cmp.Eq.i64 %136, i64 1
  %138 = load i64, @__omp_rtl_team_state
  %139 = select.i64 %137, %138, i64 1
  br bb42
bb42:
  %140 = phi i64 [bb40: %134], [bb41: %139]
  %145 = block.id()
  %146 = grid.dim()
  %89 = Mul.i64 %145, %140
  %90 = Add.i64 %89, %122
  %91 = Mul.i64 %146, %140
  %92 = cmp.Slt.i64 %90, %arg3
  br %92, bb17, bb20
bb43:
  unreachable
bb44:
  unreachable
bb45:
  unreachable
bb46:
  unreachable
bb47:
  unreachable
bb48:
  unreachable
bb49:
  unreachable
bb50:
  unreachable
bb51:
  unreachable
bb52:
  unreachable
bb53:
  unreachable
bb54:
  unreachable
bb55:
  unreachable
bb56:
  unreachable
bb57:
  unreachable
bb58:
  unreachable
bb59:
  unreachable
}
declare internal void @__nzomp_trace() [always_inline]
declare internal void @__nzomp_assert(i1 %arg0) [always_inline]
define internal void @__kmpc_syncthreads_aligned() [aligned_barrier,no_call_asm,noinline] {
bb0:
  barrier.aligned()
  ret void
}
declare internal void @__kmpc_barrier() [always_inline]
declare internal i64 @omp_get_thread_num()
declare internal i64 @omp_get_num_threads()
declare internal i64 @omp_get_level()
declare internal i64 @omp_get_team_num() [always_inline,read_none]
declare internal i64 @omp_get_num_teams() [always_inline,read_none]
declare internal ptr @__kmpc_alloc_shared(i64 %arg0) [noinline]
declare internal void @__kmpc_free_shared(ptr %arg0, i64 %arg1) [noinline]
declare internal void @__kmpc_parallel_51(ptr %arg0, ptr %arg1)
declare internal void @__kmpc_parallel_spmd(ptr %arg0, ptr %arg1)
declare internal void @__kmpc_worker_loop()
declare internal void @__kmpc_for_static_loop(ptr %arg0, ptr %arg1, i64 %arg2, i64 %arg3)
declare internal void @__kmpc_distribute_static_loop(ptr %arg0, ptr %arg1, i64 %arg2)
