//! Property tests for the data-race sanitizer.
//!
//! 1. **Soundness on clean kernels**: random race-free kernels — disjoint
//!    per-thread output slots, atomic accumulators, barrier-separated
//!    shared-memory exchange rounds — report zero races and zero
//!    divergences, with the identical verdict (counts *and* rendered
//!    report text) at 1, 2, 4, and 8 worker threads.
//! 2. **Completeness on broken kernels**: structurally mutating a clean
//!    kernel — dropping the barrier between a shared-memory write and the
//!    cross-thread read, or downgrading an atomic accumulation to a plain
//!    store — always produces at least one race report, again identically
//!    at every worker count.

use nzomp_ir::{ExecMode, FuncBuilder, Global, Init, Module, Operand, Space, Ty};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, RtVal};
use proptest::prelude::*;

/// Number of atomic accumulator cells at the front of the global buffer.
const NCELLS: u8 = 4;
/// `out[gid]` slots start here.
const OUT_BASE: i64 = NCELLS as i64 * 8;
/// Shared scratch slots (one per thread; threads ≤ 8).
const NSLOTS: u64 = 8;

/// One shared-memory exchange round: every thread stores to its own slot,
/// synchronizes, reads the slot `shift` places over, synchronizes again.
/// Race-free by construction; `drop_first_barrier` removes the barrier
/// between the write and the cross-thread read, which makes the round race
/// whenever `shift % threads != 0` and `threads > 1`.
#[derive(Clone, Debug)]
struct Round {
    shift: u32,
    atomics: Vec<(u8, i64)>,
}

#[derive(Clone, Debug)]
struct Spec {
    threads: u32,
    teams: u32,
    rounds: Vec<Round>,
}

/// How to break a clean kernel.
#[derive(Clone, Copy, Debug)]
enum Mutation {
    /// Remove the write→read barrier of round `i % rounds`.
    DropBarrier(usize),
    /// Emit the atomic accumulations of round `i % rounds` as plain
    /// stores to the same cell.
    DowngradeAtomic(usize),
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    let round = (0u32..16, prop::collection::vec((0..NCELLS, -7i64..7), 1..3));
    (2u32..=8, 1u32..=3, prop::collection::vec(round, 1..4)).prop_map(
        |(threads, teams, raw_rounds)| Spec {
            threads,
            teams,
            rounds: raw_rounds
                .into_iter()
                // Normalize: a nonzero shift modulo the thread count, so the
                // cross-thread read really is cross-thread.
                .map(|(raw, atomics)| Round {
                    shift: 1 + raw % (threads - 1).max(1),
                    atomics,
                })
                .collect(),
        },
    )
}

fn build(spec: &Spec, mutation: Option<Mutation>) -> Module {
    let mut m = Module::new("san_prop");
    m.add_global(Global::new("scratch", Space::Shared, NSLOTS * 8, Init::Zero));
    let scratch = m.find_global("scratch").unwrap();
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let buf = b.param(0);
    let tid = b.thread_id();
    let team = b.block_id();
    let dim = b.block_dim();
    let base = b.mul(team, dim);
    let gid = b.add(base, tid);
    let own_off = b.mul(tid, Operand::i64(8));
    let own = b.ptr_add(Operand::Global(scratch), own_off);
    let mut r = b.si_to_fp(gid);
    for (i, round) in spec.rounds.iter().enumerate() {
        let (drop_barrier, downgrade) = match mutation {
            Some(Mutation::DropBarrier(j)) => (j % spec.rounds.len() == i, false),
            Some(Mutation::DowngradeAtomic(j)) => (false, j % spec.rounds.len() == i),
            None => (false, false),
        };
        for &(cell, c) in &round.atomics {
            let v = b.add(gid, Operand::i64(c));
            let p = b.ptr_add(buf, Operand::i64(cell as i64 * 8));
            if downgrade {
                b.store(Ty::I64, p, v);
            } else {
                b.atomic_add(Ty::I64, p, v);
            }
        }
        b.store(Ty::F64, own, r);
        if !drop_barrier {
            b.aligned_barrier();
        }
        let shifted = b.add(tid, Operand::i64(round.shift as i64));
        let peer = b.srem(shifted, dim);
        let peer_off = b.mul(peer, Operand::i64(8));
        let pp = b.ptr_add(Operand::Global(scratch), peer_off);
        let v = b.load(Ty::F64, pp);
        r = b.fadd(r, v);
        b.aligned_barrier();
    }
    let goff = b.mul(gid, Operand::i64(8));
    let out_base = b.ptr_add(buf, Operand::i64(OUT_BASE));
    let po = b.ptr_add(out_base, goff);
    b.store(Ty::F64, po, r);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    nzomp_ir::verify_module(&m).unwrap();
    m
}

/// `(races, divergences, rendered reports)` of one sanitized run.
fn verdict(m: Module, spec: &Spec, workers: usize) -> (u64, u64, Vec<String>) {
    let mut dev = Device::load(m, DeviceConfig::default());
    dev.set_sanitize_strict(false);
    dev.set_sanitize(true);
    dev.set_worker_threads(workers);
    let buf = dev.alloc(OUT_BASE as u64 + 8 * (spec.teams * spec.threads) as u64);
    dev.launch("k", Launch::new(spec.teams, spec.threads), &[RtVal::P(buf)])
        .unwrap();
    let (races, divergences) = dev.sanitizer_counts();
    let reports = dev
        .sanitizer_reports()
        .iter()
        .map(|r| r.to_string())
        .collect();
    (races, divergences, reports)
}

/// Verdict at every worker count, asserting they agree along the way.
fn agreed_verdict(spec: &Spec, mutation: Option<Mutation>) -> (u64, u64, Vec<String>) {
    let base = verdict(build(spec, mutation), spec, 1);
    for workers in [2usize, 4, 8] {
        let v = verdict(build(spec, mutation), spec, workers);
        assert_eq!(base, v, "sanitizer verdict diverges at {workers} workers");
    }
    base
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Race-free kernels are sanitizer-clean at every worker count.
    #[test]
    fn race_free_kernels_are_clean(spec in arb_spec()) {
        let (races, divergences, reports) = agreed_verdict(&spec, None);
        prop_assert_eq!(races, 0, "clean kernel reported races: {:?}", reports);
        prop_assert_eq!(divergences, 0);
        prop_assert!(reports.is_empty());
    }

    /// Dropping the write→read barrier of any round always reports a
    /// race, identically at every worker count.
    #[test]
    fn dropped_barrier_always_reports(spec in arb_spec(), which in 0usize..8) {
        let (races, _, reports) = agreed_verdict(&spec, Some(Mutation::DropBarrier(which)));
        prop_assert!(races >= 1, "dropped barrier went unreported");
        prop_assert!(!reports.is_empty());
        prop_assert!(
            reports.iter().any(|r| r.contains("[race:sanitize] shared+")),
            "expected a shared-space race, got: {:?}", reports
        );
    }

    /// Downgrading an atomic accumulation to a plain store always reports
    /// a race, identically at every worker count.
    #[test]
    fn downgraded_atomic_always_reports(spec in arb_spec(), which in 0usize..8) {
        let (races, _, reports) = agreed_verdict(&spec, Some(Mutation::DowngradeAtomic(which)));
        prop_assert!(races >= 1, "downgraded atomic went unreported");
        prop_assert!(
            reports.iter().any(|r| r.contains("[race:sanitize] global+")),
            "expected a global-space race, got: {:?}", reports
        );
    }
}
