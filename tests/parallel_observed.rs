//! Regression tests for the merge-validation gaps a review found in the
//! parallel team engine: observed values that steer a team's behavior —
//! atomic RMW old values with live results, and plain global loads of
//! locations lower-indexed teams wrote — must be validated at the
//! wave-ordered merge, with a direct re-run on mismatch. Without that,
//! these kernels silently diverge from sequential execution at
//! `worker_threads > 1`.

use nzomp_ir::{ExecMode, FuncBuilder, Module, Operand, Ty};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, KernelMetrics, RtVal};

const WORKER_COUNTS: [usize; 3] = [2, 4, 8];

fn run(m: &Module, teams: u32, threads: u32, slots: usize, workers: usize) -> (Vec<i64>, KernelMetrics) {
    let mut dev = Device::load(m.clone(), DeviceConfig::default());
    dev.set_worker_threads(workers);
    let buf = dev.alloc((slots * 8) as u64);
    dev.write_i64(buf, &vec![0i64; slots]).unwrap();
    let metrics = dev
        .launch("k", Launch::new(teams, threads), &[RtVal::P(buf)])
        .unwrap();
    (dev.read_i64(buf, slots).unwrap(), metrics)
}

fn assert_matches_sequential(m: &Module, teams: u32, threads: u32, slots: usize, want: &[i64]) {
    let (base, base_metrics) = run(m, teams, threads, slots, 1);
    assert_eq!(base, want, "sequential ground truth");
    for &workers in &WORKER_COUNTS {
        let (got, metrics) = run(m, teams, threads, slots, workers);
        assert_eq!(got, base, "memory image diverges @{workers} workers");
        assert_eq!(metrics, base_metrics, "metrics diverge @{workers} workers");
    }
}

/// The fetch-add index-allocation idiom: the atomic's *returned* old value
/// indexes a store, so two same-wave teams observing the same snapshot
/// counter would claim the same slot. The merge must validate the observed
/// value (the result register is live) and re-run contaminated teams.
#[test]
fn fetch_add_index_allocation_is_sequential() {
    const TEAMS: u32 = 16;
    const THREADS: u32 = 4;
    let mut m = Module::new("fetch_add_index");
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let buf = b.param(0);
    let tid = b.thread_id();
    let team = b.block_id();
    let dim = b.block_dim();
    let base = b.mul(team, dim);
    let gid = b.add(base, tid);

    // idx = counter++; slots[idx] = gid + 100.
    let idx = b.atomic_add(Ty::I64, buf, Operand::i64(1));
    let slots = b.ptr_add(buf, Operand::i64(8));
    let slotp = b.gep(slots, idx, 8);
    let tag = b.add(gid, Operand::i64(100));
    b.store(Ty::I64, slotp, tag);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);

    // Sequentially, global thread k (teams ascending, threads within a
    // team ascending) draws index k, so slot k holds k + 100.
    let n = (TEAMS * THREADS) as usize;
    let mut want = vec![n as i64];
    want.extend((0..n as i64).map(|k| k + 100));
    assert_matches_sequential(&m, TEAMS, THREADS, 1 + n, &want);
}

/// Cross-team plain reads: team t reads the cell team t-1 wrote. In
/// sequential execution the chain propagates (`buf[t+1] = buf[t] + 1`);
/// buffered teams read a stale snapshot, so the merge must validate the
/// logged load observations and re-run every contaminated team in order.
#[test]
fn cross_team_plain_read_chain_is_sequential() {
    const TEAMS: u32 = 32;
    let mut m = Module::new("read_chain");
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let buf = b.param(0);
    let team = b.block_id();
    let prevp = b.gep(buf, team, 8);
    let one = b.add(team, Operand::i64(1));
    let nextp = b.gep(buf, one, 8);
    let prev = b.load(Ty::I64, prevp);
    let inc = b.add(prev, Operand::i64(1));
    b.store(Ty::I64, nextp, inc);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);

    // Host presets buf[0] = 1 via the kernel? No: keep the buffer zeroed
    // and let the chain start at 0 — buf[t] = t after the launch.
    let want: Vec<i64> = (0..=TEAMS as i64).collect();
    assert_matches_sequential(&m, TEAMS, 1, TEAMS as usize + 1, &want);
}

/// A dead-result atomic add followed by a plain load of the same cell:
/// the add itself needs no validation, but it desynchronizes the team's
/// view from the merge-time master, so the subsequent load must be logged
/// and validated (the sync mask has to *clear* on unvalidated RMWs).
#[test]
fn load_after_dead_result_atomic_is_sequential() {
    const TEAMS: u32 = 12;
    let mut m = Module::new("load_after_add");
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let buf = b.param(0);
    let team = b.block_id();
    // counter += 1 (result discarded), then v = load(counter) — the
    // loaded value is team-order dependent: sequentially team t sees t+1.
    b.atomic_add(Ty::I64, buf, Operand::i64(1));
    let v = b.load(Ty::I64, buf);
    let one = b.add(team, Operand::i64(1));
    let outp = b.gep(buf, one, 8);
    b.store(Ty::I64, outp, v);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);

    let mut want = vec![TEAMS as i64];
    want.extend((1..=TEAMS as i64).collect::<Vec<_>>());
    assert_matches_sequential(&m, TEAMS, 1, TEAMS as usize + 1, &want);
}

/// Pure dead-result reductions — the case the validation rules must keep
/// fully parallel — still agree bit for bit (including the f64 fold
/// order, which only matches because replay re-applies operations in team
/// order).
#[test]
fn dead_result_reduction_stays_exact() {
    const TEAMS: u32 = 24;
    const THREADS: u32 = 8;
    let mut m = Module::new("reduction");
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let buf = b.param(0);
    let tid = b.thread_id();
    let team = b.block_id();
    let dim = b.block_dim();
    let base = b.mul(team, dim);
    let gid = b.add(base, tid);
    let one_more = b.add(gid, Operand::i64(1));
    b.atomic_add(Ty::I64, buf, one_more);
    let gf = b.si_to_fp(one_more);
    let inv = b.fdiv(Operand::f64(1.0), gf);
    let accp = b.ptr_add(buf, Operand::i64(8));
    b.atomic(nzomp_ir::inst::AtomicOp::Add, Ty::F64, accp, inv);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);

    let n = (TEAMS * THREADS) as i64;
    let acc = (0..n).fold(0.0f64, |a, g| a + 1.0 / (g + 1) as f64);
    let want = vec![(1..=n).sum::<i64>(), acc.to_bits() as i64];
    assert_matches_sequential(&m, TEAMS, THREADS, 2, &want);
}
