//! Seeded random kernel generator for the structured differential fuzzer.
//!
//! [`generate`] maps a `u64` seed to a complete, verifiable, *executable*
//! module. Coverage is by construction, not by chance: every generated
//! module contains every [`Inst`] variant, every terminator, every binary /
//! unary / cast / predicate / atomic operation, every intrinsic, every
//! address space, every `Init` form, and both exec modes — the seed varies
//! operand selection, constants, and grid shape, never coverage.
//!
//! Generated kernels are safe to run under any optimization pipeline and
//! any worker-thread count:
//! * trap-free — divisors are forced odd (`or x, 1`), shift amounts masked
//!   (`and x, 63`), `assert.fail` sits behind a never-taken `gid < 0`
//!   branch, and every `assume` states a true fact;
//! * race-free — contended atomics discard their (order-dependent under
//!   reordering) results, value-producing atomics hit per-thread disjoint
//!   slots, and shared-memory neighbor reads are separated from the writes
//!   by an aligned barrier;
//! * heap-deterministic — only global thread 0 calls `malloc`/`free`.
//!
//! The corpus (`tests/corpus/gen-*.nzir`) is exactly `generate(seed)` for
//! pinned seeds, so every corpus file is reproducible from its name.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeSet;

use nzomp_ir::builder::build_counted_loop;
use nzomp_ir::{
    AtomicOp, BinOp, CastKind, ExecMode, FuncBuilder, Function, Global, Init, Inst, Intrinsic,
    Linkage, Module, Operand, Pred, Space, Term, Ty, UnOp,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Contended i64 cells at the front of the device buffer.
pub const CELLS: u64 = 4;

/// A generated module plus everything needed to launch it: grid shape,
/// buffer size, and where the observable output lives.
pub struct GenModule {
    pub module: Module,
    pub teams: u32,
    pub threads: u32,
    /// Size of the single `ptr` argument's buffer.
    pub buf_bytes: u64,
    /// Byte offset of the output region within the buffer.
    pub out_off: u64,
    /// Number of 8-byte output slots (2 per global thread: f64 + i64).
    pub out_slots: usize,
}

impl GenModule {
    /// Launch metadata as a printer-comment line, stored in corpus files
    /// right after the version header (the parser skips it, the corpus
    /// runner reads it back via [`parse_launch_comment`]).
    pub fn launch_comment(&self) -> String {
        format!(
            "; launch teams={} threads={} buf={} out_off={} out_slots={}",
            self.teams, self.threads, self.buf_bytes, self.out_off, self.out_slots
        )
    }
}

/// Launch metadata recovered from a corpus file's `; launch` comment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchMeta {
    pub teams: u32,
    pub threads: u32,
    pub buf_bytes: u64,
    pub out_off: u64,
    pub out_slots: usize,
}

/// Parse the `; launch teams=.. threads=.. buf=.. out_off=.. out_slots=..`
/// comment out of a corpus file, if present.
pub fn parse_launch_comment(text: &str) -> Option<LaunchMeta> {
    let line = text
        .lines()
        .find(|l| l.trim().starts_with("; launch "))?
        .trim();
    let mut teams = None;
    let mut threads = None;
    let mut buf = None;
    let mut out_off = None;
    let mut out_slots = None;
    for tok in line.trim_start_matches("; launch ").split_whitespace() {
        let (key, val) = tok.split_once('=')?;
        match key {
            "teams" => teams = val.parse::<u32>().ok(),
            "threads" => threads = val.parse::<u32>().ok(),
            "buf" => buf = val.parse::<u64>().ok(),
            "out_off" => out_off = val.parse::<u64>().ok(),
            "out_slots" => out_slots = val.parse::<usize>().ok(),
            _ => return None,
        }
    }
    Some(LaunchMeta {
        teams: teams?,
        threads: threads?,
        buf_bytes: buf?,
        out_off: out_off?,
        out_slots: out_slots?,
    })
}

const INT_BINS: [BinOp; 15] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::SDiv,
    BinOp::SRem,
    BinOp::UDiv,
    BinOp::URem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::LShr,
    BinOp::AShr,
    BinOp::SMin,
    BinOp::SMax,
];
const FLOAT_BINS: [BinOp; 6] = [
    BinOp::FAdd,
    BinOp::FSub,
    BinOp::FMul,
    BinOp::FDiv,
    BinOp::FMin,
    BinOp::FMax,
];
const FLOAT_UNS: [UnOp; 7] = [
    UnOp::FNeg,
    UnOp::FAbs,
    UnOp::Sqrt,
    UnOp::Sin,
    UnOp::Cos,
    UnOp::Exp,
    UnOp::Log,
];
const ALL_PREDS: [Pred; 10] = [
    Pred::Eq,
    Pred::Ne,
    Pred::Slt,
    Pred::Sle,
    Pred::Sgt,
    Pred::Sge,
    Pred::Ult,
    Pred::Ule,
    Pred::Ugt,
    Pred::Uge,
];
const F64_SPECIALS: [f64; 7] = [
    0.0,
    -0.0,
    f64::INFINITY,
    f64::NEG_INFINITY,
    f64::NAN,
    f64::MIN_POSITIVE,
    1.000_000_000_000_000_2,
];
const I64_EDGES: [i64; 5] = [i64::MAX, i64::MIN, -1, 1, 63];

fn pick(rng: &mut StdRng, pool: &[Operand]) -> Operand {
    pool[rng.gen_range(0..pool.len())]
}

/// Deterministically generate one executable module from a seed.
pub fn generate(seed: u64) -> GenModule {
    let mut rng = StdRng::seed_from_u64(seed);
    let teams = rng.gen_range(1..=4u32);
    let threads = rng.gen_range(1..=8u32);
    let n = (teams * threads) as u64;
    let scratch_off = CELLS * 8;
    let out_off = scratch_off + n * 8;
    let out_slots = (2 * n) as usize;
    let buf_bytes = out_off + n * 16;

    let mut m = Module::new(format!("fuzz_{seed}"));

    // Globals: one per address space, all three Init forms, both linkages.
    let g_counter = m.add_global(Global::new(
        "g_counter",
        Space::Global,
        8,
        Init::I64(rng.gen_range(-100..100)),
    ));
    let table: Vec<u8> = (0..16).map(|_| rng.gen_range(0..=255u8)).collect();
    let g_table = m.add_global(Global::constant(
        "g_table",
        Space::Constant,
        16,
        Init::Bytes(table),
    ));
    let g_shared = m.add_global(Global::new(
        "g_shared",
        Space::Shared,
        threads as u64 * 8,
        Init::Zero,
    ));
    m.add_global(Global::new("g_local", Space::Local, 8, Init::Zero));
    let mut g_ext = Global::new("g_ext", Space::Global, 8, Init::Zero);
    g_ext.linkage = Linkage::External;
    m.add_global(g_ext);

    // An external declaration (never called) and an internal helper with a
    // diamond + phi + value return, called from the kernel.
    m.add_function(Function::declaration(
        "ext_fn",
        vec![Ty::Ptr],
        Some(Ty::I64),
    ));
    let mut hb = FuncBuilder::new("helper", vec![Ty::I64, Ty::I64], Some(Ty::I64));
    hb.set_linkage(Linkage::Internal);
    if rng.gen_range(0..2) == 0 {
        hb.attrs_mut().no_inline = true;
    } else {
        hb.attrs_mut().always_inline = true;
    }
    let (ha, hc) = (hb.param(0), hb.param(1));
    let cond = hb.icmp_slt(ha, hc);
    let t_blk = hb.new_block();
    let f_blk = hb.new_block();
    let join = hb.new_block();
    hb.cond_br(cond, t_blk, f_blk);
    hb.switch_to(t_blk);
    let tv = hb.mul(ha, Operand::i64(rng.gen_range(1..7)));
    hb.br(join);
    hb.switch_to(f_blk);
    let fv = hb.sub(hc, ha);
    hb.br(join);
    hb.switch_to(join);
    let hphi = hb.phi(Ty::I64, vec![(t_blk, tv), (f_blk, fv)]);
    hb.ret(Some(hphi));
    let helper = m.add_function(hb.finish());

    // The kernel.
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    if rng.gen_range(0..2) == 0 {
        // Sound: every barrier below is executed by all threads together.
        b.attrs_mut().aligned_barrier = true;
    }
    let buf = b.param(0);
    let tid = b.thread_id();
    let bid = b.block_id();
    let bdim = b.block_dim();
    let gdim = b.grid_dim();
    let base = b.mul(bid, bdim);
    let gid = b.add(base, tid);
    // True-only assumes.
    let a0 = b.icmp_sge(tid, Operand::i64(0));
    b.assume(a0);
    let a1 = b.icmp_slt(tid, bdim);
    b.assume(a1);
    // assert.fail + unreachable behind a never-taken branch.
    let bad = b.icmp_slt(gid, Operand::i64(0));
    let fail_blk = b.new_block();
    let cont = b.new_block();
    b.cond_br(bad, fail_blk, cont);
    b.switch_to(fail_blk);
    b.assert_fail();
    b.unreachable();
    b.switch_to(cont);

    // Value pools the random choices draw from.
    let mut ints = vec![
        gid,
        tid,
        bid,
        bdim,
        gdim,
        Operand::i64(rng.gen_range(-9..10)),
        Operand::i64(I64_EDGES[rng.gen_range(0..I64_EDGES.len())]),
    ];
    let gid_f = b.si_to_fp(gid);
    let mut floats = vec![
        gid_f,
        Operand::f64(rng.gen_range(-4.0..4.0)),
        Operand::f64(F64_SPECIALS[rng.gen_range(0..F64_SPECIALS.len())]),
    ];

    // Every binary op, with trap guards on divisors and shift amounts.
    for op in INT_BINS {
        let lhs = pick(&mut rng, &ints);
        let mut rhs = pick(&mut rng, &ints);
        rhs = match op {
            BinOp::SDiv | BinOp::SRem | BinOp::UDiv | BinOp::URem => {
                b.or(rhs, Operand::i64(1)) // odd, hence nonzero
            }
            BinOp::Shl | BinOp::LShr | BinOp::AShr => b.and(rhs, Operand::i64(63)),
            _ => rhs,
        };
        let v = b.bin(op, Ty::I64, lhs, rhs);
        ints.push(v);
    }
    for op in FLOAT_BINS {
        let (l, r) = (pick(&mut rng, &floats), pick(&mut rng, &floats));
        let v = b.bin(op, Ty::F64, l, r);
        floats.push(v);
    }
    // Every unary op.
    let x = pick(&mut rng, &ints);
    let v = b.un(UnOp::Neg, Ty::I64, x);
    ints.push(v);
    let x = pick(&mut rng, &ints);
    let v = b.un(UnOp::Not, Ty::I64, x);
    ints.push(v);
    for op in FLOAT_UNS {
        let x = pick(&mut rng, &floats);
        let v = b.un(op, Ty::F64, x);
        floats.push(v);
    }
    // Every cast kind (PtrCast round-trips the buffer pointer).
    let x = pick(&mut rng, &ints);
    let v = b.cast(CastKind::IntCast, Ty::I32, x);
    ints.push(v);
    let x = pick(&mut rng, &ints);
    let v = b.cast(CastKind::ZExtCast, Ty::I8, x);
    ints.push(v);
    let x = pick(&mut rng, &ints);
    let v = b.si_to_fp(x);
    floats.push(v);
    let x = pick(&mut rng, &floats);
    let v = b.fp_to_si(x);
    ints.push(v);
    let buf_as_int = b.cast(CastKind::PtrCast, Ty::I64, buf);
    let buf_again = b.cast(CastKind::PtrCast, Ty::Ptr, buf_as_int);
    // Every predicate, via select chains (plus one float compare).
    for pred in ALL_PREDS {
        let (l, r) = (pick(&mut rng, &ints), pick(&mut rng, &ints));
        let c = b.cmp(pred, Ty::I64, l, r);
        let (t, f) = (pick(&mut rng, &ints), pick(&mut rng, &ints));
        let v = b.select(Ty::I64, c, t, f);
        ints.push(v);
    }
    let (l, r) = (pick(&mut rng, &floats), pick(&mut rng, &floats));
    let fc = b.cmp(Pred::Slt, Ty::F64, l, r);
    let (t, f) = (pick(&mut rng, &floats), pick(&mut rng, &floats));
    let v = b.select(Ty::F64, fc, t, f);
    floats.push(v);

    // Private memory: alloca with i64/f64/i32/i8 stores and loads.
    let slot = b.alloca(24);
    let x = pick(&mut rng, &ints);
    b.store(Ty::I64, slot, x);
    let v = b.load(Ty::I64, slot);
    ints.push(v);
    let slot8 = b.ptr_add(slot, Operand::i64(8));
    let x = pick(&mut rng, &floats);
    b.store(Ty::F64, slot8, x);
    let v = b.load(Ty::F64, slot8);
    floats.push(v);
    let slot16 = b.ptr_add(slot, Operand::i64(16));
    let x = pick(&mut rng, &ints);
    b.store(Ty::I32, slot16, x);
    let v = b.load(Ty::I32, slot16);
    ints.push(v);
    let x = pick(&mut rng, &ints);
    b.store(Ty::I8, slot16, x);
    let v = b.load(Ty::I8, slot16);
    ints.push(v);

    // Shared memory: write own slot, aligned barrier, read the neighbor's
    // slot (race-free because of the barrier), then a plain barrier.
    let sslot = b.gep(Operand::Global(g_shared), tid, 8);
    b.store(Ty::I64, sslot, gid);
    b.aligned_barrier();
    let succ = b.add(tid, Operand::i64(1));
    let nidx = b.srem(succ, bdim); // bdim >= 1, never zero
    let nslot = b.gep(Operand::Global(g_shared), nidx, 8);
    let v = b.load(Ty::I64, nslot);
    ints.push(v);
    b.barrier();

    // Constant-table load.
    let tix = b.and(tid, Operand::i64(1));
    let tp = b.gep(Operand::Global(g_table), tix, 8);
    let v = b.load(Ty::I64, tp);
    ints.push(v);

    // Contended atomics: results discarded (their old-values depend on
    // scheduling order), final cell states are order-insensitive.
    b.atomic_add(
        Ty::I64,
        Operand::Global(g_counter),
        Operand::i64(rng.gen_range(1..5)),
    );
    let cell_a = b.ptr_add(buf, Operand::i64(rng.gen_range(0..CELLS as i64) * 8));
    b.atomic(AtomicOp::Min, Ty::I64, cell_a, gid);
    let cell_b = b.ptr_add(buf, Operand::i64(rng.gen_range(0..CELLS as i64) * 8));
    b.atomic(AtomicOp::Max, Ty::I64, cell_b, gid);

    // Per-thread scratch slot: every atomic op + cas, results usable
    // because no other thread touches the slot.
    let scr_base = b.ptr_add(buf, Operand::i64(scratch_off as i64));
    let scr = b.gep(scr_base, gid, 8);
    let x = pick(&mut rng, &ints);
    let v = b.atomic_add(Ty::I64, scr, x);
    ints.push(v);
    let x = pick(&mut rng, &ints);
    let v = b.atomic(AtomicOp::Min, Ty::I64, scr, x);
    ints.push(v);
    let x = pick(&mut rng, &ints);
    let v = b.atomic(AtomicOp::Max, Ty::I64, scr, x);
    ints.push(v);
    let x = pick(&mut rng, &ints);
    let v = b.atomic(AtomicOp::Exchange, Ty::I64, scr, x);
    ints.push(v);
    let x = pick(&mut rng, &floats);
    let v = b.atomic(AtomicOp::Add, Ty::F64, scr, x);
    floats.push(v);
    let (e, nv) = (pick(&mut rng, &ints), pick(&mut rng, &ints));
    let v = b.cas(Ty::I64, scr, e, nv);
    ints.push(v);

    // malloc/free diamond: only global thread 0 touches the heap, so the
    // heap image is identical at every worker count.
    let from = b.current_block();
    let is0 = b.icmp_eq(gid, Operand::i64(0));
    let heap_blk = b.new_block();
    let heap_join = b.new_block();
    b.cond_br(is0, heap_blk, heap_join);
    b.switch_to(heap_blk);
    let hp = b.malloc(Operand::i64(16));
    b.store(Ty::I64, hp, Operand::i64(rng.gen_range(0..1000)));
    let hv = b.load(Ty::I64, hp);
    b.free(hp);
    b.br(heap_join);
    b.switch_to(heap_join);
    let v = b.phi(Ty::I64, vec![(from, Operand::i64(0)), (heap_blk, hv)]);
    ints.push(v);

    // Three-way join: a phi with more than two incoming edges.
    let way = b.and(gid, Operand::i64(3));
    let from3 = b.current_block();
    let way_a = b.new_block();
    let way_rest = b.new_block();
    let way_b = b.new_block();
    let way_c = b.new_block();
    let way_join = b.new_block();
    let is_a = b.icmp_eq(way, Operand::i64(0));
    b.cond_br(is_a, way_a, way_rest);
    b.switch_to(way_rest);
    let is_b = b.icmp_eq(way, Operand::i64(1));
    b.cond_br(is_b, way_b, way_c);
    b.switch_to(way_a);
    let va = b.add(gid, Operand::i64(rng.gen_range(1..20)));
    b.br(way_join);
    b.switch_to(way_b);
    let vb = b.mul(gid, Operand::i64(rng.gen_range(2..9)));
    b.br(way_join);
    b.switch_to(way_c);
    let vc = b.sub(gid, Operand::i64(rng.gen_range(1..20)));
    b.br(way_join);
    b.switch_to(way_join);
    let v = b.phi(
        Ty::I64,
        vec![(way_a, va), (way_b, vb), (way_c, vc)],
    );
    ints.push(v);
    let _ = from3;

    // Direct call of the internal helper.
    let (x, y) = (pick(&mut rng, &ints), pick(&mut rng, &ints));
    if let Some(v) = b.call(Operand::Func(helper), vec![x, y], Some(Ty::I64)) {
        ints.push(v);
    }

    // A counted loop with a data-dependent trip count (1..=4) and a
    // loop-carried accumulator in private memory.
    let trip_lo = b.and(gid, Operand::i64(3));
    let trip = b.add(trip_lo, Operand::i64(1));
    b.store(Ty::I64, slot, Operand::i64(0));
    build_counted_loop(&mut b, Operand::i64(0), trip, Operand::i64(1), |b, iv| {
        let cur = b.load(Ty::I64, slot);
        let nx = b.add(cur, iv);
        b.store(Ty::I64, slot, nx);
    });
    let v = b.load(Ty::I64, slot);
    ints.push(v);

    // Random tail: extra arithmetic whose shape depends on the seed.
    for _ in 0..rng.gen_range(4..24) {
        match rng.gen_range(0..5) {
            0 => {
                let op = INT_BINS[rng.gen_range(0..INT_BINS.len())];
                let lhs = pick(&mut rng, &ints);
                let mut rhs = pick(&mut rng, &ints);
                rhs = match op {
                    BinOp::SDiv | BinOp::SRem | BinOp::UDiv | BinOp::URem => {
                        b.or(rhs, Operand::i64(1))
                    }
                    BinOp::Shl | BinOp::LShr | BinOp::AShr => b.and(rhs, Operand::i64(63)),
                    _ => rhs,
                };
                let v = b.bin(op, Ty::I64, lhs, rhs);
                ints.push(v);
            }
            1 => {
                let op = FLOAT_BINS[rng.gen_range(0..FLOAT_BINS.len())];
                let (l, r) = (pick(&mut rng, &floats), pick(&mut rng, &floats));
                let v = b.bin(op, Ty::F64, l, r);
                floats.push(v);
            }
            2 => {
                let op = FLOAT_UNS[rng.gen_range(0..FLOAT_UNS.len())];
                let x = pick(&mut rng, &floats);
                let v = b.un(op, Ty::F64, x);
                floats.push(v);
            }
            3 => {
                let pred = ALL_PREDS[rng.gen_range(0..ALL_PREDS.len())];
                let (l, r) = (pick(&mut rng, &ints), pick(&mut rng, &ints));
                let c = b.cmp(pred, Ty::I64, l, r);
                let (t, f) = (pick(&mut rng, &ints), pick(&mut rng, &ints));
                let v = b.select(Ty::I64, c, t, f);
                ints.push(v);
            }
            _ => {
                let x = pick(&mut rng, &ints);
                let v = b.si_to_fp(x);
                floats.push(v);
            }
        }
    }

    // Fold both pools and write the observable outputs: out[gid] holds
    // (f64 accumulator, i64 accumulator). Xor keeps the int fold stable
    // under huge intermediate values.
    let mut acc_i = Operand::i64(0);
    for v in ints.clone() {
        acc_i = b.bin(BinOp::Xor, Ty::I64, acc_i, v);
    }
    let seed_f = b.si_to_fp(acc_i);
    let mut acc_f = seed_f;
    for v in floats.clone() {
        acc_f = b.fadd(acc_f, v);
    }
    // Store the int accumulator into the per-thread scratch slot through
    // the ptr-cast round-tripped base pointer (exercises PtrCast end to
    // end; own slot, so still race-free).
    let scr2_base = b.ptr_add(buf_again, Operand::i64(scratch_off as i64));
    let scr2 = b.gep(scr2_base, gid, 8);
    b.store(Ty::I64, scr2, acc_i);
    let out_base = b.ptr_add(buf, Operand::i64(out_off as i64));
    let o_f = b.gep(out_base, gid, 16);
    b.store(Ty::F64, o_f, acc_f);
    let o_i = b.ptr_add(o_f, Operand::i64(8));
    b.store(Ty::I64, o_i, acc_i);
    b.ret(None);
    let k = m.add_function(b.finish());
    m.add_kernel(k, ExecMode::Spmd);

    // A trivial Generic-mode kernel so both exec modes appear in every
    // module (never launched by the harness).
    let mut ab = FuncBuilder::new("k_aux", vec![], None);
    ab.ret(None);
    let aux = m.add_function(ab.finish());
    m.add_kernel(aux, ExecMode::Generic);

    // Normal form: the exact round-trip contract `parse(print(m)) == m`
    // holds for normalized modules (the builder's alloca/phi insertions
    // leave the arena out of block order).
    m.renumber();

    GenModule {
        module: m,
        teams,
        threads,
        buf_bytes,
        out_off,
        out_slots,
    }
}

/// Feature labels the coverage test checks off. Every generated module
/// must cover every label — coverage is structural, not probabilistic.
pub fn all_labels() -> BTreeSet<&'static str> {
    let mut s = BTreeSet::new();
    for l in [
        // Inst variants
        "inst:Bin",
        "inst:Un",
        "inst:Cast",
        "inst:Cmp",
        "inst:Select",
        "inst:Load",
        "inst:Store",
        "inst:PtrAdd",
        "inst:Alloca",
        "inst:Call",
        "inst:Atomic",
        "inst:Cas",
        "inst:Intr",
        "inst:Phi",
        // Terminators
        "term:Br",
        "term:CondBr",
        "term:RetVoid",
        "term:RetValue",
        "term:Unreachable",
        // Exec modes, spaces, init forms, linkage
        "mode:Generic",
        "mode:Spmd",
        "space:Global",
        "space:Shared",
        "space:Local",
        "space:Constant",
        "init:Zero",
        "init:I64",
        "init:Bytes",
        "linkage:Internal",
        "linkage:External",
        "func:declaration",
    ] {
        s.insert(l);
    }
    for op in INT_BINS {
        s.insert(bin_label(op));
    }
    for op in FLOAT_BINS {
        s.insert(bin_label(op));
    }
    for op in [
        UnOp::Neg,
        UnOp::Not,
        UnOp::FNeg,
        UnOp::FAbs,
        UnOp::Sqrt,
        UnOp::Sin,
        UnOp::Cos,
        UnOp::Exp,
        UnOp::Log,
    ] {
        s.insert(un_label(op));
    }
    for k in [
        CastKind::IntCast,
        CastKind::ZExtCast,
        CastKind::SiToFp,
        CastKind::FpToSi,
        CastKind::PtrCast,
    ] {
        s.insert(cast_label(k));
    }
    for p in ALL_PREDS {
        s.insert(pred_label(p));
    }
    for a in [
        AtomicOp::Add,
        AtomicOp::Min,
        AtomicOp::Max,
        AtomicOp::Exchange,
    ] {
        s.insert(atomic_label(a));
    }
    for i in [
        "intr:ThreadId",
        "intr:BlockId",
        "intr:BlockDim",
        "intr:GridDim",
        "intr:AlignedBarrier",
        "intr:Barrier",
        "intr:Assume",
        "intr:AssertFail",
        "intr:Malloc",
        "intr:Free",
    ] {
        s.insert(i);
    }
    s
}

fn bin_label(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "bin:Add",
        BinOp::Sub => "bin:Sub",
        BinOp::Mul => "bin:Mul",
        BinOp::SDiv => "bin:SDiv",
        BinOp::SRem => "bin:SRem",
        BinOp::UDiv => "bin:UDiv",
        BinOp::URem => "bin:URem",
        BinOp::And => "bin:And",
        BinOp::Or => "bin:Or",
        BinOp::Xor => "bin:Xor",
        BinOp::Shl => "bin:Shl",
        BinOp::LShr => "bin:LShr",
        BinOp::AShr => "bin:AShr",
        BinOp::SMin => "bin:SMin",
        BinOp::SMax => "bin:SMax",
        BinOp::FAdd => "bin:FAdd",
        BinOp::FSub => "bin:FSub",
        BinOp::FMul => "bin:FMul",
        BinOp::FDiv => "bin:FDiv",
        BinOp::FMin => "bin:FMin",
        BinOp::FMax => "bin:FMax",
    }
}

fn un_label(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "un:Neg",
        UnOp::Not => "un:Not",
        UnOp::FNeg => "un:FNeg",
        UnOp::FAbs => "un:FAbs",
        UnOp::Sqrt => "un:Sqrt",
        UnOp::Sin => "un:Sin",
        UnOp::Cos => "un:Cos",
        UnOp::Exp => "un:Exp",
        UnOp::Log => "un:Log",
    }
}

fn cast_label(k: CastKind) -> &'static str {
    match k {
        CastKind::IntCast => "cast:IntCast",
        CastKind::ZExtCast => "cast:ZExtCast",
        CastKind::SiToFp => "cast:SiToFp",
        CastKind::FpToSi => "cast:FpToSi",
        CastKind::PtrCast => "cast:PtrCast",
    }
}

fn pred_label(p: Pred) -> &'static str {
    match p {
        Pred::Eq => "pred:Eq",
        Pred::Ne => "pred:Ne",
        Pred::Slt => "pred:Slt",
        Pred::Sle => "pred:Sle",
        Pred::Sgt => "pred:Sgt",
        Pred::Sge => "pred:Sge",
        Pred::Ult => "pred:Ult",
        Pred::Ule => "pred:Ule",
        Pred::Ugt => "pred:Ugt",
        Pred::Uge => "pred:Uge",
    }
}

fn atomic_label(a: AtomicOp) -> &'static str {
    match a {
        AtomicOp::Add => "atomic:Add",
        AtomicOp::Min => "atomic:Min",
        AtomicOp::Max => "atomic:Max",
        AtomicOp::Exchange => "atomic:Exchange",
    }
}

fn intr_label(i: &Intrinsic) -> &'static str {
    match i {
        Intrinsic::ThreadId => "intr:ThreadId",
        Intrinsic::BlockId => "intr:BlockId",
        Intrinsic::BlockDim => "intr:BlockDim",
        Intrinsic::GridDim => "intr:GridDim",
        Intrinsic::AlignedBarrier => "intr:AlignedBarrier",
        Intrinsic::Barrier => "intr:Barrier",
        Intrinsic::Assume(()) => "intr:Assume",
        Intrinsic::AssertFail => "intr:AssertFail",
        Intrinsic::Malloc => "intr:Malloc",
        Intrinsic::Free => "intr:Free",
    }
}

/// Which feature labels a module actually contains.
pub fn coverage_labels(m: &Module) -> BTreeSet<&'static str> {
    let mut s = BTreeSet::new();
    for g in &m.globals {
        s.insert(match g.space {
            Space::Global => "space:Global",
            Space::Shared => "space:Shared",
            Space::Local => "space:Local",
            Space::Constant => "space:Constant",
        });
        s.insert(match g.init {
            Init::Zero => "init:Zero",
            Init::I64(_) => "init:I64",
            Init::Bytes(_) => "init:Bytes",
        });
        s.insert(match g.linkage {
            Linkage::Internal => "linkage:Internal",
            Linkage::External => "linkage:External",
        });
    }
    for k in &m.kernels {
        s.insert(match k.exec_mode {
            ExecMode::Generic => "mode:Generic",
            ExecMode::Spmd => "mode:Spmd",
        });
    }
    for f in &m.funcs {
        if f.is_declaration() {
            s.insert("func:declaration");
        }
        s.insert(match f.linkage {
            Linkage::Internal => "linkage:Internal",
            Linkage::External => "linkage:External",
        });
        for blk in &f.blocks {
            s.insert(match &blk.term {
                Term::Br(_) => "term:Br",
                Term::CondBr { .. } => "term:CondBr",
                Term::Ret(None) => "term:RetVoid",
                Term::Ret(Some(_)) => "term:RetValue",
                Term::Unreachable => "term:Unreachable",
            });
            for &iid in &blk.insts {
                match f.inst(iid) {
                    Inst::Bin { op, .. } => {
                        s.insert("inst:Bin");
                        s.insert(bin_label(*op));
                    }
                    Inst::Un { op, .. } => {
                        s.insert("inst:Un");
                        s.insert(un_label(*op));
                    }
                    Inst::Cast { kind, .. } => {
                        s.insert("inst:Cast");
                        s.insert(cast_label(*kind));
                    }
                    Inst::Cmp { pred, .. } => {
                        s.insert("inst:Cmp");
                        s.insert(pred_label(*pred));
                    }
                    Inst::Select { .. } => {
                        s.insert("inst:Select");
                    }
                    Inst::Load { .. } => {
                        s.insert("inst:Load");
                    }
                    Inst::Store { .. } => {
                        s.insert("inst:Store");
                    }
                    Inst::PtrAdd { .. } => {
                        s.insert("inst:PtrAdd");
                    }
                    Inst::Alloca { .. } => {
                        s.insert("inst:Alloca");
                    }
                    Inst::Call { .. } => {
                        s.insert("inst:Call");
                    }
                    Inst::Atomic { op, .. } => {
                        s.insert("inst:Atomic");
                        s.insert(atomic_label(*op));
                    }
                    Inst::Cas { .. } => {
                        s.insert("inst:Cas");
                    }
                    Inst::Intr { intr, .. } => {
                        s.insert("inst:Intr");
                        s.insert(intr_label(intr));
                    }
                    Inst::Phi { .. } => {
                        s.insert("inst:Phi");
                    }
                }
            }
        }
    }
    s
}
