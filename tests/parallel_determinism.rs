//! Parallel-execution determinism suite: the contract of
//! `docs/parallel-vgpu.md`, enforced.
//!
//! Every proxy, at every worker-thread count in {1, 2, 4, 8}, must
//! produce an outcome **bit-identical** to the sequential (1-thread)
//! baseline — the entire global-memory image, every `KernelMetrics`
//! field (cycles, waves, counters), and, under injected faults, the
//! identical typed trap (kind, team, thread, function). 25 seeded fault
//! campaigns per proxy make the trap-path comparison meaningful: traps
//! must resolve by lowest team index, never by wall-clock race.

use nzomp::BuildConfig;
use nzomp_integration::{run_proxy_outcome, ProxyOutcome};
use nzomp_proxies::all_proxies;

const WORKER_COUNTS: [usize; 3] = [2, 4, 8];
const CFG: BuildConfig = BuildConfig::NewRtNoAssumptions;

fn assert_same(name: &str, detail: &str, base: &ProxyOutcome, got: &ProxyOutcome) {
    assert_eq!(
        base.result, got.result,
        "{name} {detail}: metrics/trap diverge from sequential baseline"
    );
    assert_eq!(
        base.out_bits, got.out_bits,
        "{name} {detail}: output buffer bits diverge"
    );
    assert!(
        base.global == got.global,
        "{name} {detail}: global-memory image diverges ({} vs {} bytes, first diff at {:?})",
        base.global.len(),
        got.global.len(),
        base.global
            .iter()
            .zip(&got.global)
            .position(|(a, b)| a != b)
    );
}

/// Clean runs: every proxy agrees bit for bit at every worker count.
#[test]
fn clean_runs_identical_across_worker_counts() {
    for p in all_proxies() {
        let base = run_proxy_outcome(p.as_ref(), CFG, 1, None);
        assert!(base.result.is_ok(), "{}: clean baseline trapped", p.name());
        for &workers in &WORKER_COUNTS {
            let got = run_proxy_outcome(p.as_ref(), CFG, workers, None);
            assert_same(p.name(), &format!("@{workers} threads"), &base, &got);
        }
    }
}

/// Faulted runs: 25 seeded campaigns per proxy. The injected trap (or the
/// surviving output) is identical at every worker count — first-trap-wins
/// resolves by lowest team index, not by which host thread finished first.
#[test]
fn faulted_runs_identical_across_worker_counts() {
    let mut trapped = 0usize;
    for p in all_proxies() {
        for seed in 1..=25u64 {
            let base = run_proxy_outcome(p.as_ref(), CFG, 1, Some(seed));
            if base.result.is_err() {
                trapped += 1;
            }
            for &workers in &WORKER_COUNTS {
                let got = run_proxy_outcome(p.as_ref(), CFG, workers, Some(seed));
                assert_same(p.name(), &format!("seed {seed} @{workers} threads"), &base, &got);
            }
        }
    }
    assert!(
        trapped > 0,
        "no fault campaign trapped — the comparison is vacuous"
    );
}

/// Clean metrics are also identical across *repeated* launches at high
/// worker counts (no hidden accumulation or work-stealing jitter).
#[test]
fn repeated_parallel_launches_are_stable() {
    let p = &all_proxies()[0];
    let first = run_proxy_outcome(p.as_ref(), CFG, 8, None);
    for _ in 0..3 {
        let again = run_proxy_outcome(p.as_ref(), CFG, 8, None);
        assert_same(p.name(), "repeat @8 threads", &first, &again);
    }
}
