//! Differential execution harness: the same computation run under
//! legacy-vs-modern runtime, SPMD-vs-generic lowering, debug-vs-release,
//! and direct-`Device`-vs-`nzomp-host` offload must produce
//! **bit-identical** outputs on clean runs; under injected faults every
//! outcome is a typed [`ExecError`] (never a process panic) and is exactly
//! reproducible per seed — on both execution paths.

use nzomp::pipeline::compile_with;
use nzomp::BuildConfig;
use nzomp_front::RuntimeFlavor;
use nzomp_integration::{run_proxy_host_outcome, run_proxy_outcome};
use nzomp_ir::{Operand, Ty};
use nzomp_proxies::{
    all_proxies, build_for_config, compile_for_config, quick_device, HostShape, Proxy,
};
use nzomp_rt::abi;
use nzomp_vgpu::{Device, DeviceConfig, ExecError, FaultPlan};

/// Launch the proxy under `cfg` and return the output buffer as raw bits
/// (NaN-safe comparison). `None` for the paper's "n/a" cells.
fn run_clean(p: &dyn Proxy, cfg: BuildConfig) -> Option<Vec<u64>> {
    if cfg == BuildConfig::NewRt && !p.supports_oversubscription() {
        return None;
    }
    let outcome = run_proxy_outcome(p, cfg, 1, None);
    outcome.result.unwrap();
    outcome.out_bits
}

/// Legacy-vs-modern runtime (and the native CUDA baseline): all five
/// proxies agree bitwise across every build configuration.
#[test]
fn clean_runs_bit_identical_across_runtimes() {
    use BuildConfig::*;
    for p in all_proxies() {
        let base = run_clean(p.as_ref(), OldRtNightly).unwrap();
        for cfg in [NewRtNightly, NewRtNoAssumptions, NewRt, Cuda] {
            if let Some(bits) = run_clean(p.as_ref(), cfg) {
                assert_eq!(bits, base, "{} output differs under {:?}", p.name(), cfg);
            }
        }
    }
}

/// Debug-vs-release: assertions + tracing + checked assumptions observe,
/// they never perturb results — on every proxy.
#[test]
fn clean_runs_bit_identical_debug_vs_release() {
    let cfg = BuildConfig::NewRtNoAssumptions;
    for p in all_proxies() {
        let release = run_clean(p.as_ref(), cfg).unwrap();

        let rt_cfg = nzomp_rt::RtConfig {
            debug_kind: abi::DEBUG_ASSERTIONS | abi::DEBUG_FUNCTION_TRACING,
            ..cfg.rt_config()
        };
        let out =
            compile_with(build_for_config(p.as_ref(), cfg), cfg, rt_cfg, cfg.pass_options())
                .unwrap();
        let dev_cfg = DeviceConfig {
            check_assumes: true,
            ..DeviceConfig::default()
        };
        let mut dev = Device::load(out.module, dev_cfg);
        let prep = p.prepare(&mut dev);
        dev.launch(p.kernel_name(), prep.launch, &prep.args).unwrap();
        let debug: Vec<u64> = dev
            .read_f64(prep.out_ptr, prep.expected.len())
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(debug, release, "{}: debug build perturbed results", p.name());
    }
}

/// SPMD-vs-generic lowering of the same `out[i] = 2*a[i] + i` loop agree
/// bitwise after the full pipeline.
#[test]
fn spmd_and_generic_lowerings_agree() {
    let n = 64usize;
    let input: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 7.0).collect();
    let body = |_m: &mut nzomp_ir::Module,
                b: &mut nzomp_ir::FuncBuilder,
                iv: Operand,
                p: &[Operand]| {
        let pa = b.gep(p[0], iv, 8);
        let x = b.load(Ty::F64, pa);
        let two_x = b.fadd(x, x);
        let i_f = b.si_to_fp(iv);
        let v = b.fadd(two_x, i_f);
        let po = b.gep(p[1], iv, 8);
        b.store(Ty::F64, po, v);
    };

    let run = |m: nzomp_ir::Module| -> Vec<u64> {
        let out = nzomp::compile(m, BuildConfig::NewRtNoAssumptions).unwrap();
        let mut dev = Device::load(out.module, quick_device());
        let pa = dev.alloc_f64(&input);
        let po = dev.alloc(8 * n as u64);
        use nzomp_vgpu::RtVal;
        dev.launch(
            "k",
            nzomp_vgpu::device::Launch::new(2, 8),
            &[RtVal::P(pa), RtVal::P(po), RtVal::I(n as i64)],
        )
        .unwrap();
        dev.read_f64(po, n)
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    };

    let mut spmd = nzomp_ir::Module::new("diff_spmd");
    nzomp_front::spmd_kernel_for(
        &mut spmd,
        RuntimeFlavor::Modern,
        "k",
        &[Ty::Ptr, Ty::Ptr, Ty::I64],
        |_b, p| p[2],
        body,
    );

    let mut generic = nzomp_ir::Module::new("diff_generic");
    nzomp_front::generic_kernel(
        &mut generic,
        RuntimeFlavor::Modern,
        "k",
        &[Ty::Ptr, Ty::Ptr, Ty::I64],
        |ctx, p| {
            let (a, out, n) = (p[0], p[1], p[2]);
            ctx.parallel_for(&[(a, Ty::Ptr), (out, Ty::Ptr)], n, |m, b, iv, caps| {
                body(m, b, iv, &[caps[0], caps[1]]);
            });
        },
    );

    assert_eq!(run(spmd), run(generic), "SPMD and generic lowerings disagree");
}

/// One faulted run, returning either the output bits or the typed error.
fn run_faulted(p: &dyn Proxy, seed: u64) -> Result<Vec<u64>, ExecError> {
    let outcome = run_proxy_outcome(p, BuildConfig::NewRtNoAssumptions, 1, Some(seed));
    outcome.result?;
    Ok(outcome.out_bits.unwrap_or_default())
}

/// Faulted runs are deterministic: the same seed on the same proxy yields
/// the same outcome — same trap (kind, team, thread, func) or same output.
#[test]
fn faulted_runs_reproduce_per_seed() {
    let proxies = all_proxies();
    let mut trapped = 0usize;
    for seed in 1..=10u64 {
        for p in &proxies {
            let first = run_faulted(p.as_ref(), seed);
            let second = run_faulted(p.as_ref(), seed);
            assert_eq!(
                first,
                second,
                "{} seed {} not reproducible",
                p.name(),
                seed
            );
            if first.is_err() {
                trapped += 1;
            }
        }
    }
    // The seed derivation is biased toward early steps, so a healthy
    // fraction of the 50 campaigns must actually trap.
    assert!(trapped > 0, "no seed produced a trap — injection is inert");
}

/// The offload shapes the host runtime must prove observationally
/// equivalent: a single stream, four streams under a non-trivial drain
/// seed, and a two-device fleet.
fn host_shapes() -> [HostShape; 3] {
    [
        HostShape::default(),
        HostShape {
            streams: 4,
            drain_seed: 0xdead_beef,
            ..HostShape::default()
        },
        HostShape {
            devices: 2,
            ..HostShape::default()
        },
    ]
}

/// Every proxy routed through the `nzomp-host` runtime — present table,
/// async streams, scheduler — observes *exactly* what the direct
/// `Device` path observes: same metrics, same output bits, same global
/// memory image, byte for byte, under every offload shape.
#[test]
fn host_runtime_bit_identical_to_direct_device_path() {
    let cfg = BuildConfig::NewRtNoAssumptions;
    for p in all_proxies() {
        let direct = run_proxy_outcome(p.as_ref(), cfg, 1, None);
        assert!(direct.result.is_ok(), "{}: direct run trapped", p.name());
        for shape in host_shapes() {
            let host = run_proxy_host_outcome(p.as_ref(), cfg, 1, None, &shape);
            assert_eq!(
                host,
                direct,
                "{} diverges through the host runtime under {:?}",
                p.name(),
                shape
            );
        }
    }
}

/// Fault campaigns through the host runtime: with the same seeded plan
/// armed, the offload path reaches the exact same outcome as the direct
/// path — the same typed trap (kind, team, thread, func) with the same
/// partially-mutated global image, or the same clean bits. 5 proxies x 6
/// seeds = 30 campaigns, and a healthy fraction must actually trap.
#[test]
fn host_runtime_fault_campaigns_match_direct_path() {
    let cfg = BuildConfig::NewRtNoAssumptions;
    let proxies = all_proxies();
    let shape = HostShape::default();
    let mut campaigns = 0usize;
    let mut trapped = 0usize;
    for seed in 1..=6u64 {
        for p in &proxies {
            let direct = run_proxy_outcome(p.as_ref(), cfg, 1, Some(seed));
            let host = run_proxy_host_outcome(p.as_ref(), cfg, 1, Some(seed), &shape);
            assert_eq!(
                host,
                direct,
                "{} seed {}: host path diverges from direct path under faults",
                p.name(),
                seed
            );
            campaigns += 1;
            if host.result.is_err() {
                trapped += 1;
            }
        }
    }
    assert!(campaigns >= 25, "only {campaigns} fault campaigns ran");
    assert!(trapped > 0, "no campaign trapped — injection is inert");
}

/// An armed-then-cleared fault plan leaves no residue: the device returns
/// to clean, correct execution.
#[test]
fn clearing_fault_plan_restores_clean_execution() {
    let p = &all_proxies()[0];
    let cfg = BuildConfig::NewRtNoAssumptions;
    let out = compile_for_config(p.as_ref(), cfg).unwrap();
    let mut dev = Device::load(out.module, quick_device());
    let prep = p.prepare(&mut dev);

    dev.set_fault_plan(FaultPlan::from_seed(3, prep.launch.teams, prep.launch.threads_per_team));
    let _ = dev.launch(p.kernel_name(), prep.launch, &prep.args);

    dev.clear_fault_plan();
    dev.launch(p.kernel_name(), prep.launch, &prep.args).unwrap();
    nzomp_proxies::verify_output(&dev, &prep).unwrap();
}
