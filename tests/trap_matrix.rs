//! Table-driven coverage of the full trap taxonomy: one minimal kernel per
//! [`TrapKind`] variant, asserting the exact [`ExecError`] fields (kind,
//! team, thread, func) and the exact `Display` rendering. This pins both
//! the error semantics and the user-facing strings.

use nzomp_ir::{ExecMode, FuncBuilder, Function, Global, Init, Module, Operand, Space, Ty};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{
    Device, DeviceConfig, DeviceFaultKind, DeviceFaultSite, ExecError, FaultPlan, RtVal, TrapKind,
};

struct Case {
    name: &'static str,
    /// Builds a loaded device, the launch geometry, and the kernel args.
    setup: fn() -> (Device, Launch, Vec<RtVal>),
    expect: ExecError,
    display: &'static str,
}

fn kernel_module(name: &'static str, params: Vec<Ty>, body: impl FnOnce(&mut FuncBuilder)) -> Module {
    let mut m = Module::new(name);
    let mut b = FuncBuilder::new(name, params, None);
    body(&mut b);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    nzomp_ir::verify_module(&m).unwrap();
    m
}

fn default_dev(m: Module) -> Device {
    Device::load(m, DeviceConfig::default())
}

fn out_of_bounds() -> (Device, Launch, Vec<RtVal>) {
    let m = kernel_module("oob", vec![Ty::Ptr], |b| {
        let p = b.param(0);
        let far = b.gep(p, Operand::i64(1 << 26), 8);
        let _ = b.load(Ty::I64, far);
    });
    let mut dev = default_dev(m);
    let p = dev.alloc(8);
    (dev, Launch::new(1, 1), vec![RtVal::P(p)])
}

fn null_deref() -> (Device, Launch, Vec<RtVal>) {
    let m = kernel_module("null", vec![], |b| {
        let _ = b.load(Ty::I64, Operand::ConstI(0, Ty::Ptr));
    });
    (default_dev(m), Launch::new(1, 1), vec![])
}

fn cross_thread_local() -> (Device, Launch, Vec<RtVal>) {
    // Thread 0 publishes its local-stack pointer through shared memory;
    // thread 1 dereferences it — the globalization hazard of paper §IV-A2.
    let mut m = Module::new("xlocal");
    m.add_global(Global::new("slot", Space::Shared, 8, Init::Zero));
    let g = m.find_global("slot").unwrap();
    let mut b = FuncBuilder::new("xlocal", vec![], None);
    let tid = b.thread_id();
    let local = b.alloca(8);
    b.store(Ty::I64, local, tid);
    let is0 = b.icmp_eq(tid, Operand::i64(0));
    let publish = b.new_block();
    let join = b.new_block();
    b.cond_br(is0, publish, join);
    b.switch_to(publish);
    b.store(Ty::Ptr, Operand::Global(g), local);
    b.br(join);
    b.switch_to(join);
    b.barrier();
    let p = b.load(Ty::Ptr, Operand::Global(g));
    let _ = b.load(Ty::I64, p);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    nzomp_ir::verify_module(&m).unwrap();
    (default_dev(m), Launch::new(1, 2), vec![])
}

fn bad_indirect_call() -> (Device, Launch, Vec<RtVal>) {
    // Indirect call through a pointer into global *data* memory.
    let m = kernel_module("badcall", vec![Ty::Ptr], |b| {
        let p = b.param(0);
        let _ = b.call(p, vec![], None);
    });
    let mut dev = default_dev(m);
    let p = dev.alloc(8);
    (dev, Launch::new(1, 1), vec![RtVal::P(p)])
}

fn unresolved_call() -> (Device, Launch, Vec<RtVal>) {
    let mut m = Module::new("unres");
    let ext = m.add_function(Function::declaration("ext", vec![], None));
    let mut b = FuncBuilder::new("unres", vec![], None);
    let _ = b.call(Operand::Func(ext), vec![], None);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    nzomp_ir::verify_module(&m).unwrap();
    (default_dev(m), Launch::new(1, 1), vec![])
}

fn assume_violated() -> (Device, Launch, Vec<RtVal>) {
    let m = kernel_module("asm", vec![Ty::I64], |b| {
        let x = b.param(0);
        let c = b.icmp_eq(x, Operand::i64(42));
        b.assume(c);
    });
    // Debug execution: assumptions are checked (paper §III-G).
    let dev = Device::load(
        m,
        DeviceConfig {
            check_assumes: true,
            ..DeviceConfig::default()
        },
    );
    (dev, Launch::new(1, 1), vec![RtVal::I(7)])
}

fn assert_fail() -> (Device, Launch, Vec<RtVal>) {
    let m = kernel_module("af", vec![], |b| {
        b.assert_fail();
    });
    (default_dev(m), Launch::new(1, 1), vec![])
}

fn barrier_deadlock() -> (Device, Launch, Vec<RtVal>) {
    // Only thread 0 reaches an aligned barrier; the others exit.
    let mut m = Module::new("dead");
    let mut b = FuncBuilder::new("dead", vec![], None);
    let tid = b.thread_id();
    let is0 = b.icmp_eq(tid, Operand::i64(0));
    let wait = b.new_block();
    let done = b.new_block();
    b.cond_br(is0, wait, done);
    b.switch_to(wait);
    b.aligned_barrier();
    b.br(done);
    b.switch_to(done);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    nzomp_ir::verify_module(&m).unwrap();
    (default_dev(m), Launch::new(1, 2), vec![])
}

fn fuel_exhausted() -> (Device, Launch, Vec<RtVal>) {
    // while (true) {} under a tiny step budget.
    let mut m = Module::new("spin");
    let mut b = FuncBuilder::new("spin", vec![], None);
    let lo = b.new_block();
    b.br(lo);
    b.switch_to(lo);
    b.br(lo);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    nzomp_ir::verify_module(&m).unwrap();
    let dev = Device::load(
        m,
        DeviceConfig {
            max_steps: 1_000,
            ..DeviceConfig::default()
        },
    );
    (dev, Launch::new(1, 1), vec![])
}

fn div_by_zero() -> (Device, Launch, Vec<RtVal>) {
    let m = kernel_module("div", vec![Ty::I64], |b| {
        let d = b.param(0);
        let _ = b.sdiv(Operand::i64(1), d);
    });
    (default_dev(m), Launch::new(1, 1), vec![RtVal::I(0)])
}

fn out_of_memory() -> (Device, Launch, Vec<RtVal>) {
    let m = kernel_module("oom", vec![], |b| {
        let _ = b.malloc(Operand::i64(i64::MAX / 2));
    });
    (default_dev(m), Launch::new(1, 1), vec![])
}

fn bad_free() -> (Device, Launch, Vec<RtVal>) {
    // free() of a host allocation the device allocator never handed out.
    let m = kernel_module("bf", vec![Ty::Ptr], |b| {
        let p = b.param(0);
        b.free(p);
    });
    let mut dev = default_dev(m);
    dev.alloc(8); // occupy offset 0 so the arg is a live host pointer
    let p = dev.alloc(8);
    (dev, Launch::new(1, 1), vec![RtVal::P(p)])
}

fn bad_launch() -> (Device, Launch, Vec<RtVal>) {
    let m = kernel_module("bl", vec![Ty::I64], |b| {
        let _ = b.param(0);
    });
    // One i64 parameter, zero args passed.
    (default_dev(m), Launch::new(1, 1), vec![])
}

fn malformed_ir() -> (Device, Launch, Vec<RtVal>) {
    // A phi with no incoming for the taken edge. `nzomp::compile` rejects
    // this at link time; loading the module straight onto the device must
    // degrade to a typed trap, never a process abort.
    let mut m = Module::new("mal");
    let mut b = FuncBuilder::new("mal", vec![], None);
    let tid = b.thread_id(); // %0
    let never = b.icmp_eq(tid, Operand::i64(-1)); // %1
    let t = b.new_block(); // bb1
    let join = b.new_block(); // bb2
    b.cond_br(never, t, join);
    b.switch_to(t);
    b.br(join);
    b.switch_to(join);
    // %2: incoming only for bb1; entry bb0 takes the false edge directly.
    let _ = b.phi(Ty::I64, vec![(t, Operand::i64(1))]);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    // The verifier refuses this module...
    assert!(nzomp_ir::verify_module(&m).is_err());
    // ...but the device still loads whatever it is given.
    (default_dev(m), Launch::new(1, 1), vec![])
}

fn device_fault_plan(sites: &[(u64, DeviceFaultKind)]) -> FaultPlan {
    FaultPlan {
        device_sites: sites
            .iter()
            .map(|&(after_ops, kind)| DeviceFaultSite { after_ops, kind })
            .collect(),
        ..FaultPlan::default()
    }
}

fn device_lost() -> (Device, Launch, Vec<RtVal>) {
    let m = kernel_module("lost", vec![], |_| {});
    let mut dev = default_dev(m);
    dev.set_fault_plan(device_fault_plan(&[(0, DeviceFaultKind::Lost)]));
    (dev, Launch::new(1, 1), vec![])
}

fn stalled() -> (Device, Launch, Vec<RtVal>) {
    let m = kernel_module("stall", vec![], |_| {});
    // Pin the step budget so the Display's fuel figure is exact.
    let mut dev = Device::load(
        m,
        DeviceConfig {
            max_steps: 1_000,
            ..DeviceConfig::default()
        },
    );
    dev.set_fault_plan(device_fault_plan(&[(0, DeviceFaultKind::StallLaunch)]));
    (dev, Launch::new(1, 1), vec![])
}

#[test]
fn every_trap_kind_has_exact_error_and_display() {
    let cases = vec![
        Case {
            name: "out_of_bounds",
            setup: out_of_bounds,
            expect: ExecError {
                kind: TrapKind::OutOfBounds,
                team: 0,
                thread: 0,
                func: "oob".into(),
            },
            display: "trap in team 0 thread 0 (@oob): out-of-bounds memory access",
        },
        Case {
            name: "null_deref",
            setup: null_deref,
            expect: ExecError {
                kind: TrapKind::NullDeref,
                team: 0,
                thread: 0,
                func: "null".into(),
            },
            display: "trap in team 0 thread 0 (@null): null pointer dereference",
        },
        Case {
            name: "cross_thread_local",
            setup: cross_thread_local,
            expect: ExecError {
                kind: TrapKind::CrossThreadLocalAccess {
                    owner: 0,
                    accessor: 1,
                },
                team: 0,
                thread: 1,
                func: "xlocal".into(),
            },
            display:
                "trap in team 0 thread 1 (@xlocal): thread 1 dereferenced local memory of thread 0",
        },
        Case {
            name: "bad_indirect_call",
            setup: bad_indirect_call,
            expect: ExecError {
                kind: TrapKind::BadIndirectCall,
                team: 0,
                thread: 0,
                func: "badcall".into(),
            },
            display:
                "trap in team 0 thread 0 (@badcall): indirect call through non-function pointer",
        },
        Case {
            name: "unresolved_call",
            setup: unresolved_call,
            expect: ExecError {
                kind: TrapKind::UnresolvedCall("ext".into()),
                team: 0,
                thread: 0,
                func: "unres".into(),
            },
            display: "trap in team 0 thread 0 (@unres): call of unresolved declaration @ext",
        },
        Case {
            name: "assume_violated",
            setup: assume_violated,
            expect: ExecError {
                kind: TrapKind::AssumeViolated,
                team: 0,
                thread: 0,
                func: "asm".into(),
            },
            display: "trap in team 0 thread 0 (@asm): assume() operand was false",
        },
        Case {
            name: "assert_fail",
            setup: assert_fail,
            expect: ExecError {
                kind: TrapKind::AssertFail,
                team: 0,
                thread: 0,
                func: "af".into(),
            },
            display: "trap in team 0 thread 0 (@af): device assertion failed",
        },
        Case {
            name: "barrier_deadlock",
            setup: barrier_deadlock,
            expect: ExecError {
                kind: TrapKind::BarrierDeadlock,
                team: 0,
                thread: 0,
                func: "dead".into(),
            },
            display: "trap in team 0 thread 0 (@dead): barrier deadlock",
        },
        Case {
            name: "fuel_exhausted",
            setup: fuel_exhausted,
            expect: ExecError {
                kind: TrapKind::FuelExhausted,
                team: 0,
                thread: 0,
                func: "spin".into(),
            },
            display: "trap in team 0 thread 0 (@spin): step budget exhausted",
        },
        Case {
            name: "div_by_zero",
            setup: div_by_zero,
            expect: ExecError {
                kind: TrapKind::DivByZero,
                team: 0,
                thread: 0,
                func: "div".into(),
            },
            display: "trap in team 0 thread 0 (@div): integer division by zero",
        },
        Case {
            name: "out_of_memory",
            setup: out_of_memory,
            expect: ExecError {
                kind: TrapKind::OutOfMemory,
                team: 0,
                thread: 0,
                func: "oom".into(),
            },
            display: "trap in team 0 thread 0 (@oom): device heap exhausted",
        },
        Case {
            name: "bad_free",
            setup: bad_free,
            expect: ExecError {
                kind: TrapKind::BadFree,
                team: 0,
                thread: 0,
                func: "bf".into(),
            },
            display: "trap in team 0 thread 0 (@bf): free() of unknown pointer",
        },
        Case {
            name: "bad_launch",
            setup: bad_launch,
            expect: ExecError {
                kind: TrapKind::BadLaunch("kernel @bl takes 1 args, got 0".into()),
                team: 0,
                thread: 0,
                func: "bl".into(),
            },
            display: "trap in team 0 thread 0 (@bl): bad launch: kernel @bl takes 1 args, got 0",
        },
        Case {
            name: "malformed_ir",
            setup: malformed_ir,
            expect: ExecError {
                kind: TrapKind::MalformedIr(
                    "phi %2 in @mal bb2 missing incoming for bb0".into(),
                ),
                team: 0,
                thread: 0,
                func: "mal".into(),
            },
            display: "trap in team 0 thread 0 (@mal): malformed IR reached the interpreter: \
                      phi %2 in @mal bb2 missing incoming for bb0",
        },
        Case {
            name: "device_lost",
            setup: device_lost,
            expect: ExecError {
                kind: TrapKind::DeviceLost,
                team: 0,
                thread: 0,
                func: "lost".into(),
            },
            display: "trap in team 0 thread 0 (@lost): device lost",
        },
        Case {
            name: "stalled",
            setup: stalled,
            expect: ExecError {
                kind: TrapKind::Stalled { fuel: 1_000 },
                team: 0,
                thread: 0,
                func: "stall".into(),
            },
            display: "trap in team 0 thread 0 (@stall): kernel stalled: watchdog fired after \
                      1000 steps without completion",
        },
    ];

    for case in cases {
        let (mut dev, launch, args) = (case.setup)();
        let err = dev
            .launch(case.expect.func.as_str(), launch, &args)
            .expect_err(case.name);
        assert_eq!(err, case.expect, "wrong ExecError for case {}", case.name);
        assert_eq!(
            err.to_string(),
            case.display,
            "wrong Display for case {}",
            case.name
        );
    }
}

/// Launching a kernel that does not exist is also a typed error.
#[test]
fn missing_kernel_is_bad_launch() {
    let m = kernel_module("k", vec![], |_| {});
    let mut dev = default_dev(m);
    let err = dev.launch("nope", Launch::new(1, 1), &[]).unwrap_err();
    assert_eq!(err.kind, TrapKind::BadLaunch("no kernel @nope".into()));
    assert_eq!(
        err.to_string(),
        "trap in team 0 thread 0 (@nope): bad launch: no kernel @nope"
    );
}

/// Host-side memcpys report typed out-of-bounds errors (never panics),
/// with a synthetic `<host ...>` function name in the Display.
#[test]
fn host_memcpy_errors_are_typed() {
    let m = kernel_module("k", vec![], |_| {});
    let mut dev = default_dev(m);
    let p = dev.alloc(16);
    // In-bounds round trip works.
    dev.write_f64(p, &[1.5, -2.5]).unwrap();
    assert_eq!(dev.read_f64(p, 2).unwrap(), vec![1.5, -2.5]);
    // Out-of-bounds read and write both produce typed errors.
    let far = p.add_bytes(1 << 30);
    let r = dev.read_f64(far, 1).unwrap_err();
    assert_eq!(r.kind, TrapKind::OutOfBounds);
    assert_eq!(
        r.to_string(),
        "trap in team 0 thread 0 (@<host read>): out-of-bounds memory access"
    );
    let w = dev.write_i64(far, &[1]).unwrap_err();
    assert_eq!(w.kind, TrapKind::OutOfBounds);
    assert_eq!(
        w.to_string(),
        "trap in team 0 thread 0 (@<host write>): out-of-bounds memory access"
    );
    let w32 = dev.write_i32(far, &[1]).unwrap_err();
    assert_eq!(w32.kind, TrapKind::OutOfBounds);
    let wp = dev.write_ptr(far, p).unwrap_err();
    assert_eq!(wp.kind, TrapKind::OutOfBounds);
    let r64 = dev.read_i64(far, 1).unwrap_err();
    assert_eq!(r64.kind, TrapKind::OutOfBounds);
    let r32 = dev.read_i32(far, 1).unwrap_err();
    assert_eq!(r32.kind, TrapKind::OutOfBounds);
}

/// A transient memcpy fault is typed, carries the `<host ...>` context,
/// and — being one-shot — clears on the immediate retry with device
/// memory untouched.
#[test]
fn memcpy_fault_is_typed_and_one_shot() {
    let m = kernel_module("k", vec![], |_| {});
    let mut dev = default_dev(m);
    let p = dev.alloc(16);
    // Op clock: write(0) faults, read(1) verifies, write(2) retries,
    // read(3) faults, read(4) verifies.
    dev.set_fault_plan(device_fault_plan(&[
        (0, DeviceFaultKind::MemcpyFail),
        (3, DeviceFaultKind::MemcpyFail),
    ]));
    // Write: first attempt faults, retry lands.
    let e = dev.write_bytes(p, &[7u8; 16]).unwrap_err();
    assert_eq!(e.kind, TrapKind::MemcpyFault);
    assert_eq!(
        e.to_string(),
        "trap in team 0 thread 0 (@<host write>): transient memcpy failure"
    );
    assert_eq!(
        dev.read_bytes(p, 16).unwrap(),
        vec![0u8; 16],
        "the faulted transfer left device memory untouched"
    );
    dev.write_bytes(p, &[7u8; 16]).unwrap();
    // Read: the second site fires on the read path with its own context.
    let e = dev.read_bytes(p, 16).unwrap_err();
    assert_eq!(e.kind, TrapKind::MemcpyFault);
    assert_eq!(
        e.to_string(),
        "trap in team 0 thread 0 (@<host read>): transient memcpy failure"
    );
    assert_eq!(dev.read_bytes(p, 16).unwrap(), vec![7u8; 16]);
}

/// Device loss latches: every host-visible operation after the fault
/// returns `DeviceLost` until a plan is re-armed (the test hook that
/// makes seeded campaigns replayable — production replaces the device).
#[test]
fn device_loss_latches_until_replan() {
    let m = kernel_module("k", vec![], |_| {});
    let mut dev = default_dev(m);
    let p = dev.alloc(8);
    dev.set_fault_plan(device_fault_plan(&[(0, DeviceFaultKind::Lost)]));
    assert!(!dev.is_lost());
    assert_eq!(dev.write_bytes(p, &[1; 8]).unwrap_err().kind, TrapKind::DeviceLost);
    assert!(dev.is_lost());
    assert_eq!(dev.read_bytes(p, 8).unwrap_err().kind, TrapKind::DeviceLost);
    assert_eq!(
        dev.launch("k", Launch::new(1, 1), &[]).unwrap_err().kind,
        TrapKind::DeviceLost
    );
    // Re-arming resets the device-fault clock and resurrects the device.
    dev.set_fault_plan(FaultPlan::default());
    assert!(!dev.is_lost());
    dev.write_bytes(p, &[1; 8]).unwrap();
    dev.launch("k", Launch::new(1, 1), &[]).unwrap();
}

/// Seeded device campaigns reproduce: the same seed produces the same
/// typed error at the same operation index on a fresh device — the PR 1
/// matrix discipline extended to device-scoped faults.
#[test]
fn device_campaigns_reproduce_from_seed() {
    let m = kernel_module("k", vec![], |_| {});
    // One run = a fixed op sequence; record each op's outcome kind.
    let trace = |seed: u64| -> Vec<String> {
        let mut dev = Device::load(m.clone(), DeviceConfig::default());
        let p = dev.alloc(32);
        dev.set_fault_plan(FaultPlan::device_campaign(seed));
        let mut t = Vec::new();
        for i in 0..6 {
            let r: Result<(), ExecError> = match i % 3 {
                0 => dev.write_bytes(p, &[i as u8; 32]).map(|_| ()),
                1 => dev.launch("k", Launch::new(1, 1), &[]).map(|_| ()),
                _ => dev.read_bytes(p, 32).map(|_| ()),
            };
            t.push(match r {
                Ok(()) => "ok".to_string(),
                Err(e) => e.to_string(),
            });
        }
        t
    };
    let mut faulted = 0;
    for seed in 0..50u64 {
        let a = trace(seed);
        assert_eq!(a, trace(seed), "seed {seed} diverged across runs");
        if a.iter().any(|s| s != "ok") {
            faulted += 1;
        }
    }
    assert!(faulted > 25, "campaigns barely fire ({faulted}/50)");
}

/// The typed `CompileError` surfaces malformed modules at link time with a
/// stage-qualified Display (tentpole: no `expect("runtime links")` left).
#[test]
fn compile_rejects_malformed_module_with_typed_error() {
    use nzomp::BuildConfig;
    // Same malformed phi as above, but routed through the pipeline.
    let mut m = Module::new("mal");
    let mut b = FuncBuilder::new("mal", vec![], None);
    let tid = b.thread_id();
    let never = b.icmp_eq(tid, Operand::i64(-1));
    let t = b.new_block();
    let join = b.new_block();
    b.cond_br(never, t, join);
    b.switch_to(t);
    b.br(join);
    b.switch_to(join);
    let _ = b.phi(Ty::I64, vec![(t, Operand::i64(1))]);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);

    let Err(err) = nzomp::compile(m, BuildConfig::NewRtNoAssumptions) else {
        panic!("malformed module compiled successfully");
    };
    let msg = err.to_string();
    assert!(
        msg.contains("failed verification after link") && msg.contains("missing incoming"),
        "unexpected CompileError display: {msg}"
    );
}
