//! Chaos-recovery differential suite: ≥100 seeded device-fault campaigns
//! across every proxy × fleet size × scheduling policy, each asserting
//! that a *recovered* run — transient retries, watchdog trips, device
//! loss with journal-replay failover — ends bit-identical to the clean
//! run: same output bits, same kernel metrics, same sanitizer verdict,
//! same device global-memory image. Recovery must repair, never merely
//! approximate.

use nzomp::BuildConfig;
use nzomp_host::{Host, RecoveryPolicy, SchedPolicy, StreamId};
use nzomp_integration::{run_proxy_outcome, ProxyOutcome};
use nzomp_proxies::{all_proxies, build_for_config, quick_device, Proxy};
use nzomp_vgpu::FaultPlan;

/// Mix a device index into a campaign seed so every fleet member runs a
/// distinct (but reproducible) fault schedule.
fn device_seed(seed: u64, dev: usize) -> u64 {
    seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(dev as u64 + 1))
}

/// Run one proxy region through the host with recovery armed and a
/// seeded device-fault campaign on every fleet member. The sync *must*
/// succeed — recovery's whole claim — and the observation lens is the
/// same `ProxyOutcome` the clean differential uses.
fn run_recovered(
    p: &dyn Proxy,
    devices: usize,
    policy: SchedPolicy,
    seed: u64,
) -> (ProxyOutcome, nzomp_host::RecoveryMetrics) {
    let cfg = BuildConfig::NewRtNoAssumptions;
    let mut host = Host::new(quick_device(), devices);
    host.set_policy(policy);
    host.set_worker_threads(1);
    // Generous failover budget: a campaign may kill a replacement's
    // predecessor several times over (sites re-fire per plan, devices
    // don't — replacements are healthy).
    host.set_recovery(Some(RecoveryPolicy {
        max_failovers: 16,
        ..RecoveryPolicy::default()
    }));
    let img = host.load_image(build_for_config(p, cfg), cfg).unwrap();
    let hp = p.host_prepare();
    let out_arg = hp.out_arg;
    for dev in 0..devices {
        host.bind_image(dev, img).unwrap();
        host.set_device_faults(dev, FaultPlan::device_campaign(device_seed(seed, dev)))
            .unwrap();
    }
    let streams: Vec<StreamId> = vec![host.stream()];
    let region = host
        .enqueue_region(&streams, img, p.kernel_name(), hp.launch, hp.args)
        .unwrap();
    host.sync().unwrap_or_else(|e| {
        panic!(
            "recovery failed to absorb the campaign ({} devices={devices} \
             policy={policy:?} seed={seed}): {e}",
            p.name()
        )
    });
    let result = host
        .ticket_result(region.ticket)
        .unwrap()
        .expect("launch op never executed")
        .clone();
    let out_bits = result.is_ok().then(|| {
        let buf = region
            .bufs
            .get(out_arg)
            .copied()
            .flatten()
            .expect("output argument is not a buffer");
        host.buf_bits(buf).unwrap()
    });
    let dev = host.device(region.device).expect("region device is loaded");
    let outcome = ProxyOutcome {
        result,
        out_bits,
        global: dev.global_bytes().to_vec(),
        san_counts: dev.sanitizer_counts(),
        san_reports: dev
            .sanitizer_reports()
            .iter()
            .map(|r| r.to_string())
            .collect(),
    };
    (outcome, host.recovery_metrics().clone())
}

/// The ≥100-campaign matrix: 5 proxies × {1, 2, 4} devices ×
/// {RoundRobin, LeastLoaded} × 4 seeds = 120 campaigns, every one
/// recovered to the clean run's exact observation.
#[test]
fn chaos_campaigns_recover_bit_identically() {
    let cfg = BuildConfig::NewRtNoAssumptions;
    let mut campaigns = 0usize;
    let mut exercised = 0usize;
    let mut failovers_total = 0u64;
    let mut retries_total = 0u64;
    for p in all_proxies() {
        // The clean reference: the direct device path — what PR 5 proved
        // the host path matches, and what recovery must restore.
        let clean = run_proxy_outcome(p.as_ref(), cfg, 1, None);
        assert!(clean.result.is_ok(), "{}: clean run must succeed", p.name());
        for devices in [1usize, 2, 4] {
            for policy in [SchedPolicy::RoundRobin, SchedPolicy::LeastLoaded] {
                for seed in [11u64, 23, 47, 91] {
                    let (got, metrics) = run_recovered(p.as_ref(), devices, policy, seed);
                    assert_eq!(
                        got,
                        clean,
                        "{} devices={devices} policy={policy:?} seed={seed}: \
                         recovered outcome diverged from clean",
                        p.name()
                    );
                    campaigns += 1;
                    if metrics != nzomp_host::RecoveryMetrics::default() {
                        exercised += 1;
                    }
                    failovers_total += metrics.failovers;
                    retries_total += metrics.retries;
                }
            }
        }
    }
    assert!(campaigns >= 100, "matrix shrank to {campaigns} campaigns");
    // The matrix must actually exercise recovery, not vacuously pass on
    // campaigns whose sites never fire (single-region runs perform few
    // device ops, so some high-`after_ops` sites stay dormant).
    assert!(
        exercised * 2 >= campaigns,
        "recovery exercised in only {exercised}/{campaigns} campaigns"
    );
    assert!(failovers_total > 0, "no campaign forced a failover");
    assert!(retries_total > 0, "no campaign forced a transient retry");
}

/// Campaign determinism: the same seed produces the same recovery
/// metrics, not just the same outcome — retries, failovers, replays and
/// backoff are part of the reproducible record.
#[test]
fn chaos_campaigns_reproduce_their_recovery_metrics() {
    let p = all_proxies().remove(0);
    for seed in [11u64, 23, 47] {
        let (out_a, m_a) = run_recovered(p.as_ref(), 2, SchedPolicy::RoundRobin, seed);
        let (out_b, m_b) = run_recovered(p.as_ref(), 2, SchedPolicy::RoundRobin, seed);
        assert_eq!(out_a, out_b, "seed {seed}: outcome diverged");
        assert_eq!(m_a, m_b, "seed {seed}: recovery metrics diverged");
    }
}
