//! Debug-mode parity, failure injection, and optimization remarks
//! (the `-Rpass[-missed]=openmp-opt` diagnostics of paper §VII).

use nzomp::opt::RemarkKind;
use nzomp::pipeline::compile_with;
use nzomp::BuildConfig;
use nzomp_proxies::xsbench::XSBench;
use nzomp_proxies::{build_for_config, quick_device, verify_output, Proxy};
use nzomp_rt::abi;
use nzomp_vgpu::{Device, DeviceConfig};

/// Debug builds (assertions + tracing) produce bit-identical results to
/// release builds — the checks observe, they do not perturb.
#[test]
fn debug_builds_match_release_results() {
    let p = XSBench::small();
    let cfg = BuildConfig::NewRtNoAssumptions;

    let release = {
        let out = nzomp::compile(build_for_config(&p, cfg), cfg).unwrap();
        let mut dev = Device::load(out.module, quick_device());
        let prep = p.prepare(&mut dev);
        dev.launch(p.kernel_name(), prep.launch, &prep.args).unwrap();
        dev.read_f64(prep.out_ptr, prep.expected.len()).unwrap()
    };

    let debug = {
        let rt_cfg = nzomp_rt::RtConfig {
            debug_kind: abi::DEBUG_ASSERTIONS | abi::DEBUG_FUNCTION_TRACING,
            ..cfg.rt_config()
        };
        let out = compile_with(build_for_config(&p, cfg), cfg, rt_cfg, cfg.pass_options()).unwrap();
        let dev_cfg = DeviceConfig {
            check_assumes: true,
            ..DeviceConfig::default()
        };
        let mut dev = Device::load(out.module, dev_cfg);
        let prep = p.prepare(&mut dev);
        let metrics = dev
            .launch(p.kernel_name(), prep.launch, &prep.args)
            .expect("debug build runs with assumptions verified");
        verify_output(&dev, &prep).unwrap();
        // Debug keeps the runtime state (assumes are checked, not dropped).
        assert!(metrics.smem_bytes > 0, "debug build must keep state");
        dev.read_f64(prep.out_ptr, prep.expected.len()).unwrap()
    };

    assert_eq!(release, debug);
}

/// Debug builds cost more than release builds — and that cost vanishes in
/// release because the paths are *statically* dead (§III-G).
#[test]
fn debug_overhead_exists_and_release_is_free() {
    let p = XSBench::small();
    let cfg = BuildConfig::NewRtNoAssumptions;
    let run = |debug_kind: i64, check: bool| {
        let rt_cfg = nzomp_rt::RtConfig {
            debug_kind,
            ..cfg.rt_config()
        };
        let out = compile_with(build_for_config(&p, cfg), cfg, rt_cfg, cfg.pass_options()).unwrap();
        let dev_cfg = DeviceConfig {
            check_assumes: check,
            ..DeviceConfig::default()
        };
        let mut dev = Device::load(out.module, dev_cfg);
        let prep = p.prepare(&mut dev);
        dev.launch(p.kernel_name(), prep.launch, &prep.args)
            .unwrap()
            .cycles
    };
    let release = run(0, false);
    let debug = run(abi::DEBUG_ASSERTIONS | abi::DEBUG_FUNCTION_TRACING, true);
    assert!(debug > release, "debug {debug} !> release {release}");
}

/// State elimination reports what it did (passed remarks), and kernels that
/// defeat SPMDization report why (missed remarks) — §VII.
#[test]
fn remarks_report_passes_and_misses() {
    // Passed: XSBench under the full pipeline folds runtime state.
    let p = XSBench::small();
    let out = nzomp::compile(
        build_for_config(&p, BuildConfig::NewRtNoAssumptions),
        BuildConfig::NewRtNoAssumptions,
    )
    .unwrap();
    let passed = out.remarks.of(RemarkKind::Passed, "openmp-opt");
    assert!(
        passed.iter().any(|r| r.message.contains("folded load")),
        "expected fold remarks, got:\n{}",
        out.remarks
    );
    assert!(
        passed.iter().any(|r| r.message.contains("pruned")),
        "expected prune remark"
    );

    // Missed: a generic kernel with a side-effecting sequential region
    // cannot be SPMDized.
    let mut m = nzomp_ir::Module::new("stubborn");
    nzomp_front::generic_kernel(
        &mut m,
        nzomp_front::RuntimeFlavor::Modern,
        "stubborn",
        &[nzomp_ir::Ty::Ptr, nzomp_ir::Ty::I64],
        |ctx, p| {
            let out = p[0];
            let n = p[1];
            // Sequential store to *global* memory: must be guarded, so the
            // recompute-based SPMDization refuses.
            ctx.b().store(nzomp_ir::Ty::I64, out, nzomp_ir::Operand::i64(1));
            ctx.parallel_for(&[(out, nzomp_ir::Ty::Ptr)], n, |_m, b, iv, caps| {
                let slot = b.gep(caps[0], iv, 8);
                b.store(nzomp_ir::Ty::I64, slot, iv);
            });
        },
    );
    let out = nzomp::compile(m, BuildConfig::NewRtNoAssumptions).unwrap();
    let missed = out.remarks.of(RemarkKind::Missed, "openmp-opt");
    assert!(
        missed
            .iter()
            .any(|r| r.message.contains("cannot be moved to SPMD mode")),
        "expected SPMDization miss, got:\n{}",
        out.remarks
    );
}

/// Failure injection: an out-of-bounds access traps with a precise report
/// instead of corrupting the simulation.
#[test]
fn out_of_bounds_traps_cleanly() {
    use nzomp_front::cuda;
    use nzomp_ir::{Operand, Ty};
    use nzomp_vgpu::{RtVal, TrapKind};

    let mut m = nzomp_ir::Module::new("oob");
    cuda::grid_stride_kernel(
        &mut m,
        "oob",
        &[Ty::Ptr, Ty::I64],
        |_b, p| p[1],
        |_m, b, iv, p| {
            // Deliberately index one past the end.
            let bad = b.add(iv, p[1]);
            let slot = b.gep(p[0], bad, 8);
            b.store(Ty::F64, slot, Operand::f64(1.0));
        },
    );
    let mut dev = Device::load(m, quick_device());
    let buf = dev.alloc(8 * 4);
    let err = dev
        .launch("oob", nzomp_vgpu::device::Launch::new(1, 4), &[RtVal::P(buf), RtVal::I(4)]);
    // The very last host allocation may leave room in the global region;
    // what matters is that *if* it traps it traps cleanly, and with an
    // empty device it must trap.
    match err {
        Err(e) => assert!(matches!(e.kind, TrapKind::OutOfBounds)),
        Ok(_) => panic!("expected out-of-bounds trap"),
    }
}
