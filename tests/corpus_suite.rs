//! The versioned kernel corpus (`tests/corpus/*.nzir`): 20 generated
//! edge-case kernels (pinned seeds) plus the 5 proxies exported as linked,
//! unoptimized modules. Every entry must
//! 1. be exactly reproducible from its generator (bless with
//!    `NZOMP_BLESS=1 cargo test -q --test corpus_suite`),
//! 2. parse in strict mode, verify, and round-trip exactly, and
//! 3. execute bit-identically across optimization variants ({none, full})
//!    and worker counts ({1, 8}) with a clean sanitizer verdict.

use std::collections::BTreeSet;
use std::fs;

use nzomp::pipeline::compile_with;
use nzomp::BuildConfig;
use nzomp_integration::corpus::{
    corpus_dir, corpus_variants, differential_check, gen_corpus_text, GEN_SEEDS, WORKER_AXES,
};
use nzomp_integration::gen::{generate, parse_launch_comment, GenModule};
use nzomp_ir::parser::parse_module_strict;
use nzomp_ir::printer::print_module;
use nzomp_ir::Module;
use nzomp_opt::{optimize_module, PassOptions};
use nzomp_proxies::{all_proxies, build_for_config, quick_device, Proxy};
use nzomp_vgpu::{Device, ExecError, KernelMetrics};

const PROXY_CFG: BuildConfig = BuildConfig::NewRtNoAssumptions;

/// `(file name, expected text)` for every corpus entry.
fn expected_entries() -> Vec<(String, String)> {
    let mut v = Vec::new();
    for seed in GEN_SEEDS {
        v.push((format!("gen-{seed}.nzir"), gen_corpus_text(&generate(seed))));
    }
    for p in all_proxies() {
        let out = compile_with(
            build_for_config(p.as_ref(), PROXY_CFG),
            PROXY_CFG,
            PROXY_CFG.rt_config(),
            PassOptions::none(),
        )
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", p.name()));
        v.push((
            format!("proxy-{}.nzir", p.name().to_lowercase()),
            print_module(&out.module),
        ));
    }
    v
}

/// The corpus on disk is byte-for-byte what the generators produce — no
/// stale files, no extras. `NZOMP_BLESS=1` rewrites it.
#[test]
fn corpus_is_reproducible_from_generators() {
    let bless = std::env::var("NZOMP_BLESS").is_ok_and(|v| v == "1");
    let dir = corpus_dir();
    let entries = expected_entries();
    assert!(entries.len() >= 25, "corpus must hold at least 25 kernels");
    if bless {
        fs::create_dir_all(&dir).unwrap();
    }
    let mut failures = Vec::new();
    for (name, text) in &entries {
        let path = dir.join(name);
        if bless {
            fs::write(&path, text).unwrap();
            continue;
        }
        match fs::read_to_string(&path) {
            Ok(got) if &got == text => {}
            Ok(_) => failures.push(format!("{name}: drifted from generator")),
            Err(e) => failures.push(format!("{name}: unreadable ({e})")),
        }
    }
    if !bless {
        // No stray files either.
        let want: BTreeSet<&String> = entries.iter().map(|(n, _)| n).collect();
        for f in fs::read_dir(&dir).into_iter().flatten().flatten() {
            let name = f.file_name().to_string_lossy().into_owned();
            if !want.contains(&name) {
                failures.push(format!("{name}: stray corpus file"));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "corpus out of date: {failures:?}\n(re-bless with NZOMP_BLESS=1 if intentional)"
    );
}

/// Every corpus file parses in strict mode, verifies, is in normal form,
/// and is an exact parse/print fixed point.
#[test]
fn corpus_roundtrips_and_verifies() {
    for (name, text) in corpus_texts() {
        let m = parse_module_strict(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        nzomp_ir::verify_module(&m).unwrap_or_else(|e| panic!("{name}: verify: {e}"));
        assert!(m.is_normalized(), "{name}: parsed module not normalized");
        let again = parse_module_strict(&print_module(&m))
            .unwrap_or_else(|e| panic!("{name}: reparse: {e}"));
        assert_eq!(again, m, "{name}: not a round-trip fixed point");
    }
}

/// The differential replay: every corpus kernel, {none, full} × {1, 8}.
#[test]
fn corpus_differential_none_vs_full_across_worker_counts() {
    let variants = corpus_variants();
    let proxies = all_proxies();
    for (name, text) in corpus_texts() {
        let m = parse_module_strict(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        if let Some(meta) = parse_launch_comment(&text) {
            // Generated kernel: self-describing launch.
            let g = GenModule {
                module: m,
                teams: meta.teams,
                threads: meta.threads,
                buf_bytes: meta.buf_bytes,
                out_off: meta.out_off,
                out_slots: meta.out_slots,
            };
            if let Err(e) = differential_check(&g, &variants, &WORKER_AXES) {
                panic!("{name}: {e}");
            }
        } else {
            // Proxy kernel: replay through the proxy's own prepare().
            let pname = name
                .trim_start_matches("proxy-")
                .trim_end_matches(".nzir");
            let p = proxies
                .iter()
                .find(|p| p.name().to_lowercase() == pname)
                .unwrap_or_else(|| panic!("{name}: no proxy named {pname}"));
            let mut baseline: Option<(String, Vec<u64>)> = None;
            for (slug, opts) in &variants {
                let mut vm = m.clone();
                let _ = optimize_module(&mut vm, opts);
                nzomp_ir::verify_module(&vm)
                    .unwrap_or_else(|e| panic!("{name} [{slug}]: verify after opt: {e}"));
                let mut first: Option<(usize, ProxyRun)> = None;
                for &w in &WORKER_AXES {
                    let o = run_proxy_module(p.as_ref(), &vm, w);
                    assert_eq!(
                        o.san_counts,
                        (0, 0),
                        "{name} [{slug}] @{w} workers: sanitizer not clean"
                    );
                    assert!(
                        o.result.is_ok(),
                        "{name} [{slug}] @{w} workers: trapped: {:?}",
                        o.result
                    );
                    match &first {
                        None => first = Some((w, o)),
                        Some((w0, o0)) => assert_eq!(
                            o0, &o,
                            "{name} [{slug}]: outcome diverges between {w0} and {w} workers"
                        ),
                    }
                }
                let (_, o) = first.unwrap();
                match &baseline {
                    None => baseline = Some((slug.clone(), o.out_bits)),
                    Some((s0, bits)) => assert_eq!(
                        bits, &o.out_bits,
                        "{name}: output bits diverge between [{s0}] and [{slug}]"
                    ),
                }
            }
        }
    }
}

/// Read the corpus from disk, sorted by name (panics when empty — the
/// corpus is checked in, so an empty directory means a broken checkout).
fn corpus_texts() -> Vec<(String, String)> {
    let dir = corpus_dir();
    let mut v: Vec<(String, String)> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .flatten()
        .filter(|f| f.file_name().to_string_lossy().ends_with(".nzir"))
        .map(|f| {
            let name = f.file_name().to_string_lossy().into_owned();
            let text = fs::read_to_string(f.path()).unwrap();
            (name, text)
        })
        .collect();
    v.sort();
    assert!(v.len() >= 25, "corpus must hold at least 25 kernels");
    v
}

#[derive(Clone, Debug, PartialEq)]
struct ProxyRun {
    result: Result<KernelMetrics, ExecError>,
    out_bits: Vec<u64>,
    global: Vec<u8>,
    san_counts: (u64, u64),
}

fn run_proxy_module(p: &dyn Proxy, m: &Module, workers: usize) -> ProxyRun {
    let mut dev = Device::load(m.clone(), quick_device());
    dev.set_sanitize(true);
    dev.set_worker_threads(workers);
    let prep = p.prepare(&mut dev);
    let result = dev.launch(p.kernel_name(), prep.launch, &prep.args);
    let out_bits = if result.is_ok() {
        dev.read_f64(prep.out_ptr, prep.expected.len())
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    } else {
        Vec::new()
    };
    ProxyRun {
        result,
        out_bits,
        global: dev.global_bytes().to_vec(),
        san_counts: dev.sanitizer_counts(),
    }
}
