//! Integration-test crate: all tests live in `tests/*.rs`.
//!
//! This lib holds the shared differential-execution harness: one way to
//! compile a proxy, run it on a device with a chosen worker-thread count
//! (and optionally an armed fault plan), and capture *everything*
//! observable about the launch — so the differential tests (PR 1) and the
//! parallel-determinism tests compare outcomes through the same lens.

pub mod corpus;
pub mod gen;

use nzomp::BuildConfig;
use nzomp_host::{Host, HostError, StreamId};
use nzomp_proxies::{build_for_config, compile_for_config, quick_device, HostShape, Proxy};
use nzomp_vgpu::{Device, ExecError, FaultPlan, KernelMetrics};

/// Everything observable about one proxy launch. `PartialEq` makes
/// "bit-identical" a one-line assertion: metrics compare field by field
/// (cycles, waves, counters), traps compare as typed errors, and the
/// global-memory image compares byte for byte.
#[derive(Clone, Debug, PartialEq)]
pub struct ProxyOutcome {
    /// Kernel metrics on success, the typed trap otherwise.
    pub result: Result<KernelMetrics, ExecError>,
    /// Output buffer as raw f64 bits (NaN-safe), when the launch succeeded.
    pub out_bits: Option<Vec<u64>>,
    /// The entire device global-memory image after the launch — inputs,
    /// outputs, runtime state, heap; nothing can hide a divergence here.
    pub global: Vec<u8>,
    /// Sanitizer verdict `(races, divergences)` — `(0, 0)` when the
    /// sanitizer is off (no `NZOMP_SANITIZE` in the environment), so the
    /// field compares as equal on unsanitized runs.
    pub san_counts: (u64, u64),
    /// Rendered sanitizer reports; the determinism matrix requires the
    /// exact same text at every worker count.
    pub san_reports: Vec<String>,
}

/// Compile `p` under `cfg`, load it onto a quick device with `workers`
/// host threads, optionally arm the seeded fault plan, launch once, and
/// capture the outcome. Panics on compile errors (test context).
pub fn run_proxy_outcome(
    p: &dyn Proxy,
    cfg: BuildConfig,
    workers: usize,
    fault_seed: Option<u64>,
) -> ProxyOutcome {
    let out = compile_for_config(p, cfg).unwrap();
    let mut dev = Device::load(out.module, quick_device());
    dev.set_worker_threads(workers);
    let prep = p.prepare(&mut dev);
    if let Some(seed) = fault_seed {
        dev.set_fault_plan(FaultPlan::from_seed(
            seed,
            prep.launch.teams,
            prep.launch.threads_per_team,
        ));
    }
    let result = dev.launch(p.kernel_name(), prep.launch, &prep.args);
    let out_bits = result.as_ref().ok().map(|_| {
        dev.read_f64(prep.out_ptr, prep.expected.len())
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    });
    ProxyOutcome {
        result,
        out_bits,
        global: dev.global_bytes().to_vec(),
        san_counts: dev.sanitizer_counts(),
        san_reports: dev
            .sanitizer_reports()
            .iter()
            .map(|r| r.to_string())
            .collect(),
    }
}

/// The same observation, taken through the `nzomp-host` offload runtime
/// instead of driving the [`Device`] directly: map the region through the
/// present table, carry transfers and the launch on `shape.streams` async
/// streams, let the scheduler place it across `shape.devices` vGPUs, and
/// capture the outcome *of the device the region landed on*. On a clean
/// run this must equal [`run_proxy_outcome`]'s observation bit for bit —
/// that equivalence is the host runtime's differential contract.
pub fn run_proxy_host_outcome(
    p: &dyn Proxy,
    cfg: BuildConfig,
    workers: usize,
    fault_seed: Option<u64>,
    shape: &HostShape,
) -> ProxyOutcome {
    let mut host = Host::new(quick_device(), shape.devices);
    host.set_policy(shape.policy);
    host.set_drain_seed(shape.drain_seed);
    host.set_worker_threads(workers);
    let img = host.load_image(build_for_config(p, cfg), cfg).unwrap();
    let hp = p.host_prepare();
    let out_arg = hp.out_arg;
    if let Some(seed) = fault_seed {
        host.set_fault_plan(FaultPlan::from_seed(
            seed,
            hp.launch.teams,
            hp.launch.threads_per_team,
        ));
    }
    let streams: Vec<StreamId> = (0..shape.streams.max(1)).map(|_| host.stream()).collect();
    let region = host
        .enqueue_region(&streams, img, p.kernel_name(), hp.launch, hp.args)
        .unwrap();
    if let Err(e) = host.sync() {
        // A trap aborts the drain with `HostError::Exec` and parks the same
        // typed error in the launch ticket; anything else is a harness bug.
        assert!(matches!(e, HostError::Exec(_)), "host sync failed: {e}");
    }
    let result = host
        .ticket_result(region.ticket)
        .unwrap()
        .expect("launch op never executed")
        .clone();
    let out_bits = if result.is_ok() {
        let buf = region
            .bufs
            .get(out_arg)
            .copied()
            .flatten()
            .expect("output argument is not a buffer");
        Some(host.buf_bits(buf).unwrap())
    } else {
        None
    };
    let dev = host.device(region.device).expect("region device is loaded");
    ProxyOutcome {
        result,
        out_bits,
        global: dev.global_bytes().to_vec(),
        san_counts: dev.sanitizer_counts(),
        san_reports: dev
            .sanitizer_reports()
            .iter()
            .map(|r| r.to_string())
            .collect(),
    }
}
