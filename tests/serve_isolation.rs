//! Tenant-isolation suite of the serving layer (PR 9 satellite): two
//! tenants mapping the same logical host range get disjoint device
//! allocations and can never observe each other's bytes, and quota
//! exhaustion in one tenant leaves every other tenant's in-flight work
//! untouched. Runs — like the whole workspace — under both
//! `NZOMP_VGPU_THREADS` axes and `NZOMP_EXEC_TIER=bytecode` in CI.

use std::rc::Rc;

use nzomp::BuildConfig;
use nzomp_front::{spmd_kernel_for, RuntimeFlavor};
use nzomp_ir::{Module, Operand, Ty};
use nzomp_serve::trace::{replay, Trace, TraceOp};
use nzomp_serve::{
    Outcome, RejectReason, ReqArg, RequestSpec, SBuf, Serve, ServeConfig, TenantConfig, TenantId,
};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{DeviceConfig, RtVal};

const N: usize = 24;

fn quick() -> DeviceConfig {
    DeviceConfig { check_assumes: false, ..DeviceConfig::default() }
}

fn launch() -> Launch {
    Launch { teams: 2, threads_per_team: 12, dyn_smem_bytes: 0 }
}

/// `state[i] = (f64) c` — a writer whose output identifies its tenant.
fn writer_app() -> Rc<Module> {
    let mut m = Module::new("serve_writer");
    spmd_kernel_for(
        &mut m,
        RuntimeFlavor::Modern,
        "w",
        &[Ty::Ptr, Ty::I64, Ty::I64],
        |_b, p| p[2],
        |_m, b, iv, p| {
            let v = b.si_to_fp(p[1]);
            let ps = b.gep(p[0], iv, 8);
            b.store(Ty::F64, ps, v);
        },
    );
    Rc::new(m)
}

/// `out[i] = a[i] * 2 + i` — the standard clean kernel.
fn scale_app() -> Rc<Module> {
    let mut m = Module::new("serve_iso_scale");
    spmd_kernel_for(
        &mut m,
        RuntimeFlavor::Modern,
        "k",
        &[Ty::Ptr, Ty::Ptr, Ty::I64],
        |_b, p| p[2],
        |_m, b, iv, p| {
            let pa = b.gep(p[0], iv, 8);
            let x = b.load(Ty::F64, pa);
            let two = b.fmul(x, Operand::f64(2.0));
            let i_f = b.si_to_fp(iv);
            let v = b.fadd(two, i_f);
            let po = b.gep(p[1], iv, 8);
            b.store(Ty::F64, po, v);
        },
    );
    Rc::new(m)
}

fn write_req(module: &Rc<Module>, state: SBuf, value: i64) -> RequestSpec {
    RequestSpec {
        module: module.clone(),
        config: BuildConfig::NewRtNoAssumptions,
        kernel: "w".into(),
        launch: launch(),
        args: vec![
            ReqArg::Session(state),
            ReqArg::Scalar(RtVal::I(value)),
            ReqArg::Scalar(RtVal::I(N as i64)),
        ],
    }
}

fn scale_req(module: &Rc<Module>, inp: Rc<Vec<u8>>) -> RequestSpec {
    RequestSpec {
        module: module.clone(),
        config: BuildConfig::NewRtNoAssumptions,
        kernel: "k".into(),
        launch: launch(),
        args: vec![
            ReqArg::In(inp),
            ReqArg::Out(8 * N as u64),
            ReqArg::Scalar(RtVal::I(N as i64)),
        ],
    }
}

fn cfg(devices: usize) -> ServeConfig {
    let mut c = ServeConfig::new(devices);
    c.dev_cfg = quick();
    c
}

/// Two tenants map byte-identical host ranges; the device allocations
/// behind them are disjoint, and each tenant reads back only its own
/// writes.
#[test]
fn same_host_range_maps_to_disjoint_device_memory() {
    let mut serve = Serve::new(cfg(1));
    let a = serve.add_tenant("a", TenantConfig::default());
    let b = serve.add_tenant("b", TenantConfig::default());
    // The same logical range: identical bytes, identical length.
    let shared = vec![0u8; 8 * N];
    let sa = serve.session_map(a, shared.clone()).unwrap();
    let sb = serve.session_map(b, shared).unwrap();

    let w = writer_app();
    let ra = serve.submit(a, write_req(&w, sa, 7)).unwrap();
    let rb = serve.submit(b, write_req(&w, sb, 9)).unwrap();
    serve.drain();

    // Both live on the one device simultaneously (same image, no
    // eviction) at non-overlapping device addresses.
    let ptr = |r| match serve.outcome(r) {
        Some(Outcome::Completed { arg_ptrs, device, .. }) => {
            assert_eq!(*device, 0);
            arg_ptrs[0].unwrap()
        }
        o => panic!("expected completion, got {o:?}"),
    };
    let (pa, pb) = (ptr(ra), ptr(rb));
    assert_ne!(pa, pb);
    let len = 8 * N as u64;
    assert!(
        pa + len <= pb || pb + len <= pa,
        "device ranges overlap: [{pa}, {}) vs [{pb}, {})",
        pa + len,
        pb + len
    );

    // Each tenant observes exactly its own writes — nothing leaked
    // through the shared device.
    let fa: Vec<f64> = serve
        .session_read(a, sa)
        .unwrap()
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    let fb: Vec<f64> = serve
        .session_read(b, sb)
        .unwrap()
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    assert_eq!(fa, vec![7.0; N]);
    assert_eq!(fb, vec![9.0; N]);
}

/// Exhausting one tenant's quota rejects *that tenant's* overflow with a
/// typed outcome while every other tenant's in-flight work runs to
/// completion unchanged.
#[test]
fn quota_exhaustion_is_contained_to_the_offending_tenant() {
    let mut serve = Serve::new(cfg(2));
    let scale = scale_app();
    let inp = Rc::new(nzomp_host::f64_bytes(
        &(0..N).map(|i| i as f64 * 0.25).collect::<Vec<_>>(),
    ));
    let footprint = 8 * N as u64 * 2; // In + Out
    let poor = serve.add_tenant("poor", TenantConfig::new(footprint, 16));
    let rich = serve.add_tenant("rich", TenantConfig::default());

    let p0 = serve.submit(poor, scale_req(&scale, inp.clone())).unwrap();
    let r0 = serve.submit(rich, scale_req(&scale, inp.clone())).unwrap();
    // Overflow the poor tenant while both in-flight requests are live.
    let p1 = serve.submit(poor, scale_req(&scale, inp.clone())).unwrap();
    let r1 = serve.submit(rich, scale_req(&scale, inp.clone())).unwrap();
    serve.drain();

    match serve.outcome(p1) {
        Some(Outcome::Rejected { reason: RejectReason::QuotaExceeded { needed, in_use, quota }, .. }) => {
            assert_eq!((*needed, *in_use, *quota), (footprint, footprint, footprint));
        }
        o => panic!("expected quota rejection, got {o:?}"),
    }
    // Everyone else — including the poor tenant's admitted request —
    // completed with correct bytes.
    let expect: Vec<f64> = (0..N).map(|i| (i as f64 * 0.25) * 2.0 + i as f64).collect();
    for r in [p0, r0, r1] {
        match serve.outcome(r) {
            Some(Outcome::Completed { outputs, .. }) => {
                assert_eq!(nzomp_host::bytes_to_f64(&outputs[0].1), expect);
            }
            o => panic!("expected completion, got {o:?}"),
        }
    }
    let m = serve.metrics();
    assert_eq!((m.completed, m.rejected_quota, m.faulted), (3, 1, 0));
    // The poor tenant's quota ledger drained back to its session-free
    // baseline — rejections and completions both release correctly.
    assert_eq!(serve.tenant_rows()[0].peak_bytes, footprint);
}

/// Session images — each tenant's device memory — replay bit-identically
/// together with outcomes and metrics, including when the engine pins
/// different worker counts and execution tiers.
#[test]
fn tenant_memory_images_replay_bit_identically() {
    let w = writer_app();
    let scale = scale_app();
    let inp = Rc::new(nzomp_host::f64_bytes(
        &(0..N).map(|i| i as f64 - 4.0).collect::<Vec<_>>(),
    ));

    let mut trace = Trace::new();
    for i in 0..4 {
        trace.push(TraceOp::Tenant { name: format!("t{i}"), cfg: TenantConfig::default() });
        trace.push(TraceOp::Map { tenant: i, bytes: vec![0u8; 8 * N] });
    }
    for (round, at) in [0u64, 90, 180].iter().enumerate() {
        for tenant in 0..4u32 {
            let state = SBuf { tenant: TenantId(tenant), idx: 0 };
            let spec = if (tenant as usize + round) % 2 == 0 {
                write_req(&w, state, (tenant as i64 + 1) * 10 + round as i64)
            } else {
                scale_req(&scale, inp.clone())
            };
            trace.push(TraceOp::Submit { at: *at, tenant, spec });
        }
    }
    trace.push(TraceOp::Drain);

    let base = cfg(2);
    let one = replay(&trace, &base).unwrap();
    let two = replay(&trace, &base).unwrap();
    assert_eq!(one, two, "same-config replay diverged");
    assert_eq!(one.session_images.len(), 4);
    assert!(one.session_images.iter().all(|t| !t.is_empty()));

    let mut w1 = base.clone();
    w1.worker_threads = Some(1);
    let mut w8 = base.clone();
    w8.worker_threads = Some(8);
    assert_eq!(
        replay(&trace, &w1).unwrap(),
        replay(&trace, &w8).unwrap(),
        "session images diverged across worker counts"
    );

    let mut interp = base.clone();
    interp.exec_tier = Some(nzomp_vgpu::ExecTier::Interp);
    let mut bytecode = base.clone();
    bytecode.exec_tier = Some(nzomp_vgpu::ExecTier::Bytecode);
    assert_eq!(
        replay(&trace, &interp).unwrap(),
        replay(&trace, &bytecode).unwrap(),
        "session images diverged across execution tiers"
    );
}
