//! Structured IR fuzzing: the seeded generator drives the exact
//! round-trip contract over hundreds of modules, proves per-module feature
//! coverage, and runs the full differential matrix (every pipeline variant
//! × worker counts) on a fixed seed range.

use nzomp_integration::corpus::{all_variants, fuzz_one, WORKER_AXES};
use nzomp_integration::gen::{all_labels, coverage_labels, generate};
use nzomp_ir::parser::parse_module_strict;
use nzomp_ir::printer::print_module;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `parse(print(m)) == m` exactly, for 512 generated modules per run.
    /// Generated modules are normalized, so equality is structural and
    /// bit-exact (float constants compare by bit pattern).
    #[test]
    fn roundtrip_exact_over_generated_modules(seed in any::<u64>()) {
        let g = generate(seed);
        prop_assert!(g.module.is_normalized(), "generator must emit normal form");
        nzomp_ir::verify_module(&g.module)
            .unwrap_or_else(|e| panic!("seed {seed}: verify: {e}"));
        let text = print_module(&g.module);
        let back = parse_module_strict(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse: {e}\n{text}"));
        prop_assert_eq!(&back, &g.module, "seed {} round-trip mismatch", seed);
    }
}

/// Coverage is structural: every module contains every instruction
/// variant, operator, predicate, intrinsic, terminator, address space,
/// init form, linkage, and exec mode — regardless of seed.
#[test]
fn every_generated_module_covers_every_variant() {
    let want = all_labels();
    for seed in 0..32u64 {
        let g = generate(seed);
        let got = coverage_labels(&g.module);
        let missing: Vec<_> = want.difference(&got).collect();
        assert!(
            missing.is_empty(),
            "seed {seed}: generator missed feature(s): {missing:?}"
        );
    }
}

/// The differential matrix on a fixed seed range: parse → verify →
/// optimize under all nine pipeline variants → execute at 1 and 8 workers.
/// Within a variant every worker count must produce an identical outcome
/// (output bits, metrics, the entire global image); across variants the
/// output bits must agree; the sanitizer must stay clean everywhere.
#[test]
fn differential_matrix_on_fixed_seeds() {
    let variants = all_variants();
    for seed in 0..12u64 {
        if let Err(e) = fuzz_one(seed, &variants) {
            panic!("differential failure: {e}");
        }
    }
    // Axes sanity: the contract above really did run both worker counts.
    assert_eq!(WORKER_AXES, [1, 8]);
}
