//! Atomics stress test: many teams hammering shared global cells.
//!
//! The final values are exactly computable on the host, and — per the
//! parallel determinism contract (`docs/parallel-vgpu.md`) — independent
//! of the worker-thread count:
//!
//! * an `i64` counter accumulated with `atomic.add` (sum of all
//!   contributions, order-free),
//! * `i64` min/max cells (order-free),
//! * an `f64` accumulator — f64 addition is **not** associative, so this
//!   one only matches bit for bit because the wave-ordered merge replays
//!   atomic operations in exactly the sequential order,
//! * a CAS-elected winner cell + winner count — exactly one winner, and
//!   it must be the *sequentially first* thread (team 0, thread 0), not
//!   whichever host thread won a wall-clock race.

use nzomp_ir::inst::AtomicOp;
use nzomp_ir::{ExecMode, FuncBuilder, Module, Operand, Ty};
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, RtVal};

const TEAMS: u32 = 64;
const THREADS: u32 = 8;

/// Per-thread mixed value for the min/max cells.
fn mixed(gid: i64) -> i64 {
    (gid * 37) % 101 - gid
}

/// buf layout (i64/f64 slots): [0]=counter [1]=min [2]=max [3]=f64 acc
/// [4]=cas flag [5]=winner count
fn stress_module() -> Module {
    let mut m = Module::new("atomics_stress");
    let mut b = FuncBuilder::new("k", vec![Ty::Ptr], None);
    let buf = b.param(0);
    let tid = b.thread_id();
    let team = b.block_id();
    let dim = b.block_dim();
    let base = b.mul(team, dim);
    let gid = b.add(base, tid);

    // Counter: += gid + 1.
    let one_more = b.add(gid, Operand::i64(1));
    b.atomic_add(Ty::I64, buf, one_more);

    // Min/max of a mixed per-thread value.
    let g37 = b.mul(gid, Operand::i64(37));
    let md = b.srem(g37, Operand::i64(101));
    let v = b.sub(md, gid);
    let minp = b.ptr_add(buf, Operand::i64(8));
    b.atomic(AtomicOp::Min, Ty::I64, minp, v);
    let maxp = b.ptr_add(buf, Operand::i64(16));
    b.atomic(AtomicOp::Max, Ty::I64, maxp, v);

    // f64 accumulator: += 1 / (gid + 1). Order-sensitive bits.
    let gf = b.si_to_fp(one_more);
    let inv = b.fdiv(Operand::f64(1.0), gf);
    let accp = b.ptr_add(buf, Operand::i64(24));
    b.atomic(AtomicOp::Add, Ty::F64, accp, inv);

    // CAS winner election: flag 0 -> gid + 1, count the winners.
    let flagp = b.ptr_add(buf, Operand::i64(32));
    let prev = b.cas(Ty::I64, flagp, Operand::i64(0), one_more);
    let won = b.icmp_eq(prev, Operand::i64(0));
    let w = b.cast(nzomp_ir::inst::CastKind::ZExtCast, Ty::I64, won);
    let winp = b.ptr_add(buf, Operand::i64(40));
    b.atomic_add(Ty::I64, winp, w);

    b.ret(None);
    let f = m.add_function(b.finish());
    m.add_kernel(f, ExecMode::Spmd);
    m
}

struct Final {
    counter: i64,
    min: i64,
    max: i64,
    acc_bits: u64,
    flag: i64,
    winners: i64,
}

fn run(workers: usize) -> Final {
    let mut dev = Device::load(stress_module(), DeviceConfig::default());
    dev.set_worker_threads(workers);
    let buf = dev.alloc(48);
    dev.write_i64(buf, &[0, i64::MAX, i64::MIN, 0, 0, 0]).unwrap();
    dev.launch("k", Launch::new(TEAMS, THREADS), &[RtVal::P(buf)])
        .unwrap();
    let v = dev.read_i64(buf, 6).unwrap();
    Final {
        counter: v[0],
        min: v[1],
        max: v[2],
        acc_bits: v[3] as u64,
        flag: v[4],
        winners: v[5],
    }
}

#[test]
fn stress_final_values_exact_and_thread_count_independent() {
    let n = (TEAMS * THREADS) as i64;
    // Host-side ground truth. The f64 accumulator folds in sequential
    // execution order: teams ascending, threads within a team ascending
    // (straight-line kernel, so each thread runs to completion in turn).
    let counter: i64 = (1..=n).sum();
    let min = (0..n).map(mixed).min().unwrap();
    let max = (0..n).map(mixed).max().unwrap();
    let acc: f64 = (0..n).fold(0.0f64, |a, gid| a + 1.0 / (gid + 1) as f64);

    let base = run(1);
    assert_eq!(base.counter, counter, "counter (sequential)");
    assert_eq!(base.min, min, "min (sequential)");
    assert_eq!(base.max, max, "max (sequential)");
    assert_eq!(base.acc_bits, acc.to_bits(), "f64 fold order (sequential)");
    assert_eq!(base.flag, 1, "winner is team 0 thread 0 (gid 0 -> flag 1)");
    assert_eq!(base.winners, 1, "exactly one CAS winner (sequential)");

    for workers in [2usize, 4, 8] {
        let got = run(workers);
        assert_eq!(got.counter, counter, "counter @{workers}");
        assert_eq!(got.min, min, "min @{workers}");
        assert_eq!(got.max, max, "max @{workers}");
        assert_eq!(
            got.acc_bits,
            acc.to_bits(),
            "f64 fold order @{workers} — wave-ordered merge must replay \
             atomic adds in sequential order"
        );
        assert_eq!(got.flag, 1, "winner identity @{workers}");
        assert_eq!(got.winners, 1, "exactly one CAS winner @{workers}");
    }
}
