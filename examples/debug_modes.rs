//! Debugging, assertions and assumptions (paper §III-G): one runtime, zero
//! overhead in release, full checking in debug — selected at compile time
//! through the `debug_kind` constant global.
//!
//! ```text
//! cargo run -p nzomp-examples --bin debug_modes
//! ```

use nzomp::pipeline::compile_with;
use nzomp::BuildConfig;
use nzomp_examples::header;
use nzomp_front::spmd_kernel_for;
use nzomp_ir::{Module, Operand, Ty};
use nzomp::rt::abi;
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, DeviceConfig, RtVal};

/// A kernel with a user assertion: `assert(a[i] >= 0)`.
fn build() -> Module {
    let mut m = Module::new("debuggable");
    spmd_kernel_for(
        &mut m,
        nzomp_front::RuntimeFlavor::Modern,
        "checked_scale",
        &[Ty::Ptr, Ty::Ptr, Ty::I64],
        |_b, p| p[2],
        |m, b, iv, p| {
            let pa = b.gep(p[0], iv, 8);
            let v = b.load(Ty::F64, pa);
            // assert(v >= 0 && "input must be non-negative")
            let ok = b.cmp(nzomp_ir::Pred::Sge, Ty::F64, v, Operand::f64(0.0));
            let assert_fn = nzomp::rt::declare_api(m, abi::NZOMP_ASSERT);
            b.call(Operand::Func(assert_fn), vec![ok], None);
            let r = b.fmul(v, Operand::f64(2.0));
            let po = b.gep(p[1], iv, 8);
            b.store(Ty::F64, po, r);
        },
    );
    m
}

fn run(debug_kind: i64, data: &[f64], check_assumes: bool) -> Result<(u64, i64), String> {
    let cfg = BuildConfig::NewRtNoAssumptions;
    let rt_cfg = nzomp::rt::RtConfig {
        debug_kind,
        ..cfg.rt_config()
    };
    let out = compile_with(build(), cfg, rt_cfg, cfg.pass_options()).expect("compile");
    let dev_cfg = DeviceConfig {
        check_assumes,
        ..DeviceConfig::default()
    };
    let mut dev = Device::load(out.module, dev_cfg);
    let pa = dev.alloc_f64(data);
    let po = dev.alloc(8 * data.len() as u64);
    let metrics = dev
        .launch(
            "checked_scale",
            Launch::new(1, data.len() as u32),
            &[RtVal::P(pa), RtVal::P(po), RtVal::I(data.len() as i64)],
        )
        .map_err(|e| e.to_string())?;
    let traces = dev
        .global_addr(abi::G_TRACE_COUNT)
        .map(|a| dev.read_i64(a, 1).unwrap()[0])
        .unwrap_or(0);
    Ok((metrics.cycles, traces))
}

fn main() {
    let good = vec![1.0, 2.0, 3.0, 4.0];
    let bad = vec![1.0, -2.0, 3.0, 4.0];

    header("release build (debug_kind = 0)");
    let (rel_cycles, _) = run(0, &good, false).unwrap();
    println!("good input: OK in {rel_cycles} cycles — assertion code folded away");
    let r = run(0, &bad, false).unwrap();
    println!("bad input:  NOT caught (release): {} cycles — the check costs nothing, so it checks nothing", r.0);

    header("debug build (DEBUG_ASSERTIONS)");
    let (dbg_cycles, _) = run(abi::DEBUG_ASSERTIONS, &good, true).unwrap();
    println!("good input: OK in {dbg_cycles} cycles (> release {rel_cycles}: the checks are real)");
    match run(abi::DEBUG_ASSERTIONS, &bad, true) {
        Err(e) => println!("bad input:  caught -> {e}"),
        Ok(_) => println!("bad input:  UNEXPECTEDLY passed"),
    }

    header("debug build (DEBUG_FUNCTION_TRACING)");
    let (_, traces) = run(abi::DEBUG_FUNCTION_TRACING, &good, true).unwrap();
    println!("runtime entries traced: {traces}");
    let (_, rel_traces) = run(0, &good, false).unwrap();
    println!("release build traced:   {rel_traces} (the tracing path is statically dead)");

    assert!(dbg_cycles > rel_cycles);
    header("summary");
    println!("Same runtime source, same application: the debug features are");
    println!("compiled in or out by constant-folding the debug_kind global —");
    println!("'zero overhead for release builds' (paper §III-G).");
}
