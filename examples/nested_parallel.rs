//! Nested parallelism (paper Fig. 3/4): why the paper "strongly
//! discourages" nesting — the inner region serializes, allocates individual
//! thread ICV states at runtime, and prevents the optimizer from
//! eliminating the runtime state.
//!
//! ```text
//! cargo run -p nzomp-examples --bin nested_parallel
//! ```

use nzomp::{compile, BuildConfig};
use nzomp_examples::header;
use nzomp_front::{generic_kernel, RuntimeFlavor};
use nzomp_ir::{Module, Operand, Ty};
use nzomp_proxies::quick_device;
use nzomp::rt::abi;
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, RtVal};

/// Flat: one parallel region writing `out[tid] = tid`.
fn flat_kernel() -> Module {
    let mut m = Module::new("flat");
    generic_kernel(&mut m, RuntimeFlavor::Modern, "k", &[Ty::Ptr, Ty::I64], |ctx, p| {
        let out = p[0];
        let n = p[1];
        ctx.parallel_for(&[(out, Ty::Ptr)], n, |_m, b, iv, caps| {
            let slot = b.gep(caps[0], iv, 8);
            b.store(Ty::I64, slot, iv);
        });
    });
    m
}

/// Nested: every thread of the outer region opens an inner `parallel`
/// (serialized per §III-C, with an on-demand thread ICV state).
fn nested_kernel() -> Module {
    let mut m = Module::new("nested");
    generic_kernel(&mut m, RuntimeFlavor::Modern, "k", &[Ty::Ptr, Ty::I64], |ctx, p| {
        let out = p[0];
        let n = p[1];
        ctx.parallel_for(&[(out, Ty::Ptr)], n, |m, b, iv, caps| {
            let out = caps[0];
            let par = nzomp::rt::declare_api(m, abi::PARALLEL_51);
            let lvl_fn = nzomp::rt::declare_api(m, abi::OMP_GET_LEVEL);
            // Outlined inner region: out[iv] = iv * 100 + omp_get_level().
            let name = format!("inner.{}", m.funcs.len());
            let mut ib = nzomp_ir::FuncBuilder::new(name, vec![Ty::Ptr], None);
            let args = ib.param(0);
            let iv_in = ib.load(Ty::I64, args);
            let p1 = ib.ptr_add(args, Operand::i64(8));
            let out_in = ib.load(Ty::Ptr, p1);
            let lvl = ib.call(Operand::Func(lvl_fn), vec![], Some(Ty::I64)).unwrap();
            let v = ib.mul(iv_in, Operand::i64(100));
            let v = ib.add(v, lvl);
            let slot = ib.gep(out_in, iv_in, 8);
            ib.store(Ty::I64, slot, v);
            ib.ret(None);
            let inner = m.add_function(ib.finish());
            // Captures for the nested region.
            let a = b.alloca(16);
            b.store(Ty::I64, a, iv);
            let a1 = b.ptr_add(a, Operand::i64(8));
            b.store(Ty::Ptr, a1, out);
            b.call(Operand::Func(par), vec![Operand::Func(inner), a], None);
        });
    });
    m
}

fn run(m: Module, n: i64) -> (nzomp_vgpu::KernelMetrics, Vec<i64>) {
    let out = compile(m, BuildConfig::NewRtNoAssumptions).expect("compile");
    // Show the optimizer's own account of what it could and couldn't do.
    for r in &out.remarks.entries {
        if r.kind == nzomp::opt::RemarkKind::Missed {
            println!("  [compiler] {r}");
        }
    }
    let mut dev = Device::load(out.module, quick_device());
    let po = dev.alloc(8 * n as u64);
    let metrics = dev
        .launch("k", Launch::new(1, 8), &[RtVal::P(po), RtVal::I(n)])
        .unwrap();
    let vals = dev.read_i64(po, n as usize).unwrap();
    (metrics, vals)
}

fn main() {
    let n = 8i64;

    header("flat parallel region");
    let (flat, vals) = run(flat_kernel(), n);
    assert_eq!(vals, (0..n).collect::<Vec<_>>());
    println!("  results OK; SMem after optimization: {} B", flat.smem_bytes);
    println!("  cycles: {}, device mallocs: {}", flat.cycles, flat.device_mallocs);

    header("nested parallel region (discouraged, Fig. 4)");
    let (nested, vals) = run(nested_kernel(), n);
    // Inner region runs at level 2, serialized.
    assert_eq!(vals, (0..n).map(|i| i * 100 + 2).collect::<Vec<_>>());
    println!("  results OK; SMem after optimization: {} B", nested.smem_bytes);
    println!("  cycles: {}, shared-stack activity via thread ICV states", nested.cycles);

    header("comparison");
    println!("  flat:   {:>8} cycles, {:>6} B SMem", flat.cycles, flat.smem_bytes);
    println!("  nested: {:>8} cycles, {:>6} B SMem", nested.cycles, nested.smem_bytes);
    assert!(nested.smem_bytes > flat.smem_bytes);
    assert!(nested.cycles > flat.cycles);
    println!();
    println!("Nesting forced individual thread ICV states (allocated from the");
    println!("shared-memory stack at runtime, §III-C), which keeps the runtime");
    println!("state alive: state elimination is off the table, and every ICV");
    println!("query stays a real memory access.");
}
