//! Quickstart: write an OpenMP-style kernel, compile it under every
//! evaluation configuration, run it on the virtual GPU, and watch the
//! co-designed runtime + optimizations drive the overhead to zero.
//!
//! ```text
//! cargo run -p nzomp-examples --bin quickstart
//! ```

use nzomp::report::{fig11_header, ConfigRow};
use nzomp::{compile, BuildConfig};
use nzomp_examples::header;
use nzomp_front::{cuda, spmd_kernel_for};
use nzomp_ir::{Module, Operand, Ty};
use nzomp_proxies::quick_device;
use nzomp_vgpu::device::Launch;
use nzomp_vgpu::{Device, RtVal};

/// Build `out[i] = a[i] * a[i] + 1` as `#pragma omp target teams distribute
/// parallel for` (or the CUDA equivalent).
fn build(cfg: BuildConfig) -> Module {
    let mut m = Module::new("quickstart");
    let body = |_m: &mut Module, b: &mut nzomp_ir::FuncBuilder, iv: Operand, p: &[Operand]| {
        let pa = b.gep(p[0], iv, 8);
        let v = b.load(Ty::F64, pa);
        let sq = b.fmul(v, v);
        let r = b.fadd(sq, Operand::f64(1.0));
        let po = b.gep(p[1], iv, 8);
        b.store(Ty::F64, po, r);
    };
    match cfg.runtime() {
        Some(flavor) => {
            spmd_kernel_for(
                &mut m,
                flavor,
                "square_plus_one",
                &[Ty::Ptr, Ty::Ptr, Ty::I64],
                |_b, p| p[2],
                body,
            );
        }
        None => {
            cuda::grid_stride_kernel(
                &mut m,
                "square_plus_one",
                &[Ty::Ptr, Ty::Ptr, Ty::I64],
                |_b, p| p[2],
                body,
            );
        }
    }
    m
}

fn main() {
    header("nzomp quickstart: one kernel, five build configurations");
    println!("{}", fig11_header());

    let n = 1024i64;
    for cfg in BuildConfig::ALL {
        // 1. Frontend: lower the directive to IR.
        let app = build(cfg);
        // 2. Link the device runtime and optimize (paper §II-B / §IV).
        let out = compile(app, cfg).expect("compile");
        // 3. Load onto the virtual GPU and launch.
        let mut dev = Device::load(out.module, quick_device());
        let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let pa = dev.alloc_f64(&a);
        let po = dev.alloc(8 * n as u64);
        let metrics = dev
            .launch(
                "square_plus_one",
                Launch::new(8, 128),
                &[RtVal::P(pa), RtVal::P(po), RtVal::I(n)],
            )
            .expect("kernel runs");
        // 4. Verify.
        let got = dev.read_f64(po, n as usize).unwrap();
        for i in 0..n as usize {
            assert_eq!(got[i], (i * i) as f64 + 1.0);
        }
        let row = ConfigRow {
            config: cfg,
            metrics,
        };
        println!(
            "{}   (runtime calls: {}, barriers: {})",
            row.fig11_row(),
            row.metrics.runtime_calls,
            row.metrics.barriers
        );
    }

    header("what happened");
    println!("The `New RT` rows execute ZERO runtime calls and ZERO barriers and");
    println!("retain ZERO bytes of runtime shared memory: the co-designed runtime");
    println!("(nzomp-rt::modern) exposed its state to the optimizer (nzomp-opt),");
    println!("which folded it away — the paper's near-zero-overhead result.");
}
