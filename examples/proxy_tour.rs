//! Tour of the five HPC proxy applications: run each under every build
//! configuration, verify against the host reference, and print the
//! Fig. 11-style summary (see `cargo run -p nzomp-bench --bin figures` for
//! the full evaluation).
//!
//! ```text
//! cargo run -p nzomp-examples --bin proxy_tour --release
//! ```

use nzomp::report::fig11_header;
use nzomp::BuildConfig;
use nzomp_examples::header;
use nzomp_proxies::{all_proxies, run_config, quick_device, RunError};

fn main() {
    for proxy in all_proxies() {
        header(proxy.name());
        println!("{}", fig11_header());
        for cfg in BuildConfig::ALL {
            match run_config(proxy.as_ref(), cfg, &quick_device()) {
                Ok(r) => {
                    let row = nzomp::report::ConfigRow {
                        config: cfg,
                        metrics: r.metrics,
                    };
                    println!("{}", row.fig11_row());
                }
                Err(RunError::NotApplicable) => {
                    println!("{:<26} |          n/a |   n/a |      n/a", cfg.label());
                }
                Err(e) => {
                    println!("{:<26} | FAILED: {e}", cfg.label());
                    std::process::exit(1);
                }
            }
        }
    }
    header("done");
    println!("All five proxies verified against their host references under");
    println!("every configuration (the \"n/a\" rows mirror the paper's tables:");
    println!("the oversubscription assumption is not valid for that kernel).");
}
