//! Shared helpers for the example binaries.

/// Print a section header.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}
